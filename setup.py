"""Setup shim.

The project is fully described by ``pyproject.toml``; this file only exists
so that ``pip install -e .`` keeps working on offline environments whose
setuptools/pip combination cannot build PEP 660 editable wheels (it falls
back to the legacy ``setup.py develop`` code path).
"""

from setuptools import setup

setup()
