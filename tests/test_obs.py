"""The observability stack: tracing, metrics, logging, serving snapshot.

The contracts under test, in the order the tentpole states them:

* **Determinism** — histogram merges and span-tree exports are exact and
  independent of merge/absorb order (the same discipline as
  ``CostCounters.merge``).
* **Picklability** — span records and contexts cross the fork boundary
  inside counter deltas; the counters drop their tracer on pickle but
  keep the recorded spans.
* **Bit-identity neutrality** — a traced run changes no fingerprint and
  no non-time counter versus an untraced one (the full differential
  matrix lives in ``test_differential.py``; this file covers the span
  side channels directly).
* **Exposition** — Prometheus text rendering, the ``trace`` / ``metrics``
  serve verbs, the JSON log formatter, and the trace_view renderer.
"""

from __future__ import annotations

import importlib.util
import io
import json
import logging
import pickle
import random
import sys
from pathlib import Path

import pytest

from repro import CostCounters, generate, maxrank
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanRecord,
    TraceContext,
    Tracer,
    get_logger,
    maybe_span,
)
from repro.obs.log import JsonLineFormatter, TextLineFormatter, configure
from repro.obs.metrics import DEFAULT_BUCKETS
from repro.obs.snapshot import install_serving_collector, serving_snapshot
from repro.obs.trace import worker_span

REPO = Path(__file__).resolve().parent.parent


def _load_trace_view():
    spec = importlib.util.spec_from_file_location(
        "trace_view", REPO / "tools" / "trace_view.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ---------------------------------------------------------------- metrics


class TestHistogram:
    def test_observe_bucketing_is_inclusive_upper_edge(self):
        h = Histogram(bounds=(0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 1.0, 3.0):
            h.observe(value)
        assert h.count == 5
        assert h.buckets() == [(0.1, 2), (1.0, 4), (float("inf"), 5)]

    def test_merge_any_order_is_identical(self, rng):
        values = list(rng.uniform(0.0001, 12.0, size=200))
        chunks = [values[i::5] for i in range(5)]

        def merged(order):
            total = Histogram()
            for index in order:
                part = Histogram()
                for value in chunks[index]:
                    part.observe(value)
                total.merge(part)
            return total

        orders = [list(p) for p in ([0, 1, 2, 3, 4], [4, 3, 2, 1, 0],
                                    [2, 0, 4, 1, 3])]
        dumps = [merged(order).as_dict() for order in orders]
        assert dumps[0] == dumps[1] == dumps[2]
        assert dumps[0]["count"] == len(values)

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError, match="different bounds"):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram(bounds=(1.0, 0.5))


class TestRegistry:
    def test_get_or_create_and_kind_clash(self):
        registry = MetricsRegistry()
        c = registry.counter("requests", "total requests", shard="a")
        c.inc(3)
        assert registry.counter("requests", shard="a").value == 3
        assert registry.counter("requests", shard="b").value == 0
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("requests", shard="a")

    def test_snapshot_and_prometheus_render(self):
        registry = MetricsRegistry()
        registry.counter("reqs", "requests", shard="a").inc(2)
        registry.gauge("depth").set(7)
        registry.histogram("lat", "latency", shard="a").observe(0.003)
        snap = registry.snapshot()
        assert snap['reqs{shard="a"}'] == 2
        assert snap["depth"] == 7
        assert snap['lat{shard="a"}']["count"] == 1
        text = registry.render_prometheus()
        assert "# HELP reqs requests" in text
        assert "# TYPE lat histogram" in text
        assert 'reqs{shard="a"} 2' in text
        assert 'lat_bucket{shard="a",le="+Inf"} 1' in text
        assert 'lat_count{shard="a"} 1' in text

    def test_collectors_run_before_snapshot(self):
        registry = MetricsRegistry()
        registry.add_collector(lambda reg: reg.gauge("pulled").set(11))
        assert registry.snapshot()["pulled"] == 11

    def test_default_buckets_are_sorted_and_fixed(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS
        assert Counter.kind == "counter" and Gauge.kind == "gauge"


# ---------------------------------------------------------------- tracing


class TestTracer:
    def test_hierarchical_ids_and_nesting(self):
        tracer = Tracer(trace_id="t0")
        with tracer.span("root"):
            with tracer.span("child"):
                pass
            with tracer.span("child"):
                pass
        ids = [(r.span_id, r.parent_id, r.name) for r in tracer.records()]
        assert ids == [("1", None, "root"), ("1.1", "1", "child"),
                       ("1.2", "1", "child")]

    def test_sort_key_orders_numerically(self):
        mk = lambda sid: SpanRecord("t", sid, None, "s", 0.0, 1.0)
        ids = ["1.10", "1.9", "1.2.L7w2", "1.2", "2"]
        ordered = sorted((mk(i) for i in ids), key=SpanRecord.sort_key)
        assert [r.span_id for r in ordered] == [
            "1.2", "1.2.L7w2", "1.9", "1.10", "2"
        ]

    def test_absorb_any_order_exports_identically(self):
        def build(order):
            tracer = Tracer(trace_id="t0")
            with tracer.span("root"):
                ctx = tracer.context()
            workers = [
                worker_span(ctx, f"L{seq}w1", "leaf_task", 1.0 + seq, 2.0 + seq)
                for seq in range(6)
            ]
            shuffled = list(workers)
            random.Random(order).shuffle(shuffled)
            for record in shuffled:
                tracer.absorb([record])
            return tracer.export()

        exports = [build(order) for order in (0, 1, 2)]
        # The worker spans carry fixed synthetic times; only the locally
        # recorded root span has real (run-varying) wall-clock times, so
        # compare its structure and the worker spans in full.
        shape = lambda export: [
            (s["id"], s["parent"], s["name"]) for s in export["spans"]
        ]
        workers = lambda export: [s for s in export["spans"]
                                  if s["name"] == "leaf_task"]
        assert shape(exports[0]) == shape(exports[1]) == shape(exports[2])
        assert workers(exports[0]) == workers(exports[1]) == workers(exports[2])
        assert [s["id"] for s in exports[0]["spans"]] == [
            "1", "1.L0w1", "1.L1w1", "1.L2w1", "1.L3w1", "1.L4w1", "1.L5w1"
        ]

    def test_explicit_parent_crosses_threads_logically(self):
        tracer = Tracer(trace_id="t0")
        handle = tracer.begin("request")
        ctx = tracer.context()
        tracer.finish(handle)
        # Another thread would pass the context explicitly.
        wave = tracer.begin("wave", parent=ctx)
        tracer.finish(wave)
        records = {r.name: r for r in tracer.records()}
        assert records["wave"].parent_id == records["request"].span_id

    def test_anchored_tracer_mints_under_anchor(self):
        tracer = Tracer(anchor=TraceContext("t9", "1.3.Q2"))
        with tracer.span("skyline"):
            pass
        (record,) = tracer.records()
        assert record.trace_id == "t9"
        assert record.span_id == "1.3.Q2.1"
        assert record.parent_id == "1.3.Q2"

    def test_maybe_span_none_is_noop(self):
        with maybe_span(None, "anything") as handle:
            assert handle is None

    def test_export_times_are_relative(self):
        tracer = Tracer(trace_id="t0")
        with tracer.span("a", answer=42):
            pass
        export = tracer.export()
        (span,) = export["spans"]
        assert span["start_s"] == 0.0
        assert span["elapsed_s"] >= 0.0
        assert span["meta"] == {"answer": 42}


class TestPickling:
    def test_span_record_and_context_round_trip(self):
        record = SpanRecord("t1", "1.2.L7w2", "1.2", "leaf_task",
                            3.5, 4.25, meta={"weight": 2})
        assert pickle.loads(pickle.dumps(record)) == record
        ctx = TraceContext("t1", "1.2")
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_counters_pickle_drops_tracer_keeps_spans(self):
        counters = CostCounters()
        counters._tracer = Tracer()
        counters.record_span(SpanRecord("t", "1", None, "s", 0.0, 1.0))
        clone = pickle.loads(pickle.dumps(counters))
        assert clone._tracer is None
        assert len(clone._spans) == 1

    def test_spans_ride_the_counter_merge_path(self):
        a, b = CostCounters(), CostCounters()
        a.record_span(SpanRecord("t", "1", None, "x", 0.0, 1.0))
        b.record_span(SpanRecord("t", "2", None, "y", 1.0, 2.0))
        a.merge(b)
        assert [r.span_id for r in a.drain_spans()] == ["1", "2"]
        assert a.drain_spans() == []

    def test_spans_are_excluded_from_counter_dicts_and_equality(self):
        a, b = CostCounters(), CostCounters()
        a.record_span(SpanRecord("t", "1", None, "x", 0.0, 1.0))
        assert a == b
        assert not any(k.startswith("_") for k in a.as_dict())


class TestTracedEngineRun:
    """The timer hook: spans from a real run, identical across replays."""

    def _traced(self, dataset, focal):
        tracer = Tracer(trace_id="fixed")
        counters = CostCounters()
        counters._tracer = tracer
        with tracer.span("request"):
            result = maxrank(dataset, focal, tau=1, counters=counters)
        counters._tracer = None
        tracer.absorb(counters.drain_spans())
        return result, counters, tracer

    def test_engine_phases_traced_and_replay_identical(self, small_3d):
        result_a, counters_a, tracer_a = self._traced(small_3d, 7)
        result_b, counters_b, tracer_b = self._traced(small_3d, 7)
        names = {r.name for r in tracer_a.records()}
        assert {"request", "skyline", "quadtree_build", "within_leaf"} <= names
        shape = lambda t: [(s["id"], s["parent"], s["name"])
                           for s in t.export()["spans"]]
        assert shape(tracer_a) == shape(tracer_b)
        strip = lambda d: {k: v for k, v in d.items()
                           if not k.startswith("time_")}
        assert strip(counters_a.as_dict()) == strip(counters_b.as_dict())
        assert result_a.k_star == result_b.k_star


# ---------------------------------------------------------------- logging


class TestStructuredLog:
    def test_json_formatter_extras_and_order(self):
        buf = io.StringIO()
        handler = logging.StreamHandler(buf)
        handler.setFormatter(JsonLineFormatter())
        logger = get_logger("repro.test.json")
        logger.addHandler(handler)
        try:
            logger.warning("slow query", extra={"event": "slow_query",
                                                "elapsed_s": 0.5})
        finally:
            logger.removeHandler(handler)
        record = json.loads(buf.getvalue())
        assert list(record)[:4] == ["ts", "level", "logger", "message"]
        assert record["level"] == "warning"
        assert record["logger"] == "repro.test.json"
        assert record["event"] == "slow_query"
        assert record["elapsed_s"] == 0.5

    def test_text_formatter_renders_extras(self):
        buf = io.StringIO()
        handler = logging.StreamHandler(buf)
        handler.setFormatter(TextLineFormatter())
        logger = get_logger("repro.test.text")
        logger.addHandler(handler)
        try:
            logger.warning("drift", extra={"shard": "alpha"})
        finally:
            logger.removeHandler(handler)
        line = buf.getvalue()
        assert "repro.test.text: drift" in line
        assert 'shard="alpha"' in line

    def test_get_logger_prefixes_and_library_is_quiet(self):
        assert get_logger("service").name == "repro.service"
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_configure_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="unknown log format"):
            configure(fmt="yaml", stream=io.StringIO())


# ------------------------------------------------------- serving snapshot


class _FakeServer:
    connections_accepted = 3
    requests_handled = 40


class _FakeRouter:
    """Stat shapes copied from DatasetRouter.stats() (see test_router)."""

    def stats(self):
        return {
            "datasets": 2, "loaded": 2, "cold_starts": 2, "routed": 9,
            "slots": {
                "0": {"admitted": 5, "coalesced": 1, "waves": 3,
                      "wave_jobs": 4, "spread_shuffles": 0, "in_flight": 0},
                "1": {"admitted": 4, "coalesced": 0, "waves": 4,
                      "wave_jobs": 4, "spread_shuffles": 1, "in_flight": 1},
            },
            "services": {
                "alpha": {"queries_served": 5, "queries_computed": 3,
                          "cache_hits": 2, "cache_misses": 3,
                          "cache_evictions": 0, "cache_entries": 3},
                "beta": {"queries_served": 4, "queries_computed": 4,
                         "cache_hits": 0, "cache_misses": 4,
                         "cache_evictions": 1, "cache_entries": 3},
            },
        }


class TestServingSnapshot:
    def test_totals_are_exact_sums_of_layer_counters(self):
        snap = serving_snapshot(_FakeRouter(), _FakeServer())
        assert snap["admitted"] == 9
        assert snap["coalesced"] == 1
        assert snap["wave_jobs"] == 8
        assert snap["queries_served"] == 9
        assert snap["cache_hits"] == 2
        assert snap["connections"] == 3
        assert snap["requests"] == 40
        assert set(snap["shards"]) == {"alpha", "beta"}

    def test_without_server_omits_transport_keys(self):
        snap = serving_snapshot(_FakeRouter())
        assert "connections" not in snap and "requests" not in snap

    def test_collector_mirrors_snapshot_into_gauges(self):
        registry = MetricsRegistry()
        install_serving_collector(registry, _FakeRouter(), _FakeServer(),
                                  extra={"repro_build_info": 1})
        snap = registry.snapshot()
        assert snap["repro_serving_coalesced"] == 1
        assert snap["repro_serving_requests"] == 40
        assert snap['repro_shard_cache_hits{shard="alpha"}'] == 2
        assert snap["repro_build_info"] == 1


# ------------------------------------------------------------ serve verbs


class TestServeVerbs:
    @pytest.fixture
    def backend(self):
        from repro.service.cli import _ServeObservability, _ServiceBackend
        from repro.service.core import MaxRankService

        service = MaxRankService(generate("IND", 80, 3, seed=17))
        yield _ServiceBackend(service, None, _ServeObservability())
        service.close()

    def test_trace_verb_returns_answer_plus_span_tree(self, backend):
        from repro.service.cli import _handle_request

        plain, _ = _handle_request(backend, {"focal": 5, "tau": 1})
        assert "trace" not in plain
        traced, _ = _handle_request(
            backend, {"cmd": "trace", "focal": 9, "tau": 1}
        )
        assert traced["k_star"] >= 1
        names = {span["name"] for span in traced["trace"]["spans"]}
        assert {"request", "service.query", "compute", "skyline"} <= names

    def test_metrics_verb_is_one_coherent_snapshot(self, backend):
        from repro.service.cli import _handle_request

        _handle_request(backend, {"focal": 5, "tau": 1})
        _handle_request(backend, {"focal": 5, "tau": 1})
        answer, _ = _handle_request(backend, {"cmd": "metrics"})
        assert answer["serving"]["queries_served"] == 2
        assert answer["serving"]["cache_hits"] == 1
        shard = backend.service.dataset.name
        assert answer["metrics"][
            f'repro_requests_total{{shard="{shard}"}}'] == 2
        assert answer["metrics"][
            f'repro_query_latency_seconds{{shard="{shard}"}}']["count"] == 2

    def test_slow_threshold_traces_and_logs_every_query(self):
        from repro.service.cli import (
            _ServeObservability, _ServiceBackend, _handle_request,
        )
        from repro.service.core import MaxRankService

        buf = io.StringIO()
        handler = logging.StreamHandler(buf)
        handler.setFormatter(JsonLineFormatter())
        logger = get_logger("repro.serve")
        logger.addHandler(handler)
        try:
            with MaxRankService(generate("IND", 80, 3, seed=17)) as service:
                obs = _ServeObservability(slow_threshold=0.0)
                backend = _ServiceBackend(service, None, obs)
                payload, _ = _handle_request(backend, {"focal": 5, "tau": 1})
                assert "trace" not in payload  # plain answer stays plain
        finally:
            logger.removeHandler(handler)
        record = json.loads(buf.getvalue())
        assert record["event"] == "slow_query"
        assert record["trace"]["spans"]
        assert obs.slow_queries == 1


# -------------------------------------------------------------- trace_view


class TestTraceView:
    def test_renders_tree_with_self_times(self):
        trace_view = _load_trace_view()
        trace = {
            "trace_id": "t0",
            "spans": [
                {"id": "1", "parent": None, "name": "request",
                 "start_s": 0.0, "elapsed_s": 0.010},
                {"id": "1.1", "parent": "1", "name": "compute",
                 "start_s": 0.001, "elapsed_s": 0.008,
                 "meta": {"cache_hit": False}},
                {"id": "1.10", "parent": "1", "name": "tail",
                 "start_s": 0.009, "elapsed_s": 0.001},
                {"id": "1.9", "parent": "1", "name": "mid",
                 "start_s": 0.009, "elapsed_s": 0.0},
            ],
        }
        out = io.StringIO()
        trace_view.render(trace, out=out)
        lines = out.getvalue().splitlines()
        assert lines[0].startswith("trace t0 — 4 spans")
        assert lines[1].lstrip().startswith("request")
        # children sorted numerically: 1.1, then 1.9 before 1.10
        assert [l.strip().split()[0] for l in lines[2:]] == [
            "compute", "mid", "tail"
        ]
        # self = 10ms - (8 + 0 + 1)ms = 1ms
        assert "self     1.000ms" in lines[1]
        assert "[cache_hit=False]" in lines[2]

    def test_accepts_wrapped_shapes_and_rejects_garbage(self):
        trace_view = _load_trace_view()
        inner = {"trace_id": "t", "spans": []}
        assert trace_view._extract_spans({"trace": inner}) == inner
        assert trace_view._extract_spans(inner) == inner
        with pytest.raises(ValueError, match="no span list"):
            trace_view._extract_spans({"k_star": 3})
