"""Tests for minimum bounding rectangles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.index import MBR

unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)


def boxes(dim: int = 3):
    """Strategy producing valid (lower, upper) pairs."""
    return st.lists(
        st.tuples(unit_floats, unit_floats), min_size=dim, max_size=dim
    ).map(lambda pairs: (np.array([min(a, b) for a, b in pairs]),
                         np.array([max(a, b) for a, b in pairs])))


class TestConstruction:
    def test_from_point_is_degenerate(self):
        box = MBR.from_point([0.3, 0.7])
        assert box.area == 0.0
        assert box.contains_point([0.3, 0.7])

    def test_invalid_bounds_rejected(self):
        with pytest.raises(IndexError_):
            MBR([1.0, 0.0], [0.0, 1.0])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(IndexError_):
            MBR([0.0, 0.0], [1.0])

    def test_union_of_empty_rejected(self):
        with pytest.raises(IndexError_):
            MBR.union_of([])


class TestMeasures:
    def test_area_and_margin(self):
        box = MBR([0.0, 0.0], [2.0, 3.0])
        assert box.area == pytest.approx(6.0)
        assert box.margin == pytest.approx(5.0)

    def test_centre(self):
        box = MBR([0.0, 0.0], [2.0, 4.0])
        assert np.allclose(box.centre, [1.0, 2.0])

    def test_union(self):
        a = MBR([0.0, 0.0], [1.0, 1.0])
        b = MBR([2.0, -1.0], [3.0, 0.5])
        union = a.union(b)
        assert np.allclose(union.lower, [0.0, -1.0])
        assert np.allclose(union.upper, [3.0, 1.0])

    def test_enlargement_zero_when_contained(self):
        outer = MBR([0.0, 0.0], [4.0, 4.0])
        inner = MBR([1.0, 1.0], [2.0, 2.0])
        assert outer.enlargement(inner) == pytest.approx(0.0)

    def test_overlap_of_disjoint_boxes_is_zero(self):
        a = MBR([0.0, 0.0], [1.0, 1.0])
        b = MBR([2.0, 2.0], [3.0, 3.0])
        assert a.overlap(b) == 0.0

    def test_overlap_area(self):
        a = MBR([0.0, 0.0], [2.0, 2.0])
        b = MBR([1.0, 1.0], [3.0, 3.0])
        assert a.overlap(b) == pytest.approx(1.0)


class TestPredicates:
    def test_contains_box(self):
        outer = MBR([0.0, 0.0], [4.0, 4.0])
        inner = MBR([1.0, 1.0], [2.0, 2.0])
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_intersects_and_within(self):
        box = MBR([1.0, 1.0], [2.0, 2.0])
        assert box.intersects_box([0.0, 0.0], [1.5, 1.5])
        assert not box.intersects_box([3.0, 3.0], [4.0, 4.0])
        assert box.within_box([0.0, 0.0], [5.0, 5.0])
        assert not box.within_box([0.0, 0.0], [1.5, 1.5])

    def test_dominance_keys(self):
        box = MBR([0.2, 0.2], [0.6, 0.8])
        assert box.max_corner_sum() == pytest.approx(1.4)
        assert box.upper_dominates_point([0.5, 0.5])
        assert not box.upper_dominates_point([0.9, 0.9])
        assert box.dominated_by_point([0.9, 0.9])
        assert not box.dominated_by_point([0.5, 0.9])


class TestProperties:
    @given(boxes(), boxes())
    @settings(max_examples=50, deadline=None)
    def test_union_contains_both(self, ab, cd):
        a = MBR(*ab)
        b = MBR(*cd)
        union = a.union(b)
        assert union.contains_box(a)
        assert union.contains_box(b)

    @given(boxes(), boxes())
    @settings(max_examples=50, deadline=None)
    def test_overlap_symmetric_and_bounded(self, ab, cd):
        a = MBR(*ab)
        b = MBR(*cd)
        assert a.overlap(b) == pytest.approx(b.overlap(a))
        assert a.overlap(b) <= min(a.area, b.area) + 1e-12

    @given(boxes())
    @settings(max_examples=50, deadline=None)
    def test_enlargement_non_negative(self, ab):
        a = MBR(*ab)
        reference = MBR(np.zeros(3), np.ones(3))
        assert reference.enlargement(a) >= -1e-12
