"""Unit tests for the shared quad-tree cell-collection scan used by BA and AA."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CostCounters
from repro.core.cells import collect_cells, region_for_cell
from repro.geometry import Halfspace, minimum_order_cells
from repro.quadtree import AugmentedQuadTree


def build_tree(halfspaces, split_threshold=4):
    tree = AugmentedQuadTree(halfspaces[0].dim, split_threshold=split_threshold)
    for h in halfspaces:
        tree.insert(h)
    return tree


def random_halfspaces(count, dim, seed):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(count):
        normal = rng.normal(size=dim)
        while np.allclose(normal, 0):
            normal = rng.normal(size=dim)
        out.append(Halfspace(normal, rng.uniform(-0.3, 0.6), record_id=i))
    return out


class TestCollectCells:
    def test_single_halfspace_minimum_zero(self):
        tree = build_tree([Halfspace([1.0, 0.2], 0.4, record_id=0)])
        best, cells = collect_cells(tree)
        assert best == 0
        assert all(record.order == 0 for record in cells)
        assert all(record.containing_ids == frozenset() for record in cells)

    def test_covering_halfspace_forces_order_one(self):
        tree = build_tree([Halfspace([1.0, 1.0], -5.0, record_id=9)])
        best, cells = collect_cells(tree)
        assert best == 1
        assert all(record.containing_ids == {0} for record in cells)

    @pytest.mark.parametrize("seed,count", [(0, 5), (1, 8), (2, 11), (3, 6)])
    def test_minimum_matches_reference_arrangement(self, seed, count):
        """The scan must find the same minimum order as the exhaustive oracle."""
        halfspaces = random_halfspaces(count, 2, seed)
        tree = build_tree(halfspaces)
        best, cells = collect_cells(tree)
        reference_best, _ = minimum_order_cells(halfspaces)
        assert best == reference_best
        assert cells, "at least one minimum-order cell must be reported"

    @pytest.mark.parametrize("seed", [0, 1])
    def test_tau_widens_collection(self, seed):
        halfspaces = random_halfspaces(7, 3, seed)
        tree = build_tree(halfspaces)
        best0, tight = collect_cells(tree, tau=0)
        best1, loose = collect_cells(tree, tau=1)
        assert best0 == best1
        assert len(loose) >= len(tight)
        assert all(record.order <= best1 + 1 for record in loose)

    def test_cache_reuse_is_consistent(self):
        halfspaces = random_halfspaces(9, 2, seed=5)
        tree = build_tree(halfspaces)
        cache: dict = {}
        best_first, cells_first = collect_cells(tree, cache=cache)
        best_second, cells_second = collect_cells(tree, cache=cache)
        assert best_first == best_second
        assert len(cells_first) == len(cells_second)

    def test_counters_track_leaf_processing(self):
        halfspaces = random_halfspaces(12, 2, seed=6)
        tree = build_tree(halfspaces, split_threshold=3)
        counters = CostCounters()
        collect_cells(tree, counters=counters)
        assert counters.leaves_processed >= 1
        assert counters.leaves_processed + counters.leaves_pruned == tree.leaf_count()

    def test_region_for_cell_round_trip(self):
        halfspaces = random_halfspaces(6, 2, seed=7)
        tree = build_tree(halfspaces)
        best, cells = collect_cells(tree)
        region = region_for_cell(tree, cells[0], dominator_count=3)
        assert region.order == 3 + best + 1
        point = region.geometry.interior_point()
        # The witness point must satisfy the bit assignment the cell encodes.
        for hid in cells[0].containing_ids:
            assert tree.halfspace(hid).contains_point(point)
