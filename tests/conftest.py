"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, generate_anticorrelated, generate_correlated, generate_independent


@pytest.fixture
def paper_example() -> Dataset:
    """The running example of the paper (Figure 1): five records plus p = (0.5, 0.5).

    Record index 5 is the focal record; the expected MaxRank answer is
    ``k* = 3`` attained on the q1 intervals (0, 0.2) and (0.4, 0.6).
    """
    return Dataset(
        [
            [0.8, 0.9],   # r1 — dominates p
            [0.2, 0.7],   # r2 — incomparable
            [0.9, 0.4],   # r3 — incomparable
            [0.7, 0.2],   # r4 — incomparable
            [0.4, 0.3],   # r5 — dominated by p
            [0.5, 0.5],   # p  — the focal record
        ],
        name="paper-example",
    )


@pytest.fixture
def small_2d() -> Dataset:
    """A reproducible 2-attribute dataset small enough for oracle comparisons."""
    return generate_independent(60, 2, seed=101)


@pytest.fixture
def small_3d() -> Dataset:
    """A reproducible 3-attribute dataset small enough for oracle comparisons."""
    return generate_independent(40, 3, seed=202)


@pytest.fixture
def medium_4d() -> Dataset:
    """A 4-attribute dataset exercising the quad-tree path without being slow."""
    return generate_independent(150, 4, seed=303)


@pytest.fixture
def rng() -> np.random.Generator:
    """Seeded random generator for test-local randomness."""
    return np.random.default_rng(12345)
