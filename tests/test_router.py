"""Router + admission behaviour: hashing stability, single-flight, isolation.

The sharded front's promises, pinned:

* the consistent-hash ring remaps only the keys of a removed slot (and
  steals only the stolen keys when one is added) — warm slots stay warm;
* N duplicate concurrent queries → exactly one computation, N identical
  responses, ``coalesced == N - 1``;
* mutating one shard never touches another shard's answers or state;
* everything an admission wave returns is bit-identical to standalone
  ``maxrank()``.
"""

from __future__ import annotations

import threading

import pytest

from repro import CostCounters, MaxRankService, generate, maxrank
from repro.errors import AlgorithmError, ReproError
from repro.service import AdmissionController, ConsistentHashRing, DatasetRouter
from repro.service.core import result_fingerprint


class TestConsistentHashRing:
    KEYS = [f"dataset-{i}" for i in range(200)]

    def test_deterministic_across_instances(self):
        a = ConsistentHashRing(["s0", "s1", "s2"])
        b = ConsistentHashRing(["s0", "s1", "s2"])
        assert [a.slot_for(k) for k in self.KEYS] == [
            b.slot_for(k) for k in self.KEYS
        ]

    def test_every_slot_gets_keys(self):
        ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        owners = {ring.slot_for(k) for k in self.KEYS}
        assert owners == {"s0", "s1", "s2", "s3"}

    def test_remove_remaps_only_the_removed_slots_keys(self):
        ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        before = {k: ring.slot_for(k) for k in self.KEYS}
        ring.remove_slot("s2")
        after = {k: ring.slot_for(k) for k in self.KEYS}
        for key in self.KEYS:
            if before[key] == "s2":
                assert after[key] != "s2"
            else:
                assert after[key] == before[key]  # stability: nobody else moves

    def test_add_steals_only_what_it_now_owns(self):
        ring = ConsistentHashRing(["s0", "s1", "s2"])
        before = {k: ring.slot_for(k) for k in self.KEYS}
        ring.add_slot("s3")
        after = {k: ring.slot_for(k) for k in self.KEYS}
        moved = {k for k in self.KEYS if after[k] != before[k]}
        assert moved  # the new slot does take some load...
        assert all(after[k] == "s3" for k in moved)  # ...and only to itself

    def test_add_then_remove_roundtrips(self):
        ring = ConsistentHashRing(["s0", "s1"])
        before = {k: ring.slot_for(k) for k in self.KEYS}
        ring.add_slot("s2")
        ring.remove_slot("s2")
        assert {k: ring.slot_for(k) for k in self.KEYS} == before

    def test_membership_errors(self):
        ring = ConsistentHashRing(["s0"])
        with pytest.raises(AlgorithmError):
            ring.add_slot("s0")
        with pytest.raises(AlgorithmError):
            ring.remove_slot("s9")
        ring.remove_slot("s0")
        with pytest.raises(AlgorithmError):
            ring.slot_for("anything")


class TestSingleFlight:
    def test_duplicates_coalesce_to_one_computation(self):
        """N identical concurrent queries: 1 computation, N equal answers."""
        n_clients = 8
        dataset = generate("IND", 150, 3, seed=21)
        counters = CostCounters()
        reference = result_fingerprint(
            maxrank(dataset, 7, tau=1, counters=counters)
        )
        with MaxRankService(dataset) as service:
            # A generous arrival window so all clients provably attach to
            # the first request's flight before its wave departs.
            admission = AdmissionController(wave_window_s=0.3)
            barrier = threading.Barrier(n_clients)
            answers = [None] * n_clients

            def client(i: int):
                barrier.wait()
                answers[i] = admission.submit(service, "ds", 7, tau=1)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            results = [result for result, _hit in answers]
            assert all(
                result_fingerprint(r) == reference for r in results
            )
            assert all(r is results[0] for r in results)  # the same flight
            stats = admission.stats()
            assert stats["coalesced"] == n_clients - 1
            assert stats["admitted"] == n_clients
            assert stats["waves"] == 1 and stats["wave_jobs"] == 1
            assert service.stats()["queries_computed"] == 1

    def test_errors_propagate_to_every_waiter(self):
        dataset = generate("IND", 80, 3, seed=2)
        with MaxRankService(dataset) as service:
            admission = AdmissionController(wave_window_s=0.2)
            barrier = threading.Barrier(4)
            outcomes = []

            def client():
                barrier.wait()
                try:
                    admission.submit(service, "ds", 10**9)  # out of range
                except ReproError as exc:
                    outcomes.append(str(exc))

            threads = [threading.Thread(target=client) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(outcomes) == 4
            assert admission.stats()["in_flight"] == 0  # failed flight landed

    def test_hot_backlog_is_spread_randomly(self):
        """More pending flights than one wave admits triggers the seeded
        MRV-style shuffle and everything still lands exactly once."""
        dataset = generate("IND", 100, 3, seed=4)
        focals = list(range(12))
        with MaxRankService(dataset) as service:
            admission = AdmissionController(wave_size=3, wave_window_s=0.15)
            barrier = threading.Barrier(len(focals))
            answers = {}
            lock = threading.Lock()

            def client(focal: int):
                barrier.wait()
                result, _hit = admission.submit(service, "ds", focal)
                with lock:
                    answers[focal] = result

            threads = [
                threading.Thread(target=client, args=(f,)) for f in focals
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert sorted(answers) == focals
            for focal in focals:
                counters = CostCounters()
                reference = maxrank(dataset, focal, counters=counters)
                assert result_fingerprint(answers[focal]) == result_fingerprint(
                    reference
                )
            stats = admission.stats()
            assert stats["spread_shuffles"] >= 1
            assert stats["waves"] >= len(focals) // 3
            assert stats["wave_jobs"] == len(focals)
            assert service.stats()["queries_computed"] == len(focals)


class TestDatasetRouter:
    @pytest.fixture()
    def router(self):
        shards = {
            "alpha": MaxRankService(generate("IND", 120, 3, seed=31)),
            "beta": MaxRankService(generate("ANTI", 110, 3, seed=32)),
        }
        with DatasetRouter(shards, slots=2, wave_window_s=0.0) as router:
            yield router

    def test_routing_is_stable_and_total(self, router):
        assert router.dataset_ids == ("alpha", "beta")
        slots = {ds: router.slot_for(ds) for ds in router.dataset_ids}
        assert set(slots.values()) <= {"slot-0", "slot-1"}
        assert slots == {ds: router.slot_for(ds) for ds in router.dataset_ids}

    def test_unknown_dataset_is_a_clean_error(self, router):
        with pytest.raises(AlgorithmError, match="unknown dataset"):
            router.query("gamma", 3)

    def test_answers_match_standalone_per_shard(self, router):
        for dataset_id in router.dataset_ids:
            dataset = router.service(dataset_id).dataset
            counters = CostCounters()
            reference = maxrank(dataset, 5, tau=1, counters=counters)
            result, cache_hit = router.query(dataset_id, 5, tau=1)
            assert result_fingerprint(result) == result_fingerprint(reference)
            assert cache_hit is False
            again, cache_hit = router.query(dataset_id, 5, tau=1)
            assert cache_hit is True
            assert result_fingerprint(again) == result_fingerprint(reference)

    def test_mutating_one_shard_isolates_the_other(self, router):
        """Concurrent churn on beta while alpha absorbs inserts: beta's
        answers never change, alpha's post-mutation answers are exact."""
        beta_reference = result_fingerprint(router.query("beta", 8, tau=1)[0])
        stop = threading.Event()
        failures = []

        def churn_beta():
            while not stop.is_set():
                result, _hit = router.query("beta", 8, tau=1)
                if result_fingerprint(result) != beta_reference:
                    failures.append("beta answer changed")
                    return

        worker = threading.Thread(target=churn_beta)
        worker.start()
        try:
            for _ in range(3):
                router.insert("alpha", [0.5, 0.6, 0.7])
        finally:
            stop.set()
            worker.join()
        assert not failures
        alpha = router.service("alpha")
        assert alpha.dataset.n == 123
        # Post-mutation alpha answers are bit-identical to a fresh build.
        result, _hit = router.query("alpha", 4, tau=1)
        with MaxRankService(alpha.dataset) as fresh:
            assert result_fingerprint(result) == result_fingerprint(
                fresh.query(4, tau=1)
            )
        beta_stats = router.service("beta").stats()
        assert beta_stats["invalidated"] == 0  # isolation: untouched

    def test_lazy_cold_start_from_snapshots(self, tmp_path):
        paths = {}
        for name, seed in (("one", 41), ("two", 42)):
            with MaxRankService(generate("IND", 90, 3, seed=seed)) as service:
                path = tmp_path / f"{name}.rprs"
                service.save_snapshot(path)
                paths[name] = str(path)
        with DatasetRouter(paths, slots=2) as router:
            assert router.cold_starts == 0  # nothing loaded yet
            result, _hit = router.query("one", 3)
            assert router.cold_starts == 1  # only the queried shard loaded
            assert result.k_star >= 1
            stats = router.stats()
            assert stats["loaded"] == ["one"]
            router.query("two", 3)
            assert router.cold_starts == 2

    def test_concurrent_cold_start_loads_once(self, tmp_path):
        with MaxRankService(generate("IND", 90, 3, seed=43)) as service:
            path = tmp_path / "cold.rprs"
            service.save_snapshot(path)
        with DatasetRouter({"cold": str(path)}, slots=1) as router:
            barrier = threading.Barrier(6)
            services = []
            lock = threading.Lock()

            def hit():
                barrier.wait()
                svc = router.service("cold")
                with lock:
                    services.append(svc)

            threads = [threading.Thread(target=hit) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert router.cold_starts == 1
            assert all(svc is services[0] for svc in services)
