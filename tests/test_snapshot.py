"""Tests for R*-tree + record-matrix snapshot persistence (index/diskio)."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro import CostCounters, Dataset, generate, maxrank
from repro.errors import SnapshotError
from repro.index import RStarTree, load_snapshot, save_snapshot
from repro.index.diskio import SNAPSHOT_MAGIC, SNAPSHOT_VERSION


def assert_trees_identical(a, b):
    """Node-for-node structural identity: levels, pages, entries, MBRs, counts."""
    stack = [(a.root, b.root)]
    while stack:
        left, right = stack.pop()
        assert left.level == right.level
        assert left.page_id == right.page_id
        assert len(left.entries) == len(right.entries)
        assert left.count == right.count
        assert np.array_equal(left.mbr.lower, right.mbr.lower)
        assert np.array_equal(left.mbr.upper, right.mbr.upper)
        if left.is_leaf:
            for x, y in zip(left.entries, right.entries):
                assert x.record_id == y.record_id
                assert np.array_equal(x.point, y.point)
        else:
            stack.extend(zip(left.entries, right.entries))


@pytest.fixture
def snapshot_case(tmp_path):
    dataset = generate("ANTI", 400, 4, seed=3)
    tree = RStarTree.build(dataset.records)
    path = tmp_path / "tree.rprs"
    save_snapshot(path, tree, dataset.records,
                  metadata={"dataset_name": dataset.name})
    return dataset, tree, path


class TestRoundTrip:
    def test_tree_is_node_for_node_identical(self, snapshot_case):
        dataset, tree, path = snapshot_case
        payload = load_snapshot(path)
        assert_trees_identical(tree, payload.tree)
        assert payload.tree.size == tree.size
        assert payload.tree.height == tree.height
        assert payload.tree.node_count() == tree.node_count()

    def test_disk_and_capacity_state_restored(self, snapshot_case):
        _, tree, path = snapshot_case
        loaded = load_snapshot(path).tree
        assert loaded.disk.page_size == tree.disk.page_size
        assert loaded.disk.pages_allocated == tree.disk.pages_allocated
        assert loaded._leaf_capacity == tree._leaf_capacity
        assert loaded._internal_capacity == tree._internal_capacity

    def test_records_and_metadata_round_trip(self, snapshot_case):
        dataset, _, path = snapshot_case
        payload = load_snapshot(path)
        assert np.array_equal(payload.records, np.asarray(dataset.records))
        assert payload.metadata["dataset_name"] == dataset.name

    def test_attribute_names_round_trip(self, tmp_path):
        dataset = Dataset([[0.1, 0.9], [0.8, 0.2], [0.5, 0.5]],
                          attribute_names=("price", "rating"), name="HOTEL")
        tree = RStarTree.build(dataset.records)
        path = tmp_path / "named.rprs"
        save_snapshot(path, tree, dataset.records,
                      metadata={"dataset_name": dataset.name,
                                "attribute_names": list(dataset.attribute_names)})
        payload = load_snapshot(path)
        assert tuple(payload.metadata["attribute_names"]) == ("price", "rating")

    def test_query_results_byte_identical(self, snapshot_case):
        dataset, tree, path = snapshot_case
        payload = load_snapshot(path)
        reloaded = Dataset(payload.records, name=dataset.name)
        for focal, tau in ((3, 0), (11, 2)):
            original_counters = CostCounters()
            original = maxrank(dataset, focal, tau=tau, tree=tree,
                               counters=original_counters)
            loaded_counters = CostCounters()
            loaded = maxrank(reloaded, focal, tau=tau, tree=payload.tree,
                             counters=loaded_counters)
            assert original.k_star == loaded.k_star
            assert sorted(
                (r.cell_order, r.outscored_by, r.representative_query().tobytes())
                for r in original.regions
            ) == sorted(
                (r.cell_order, r.outscored_by, r.representative_query().tobytes())
                for r in loaded.regions
            )
            original_dump = {k: v for k, v in original_counters.as_dict().items()
                             if not k.startswith("time_")}
            loaded_dump = {k: v for k, v in loaded_counters.as_dict().items()
                           if not k.startswith("time_")}
            assert original_dump == loaded_dump

    def test_insert_built_tree_round_trips(self, tmp_path):
        dataset = generate("IND", 120, 3, seed=5)
        tree = RStarTree.build(dataset.records, method="insert", max_entries=8)
        path = tmp_path / "inserted.rprs"
        save_snapshot(path, tree, dataset.records)
        assert_trees_identical(tree, load_snapshot(path).tree)


class TestSaveValidation:
    def test_rejects_tree_over_different_matrix(self, tmp_path):
        dataset = generate("IND", 50, 3, seed=1)
        other = generate("IND", 50, 3, seed=2)
        tree = RStarTree.build(dataset.records)
        with pytest.raises(SnapshotError, match="not a row"):
            save_snapshot(tmp_path / "bad.rprs", tree, other.records)

    def test_rejects_dimension_mismatch(self, tmp_path):
        dataset = generate("IND", 50, 3, seed=1)
        tree = RStarTree.build(dataset.records)
        with pytest.raises(SnapshotError, match="dimension"):
            save_snapshot(tmp_path / "bad.rprs", tree,
                          np.random.default_rng(0).random((50, 4)))

    def test_rejects_empty_records(self, tmp_path):
        dataset = generate("IND", 50, 3, seed=1)
        tree = RStarTree.build(dataset.records)
        with pytest.raises(SnapshotError, match="non-empty"):
            save_snapshot(tmp_path / "bad.rprs", tree,
                          np.empty((0, 3)))


class TestCorruption:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot open"):
            load_snapshot(tmp_path / "nope.rprs")

    def test_bad_magic(self, snapshot_case, tmp_path):
        _, _, path = snapshot_case
        data = path.read_bytes()
        bad = tmp_path / "magic.rprs"
        bad.write_bytes(b"NOTASNAP" + data[8:])
        with pytest.raises(SnapshotError, match="bad magic"):
            load_snapshot(bad)

    def test_unsupported_version(self, snapshot_case, tmp_path):
        _, _, path = snapshot_case
        data = path.read_bytes()
        bad = tmp_path / "version.rprs"
        bad.write_bytes(SNAPSHOT_MAGIC + struct.pack("<I", SNAPSHOT_VERSION + 7)
                        + data[12:])
        with pytest.raises(SnapshotError, match="version"):
            load_snapshot(bad)

    def test_truncation(self, snapshot_case, tmp_path):
        _, _, path = snapshot_case
        data = path.read_bytes()
        for cut in (10, len(data) // 3, len(data) - 20):
            bad = tmp_path / f"cut{cut}.rprs"
            bad.write_bytes(data[:cut])
            with pytest.raises(SnapshotError):
                load_snapshot(bad)

    def test_corrupted_payload_byte_raises_not_garbage(self, snapshot_case, tmp_path):
        """Flipping any payload byte must raise, never return a wrong tree."""
        _, _, path = snapshot_case
        data = bytearray(path.read_bytes())
        # A spread of offsets across the records array and the node tables.
        offsets = [len(data) // 4, len(data) // 2, 3 * len(data) // 4, len(data) - 9]
        for offset in offsets:
            corrupted = bytearray(data)
            corrupted[offset] ^= 0xFF
            bad = tmp_path / f"flip{offset}.rprs"
            bad.write_bytes(bytes(corrupted))
            with pytest.raises(SnapshotError):
                load_snapshot(bad)
