"""Mutation-differential harness: incremental maintenance vs. fresh oracle.

The mutable service (:meth:`MaxRankService.insert` / ``delete``) claims that
after any sequence of mutations it is *indistinguishable* from a service
freshly built over the mutated dataset — every answer bit-identical, every
engine-invariant counter equal, and no retained cache entry ever serving a
stale answer.  This harness attacks that claim with randomized, seeded
insert/delete/query sequences across the distribution × dimension × tau
matrix:

* after **every** mutation, a cold oracle service is built from scratch on
  a copy of the mutated records and probed alongside the incremental
  service — fingerprints (:func:`result_fingerprint`) must match byte for
  byte and the :data:`MUTATION_INVARIANT_COUNTERS` must be equal, even
  though the incrementally maintained R*-tree and the oracle's bulk-built
  tree have different shapes;
* a **stale-answer detector** walks every cache entry that survived scoped
  invalidation and re-derives it on the oracle — a single stale byte fails
  the case;
* each sequence plants one insert that is dominated by an already-cached
  focal record, so scoped invalidation *must* retain at least one entry per
  case (``retained > 0`` is asserted case by case, and eviction is asserted
  in aggregate);
* a ``jobs=2`` sweep re-runs post-mutation probes through the process-pool
  batch path.

Counters excluded from the invariant set (``page_reads``,
``distinct_page_reads``, ``records_accessed``) legitimately depend on the
tree shape; everything the algorithms derive from the *data* does not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.generators import generate
from repro.service import MaxRankService, result_fingerprint

#: Counters that must be equal between an incrementally maintained service
#: and a fresh-built oracle.  Tree-shape-dependent IO counters
#: (page_reads, distinct_page_reads, records_accessed) and service-layer
#: counters are excluded by design.
MUTATION_INVARIANT_COUNTERS = (
    "halfspaces_inserted",
    "halfspaces_expanded",
    "cells_examined",
    "nonempty_cells",
    "candidates_generated",
    "prefixes_cut",
    "screen_accepts",
    "screen_rejects",
    "pairwise_pruned",
    "lines_inserted",
    "faces_enumerated",
    "lp_calls",
    "lp_constraint_rows",
    "leaves_processed",
    "leaves_pruned",
    "iterations",
    "skyline_updates",
)

#: (distribution, d, tau, dataset size, mutations, warm/probe width); ANTI
#: and d = 4 use smaller workloads to keep the 40-case matrix inside the CI
#: budget — tau = 4 at d = 4 widens the explored skyband sharply, so those
#: two cells shrink the most.
CONFIGS = [
    ("IND", 3, 1, 42, 6, 4),
    ("IND", 3, 4, 42, 6, 4),
    ("ANTI", 3, 1, 26, 6, 4),
    ("ANTI", 3, 4, 26, 6, 4),
    ("IND", 4, 1, 30, 6, 4),
    ("IND", 4, 4, 12, 4, 2),
    ("ANTI", 4, 1, 16, 6, 4),
    ("ANTI", 4, 4, 8, 4, 2),
]
SEEDS = range(5)

CASES = [
    pytest.param(dist, d, tau, n, mutations, width, seed,
                 id=f"{dist}-d{d}-tau{tau}-s{seed}")
    for (dist, d, tau, n, mutations, width) in CONFIGS
    for seed in SEEDS
]

#: Aggregated across the whole matrix by the parametrized cases; the
#: trailing aggregate test (pytest runs file order) gates the totals.
TALLY = {"retained": 0, "invalidated": 0, "stale": 0, "cases": 0}


def invariant_dump(result):
    return {name: getattr(result.counters, name) for name in MUTATION_INVARIANT_COUNTERS}


def build_oracle(service):
    """Cold service over a copy of the mutated records — the ground truth."""
    return MaxRankService(
        Dataset(service.dataset.records.copy(), name="oracle"), cache_size=0
    )


def probe_focals(rng, n, count=3):
    return sorted(rng.choice(n, size=min(count, n), replace=False).tolist())


def assert_matches_oracle(service, oracle, focal, tau):
    """Computed answers must match the oracle in bytes *and* counters."""
    served = service.query(focal, tau=tau, use_cache=False)
    reference = oracle.query(focal, tau=tau, use_cache=False)
    assert result_fingerprint(served) == result_fingerprint(reference)
    assert invariant_dump(served) == invariant_dump(reference)


def count_stale_entries(service, oracle):
    """Stale-answer detector: re-derive every surviving cache entry cold."""
    stale = 0
    for key, cached in list(service.cache._entries.items()):
        identity, tau = key[0], key[1]
        focal = identity[1] if identity[0] == "idx" else np.frombuffer(identity[1])
        reference = oracle.query(focal, tau=tau, use_cache=False)
        if result_fingerprint(cached) != result_fingerprint(reference):
            stale += 1
    return stale


def run_sequence(service, *, tau, seed, mutations=6, width=4):
    """Drive one seeded insert/delete/query sequence, verifying every step.

    ``width`` controls the warm-cache size and the per-step probe count —
    the knob that scales a case's cost (each probe is answered by both the
    incremental service and a cold oracle).
    """
    rng = np.random.default_rng(seed * 7919 + service.dataset.d)
    d = service.dataset.d

    warm_focals = probe_focals(rng, service.dataset.n, count=width)
    for focal in warm_focals:
        service.query(focal, tau=tau)

    # Planted retention witness: a record strictly dominated by a cached
    # focal can never influence that focal's answer, so its insertion MUST
    # leave the entry in the cache (scoped invalidation case 1).
    planted = service.dataset.records[warm_focals[0]] * 0.5

    for step in range(mutations):
        if step == 0:
            service.insert(planted)
        elif step % 3 == 2 and service.dataset.n > 4:
            service.delete(int(rng.integers(0, service.dataset.n)))
        else:
            service.insert(rng.uniform(0.05, 0.95, size=d))

        oracle = build_oracle(service)
        try:
            TALLY["stale"] += (stale := count_stale_entries(service, oracle))
            assert stale == 0, f"stale cache entries after step {step}"
            for focal in probe_focals(rng, service.dataset.n, count=width - 1):
                assert_matches_oracle(service, oracle, focal, tau)
            # Cached (possibly retained) serves must agree too.
            for focal in probe_focals(rng, service.dataset.n, count=width - 1):
                served = service.query(focal, tau=tau)
                reference = oracle.query(focal, tau=tau, use_cache=False)
                assert result_fingerprint(served) == result_fingerprint(reference)
        finally:
            oracle.close()


class TestMutationDifferential:
    """After every mutation the service equals a fresh-built oracle."""

    @pytest.mark.parametrize("dist, d, tau, n, mutations, width, seed", CASES)
    def test_sequence_matches_oracle(self, dist, d, tau, n, mutations, width, seed):
        dataset = generate(dist, n, d, seed=seed)
        with MaxRankService(dataset, cache_size=64) as service:
            run_sequence(service, tau=tau, seed=seed, mutations=mutations,
                         width=width)
            stats = service.stats()
            assert stats["inserts"] >= 3 and stats["deletes"] >= 1
            assert stats["retained"] > 0, "planted dominated insert must be retained"
            TALLY["retained"] += stats["retained"]
            TALLY["invalidated"] += stats["invalidated"]
            TALLY["cases"] += 1


class TestMutationBatchParallel:
    """Post-mutation batches through the jobs=2 process pool match the oracle."""

    @pytest.mark.parametrize(
        "dist, d, n", [("IND", 3, 42), ("ANTI", 3, 26), ("IND", 4, 30)]
    )
    def test_parallel_batch_after_mutations(self, dist, d, n):
        dataset = generate(dist, n, d, seed=11)
        rng = np.random.default_rng(101)
        with MaxRankService(dataset, cache_size=64) as service:
            service.insert(rng.uniform(0.05, 0.95, size=d))
            service.delete(int(rng.integers(0, service.dataset.n)))
            service.insert(rng.uniform(0.05, 0.95, size=d))
            focals = probe_focals(rng, service.dataset.n, count=6)
            batch = service.query_batch(focals, tau=1, jobs=2)
            oracle = build_oracle(service)
            try:
                for focal, served in zip(focals, batch):
                    reference = oracle.query(focal, tau=1, use_cache=False)
                    assert result_fingerprint(served) == result_fingerprint(reference)
                    assert invariant_dump(served) == invariant_dump(reference)
            finally:
                oracle.close()


class TestMatrixAggregates:
    """Runs after the parametrized matrix (pytest preserves file order)."""

    def test_matrix_retained_and_invalidated(self):
        assert TALLY["cases"] == len(CASES)
        assert TALLY["stale"] == 0, "zero stale cached serves across the matrix"
        assert TALLY["retained"] > 0
        assert TALLY["invalidated"] > 0, (
            "scoped invalidation never evicting anything across 40 mutated "
            "sequences would mean the predicate is vacuous"
        )
