"""Tests for the public facade (maxrank / imaxrank), result types and accessor."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CostCounters,
    MaxRankRegion,
    MaxRankResult,
    RStarTree,
    generate_independent,
    imaxrank,
    maxrank,
)
from repro.core import DataAccessor
from repro.core.result import MaxRankRegion as RegionType
from repro.errors import AlgorithmError
from repro.geometry import Interval


class TestFacadeDispatch:
    def test_auto_selects_aa2d_for_two_dimensions(self, small_2d):
        result = maxrank(small_2d, 0)
        assert result.algorithm == "AA-2D"

    def test_auto_selects_aa3d_for_three_dimensions(self, small_3d):
        result = maxrank(small_3d, 0)
        assert result.algorithm == "AA-3D"

    def test_auto_selects_aa_for_higher_dimensions(self):
        data = generate_independent(40, 4, seed=3)
        result = maxrank(data, 0)
        assert result.algorithm == "AA"

    def test_generic_engine_escape_hatch(self, small_3d):
        generic = maxrank(small_3d, 0, engine="generic")
        assert generic.algorithm == "AA"
        auto = maxrank(small_3d, 0)
        assert auto.k_star == generic.k_star
        assert auto.region_count == generic.region_count

    def test_planar_engine_requires_d3(self, small_2d):
        with pytest.raises(AlgorithmError):
            maxrank(small_2d, 0, engine="planar")

    def test_aa3d_rejects_generic_engine(self, small_3d):
        with pytest.raises(AlgorithmError):
            maxrank(small_3d, 0, algorithm="aa3d", engine="generic")

    def test_unknown_engine_rejected(self, small_3d):
        with pytest.raises(AlgorithmError):
            maxrank(small_3d, 0, engine="warp")

    @pytest.mark.parametrize("name, expected", [
        ("fca", "FCA"), ("aa2d", "AA-2D"),
    ])
    def test_explicit_2d_algorithms(self, small_2d, name, expected):
        assert maxrank(small_2d, 1, algorithm=name).algorithm == expected

    @pytest.mark.parametrize("name, expected", [
        ("ba", "BA"), ("aa", "AA"), ("aa3d", "AA-3D"),
    ])
    def test_explicit_highdim_algorithms(self, small_3d, name, expected):
        assert maxrank(small_3d, 1, algorithm=name).algorithm == expected

    def test_exact_oracle_dispatch(self):
        data = generate_independent(16, 3, seed=21)
        result = maxrank(data, 0, algorithm="exact")
        assert result.algorithm == "BF"

    def test_unknown_algorithm_rejected(self, small_2d):
        with pytest.raises(AlgorithmError):
            maxrank(small_2d, 0, algorithm="magic")

    def test_all_algorithms_agree_on_k_star(self, small_2d):
        focal = 7
        values = {
            maxrank(small_2d, focal, algorithm=name).k_star for name in ("fca", "aa2d")
        }
        assert len(values) == 1

    def test_imaxrank_wrapper(self, small_3d):
        result = imaxrank(small_3d, 4, tau=1)
        assert result.tau == 1
        with pytest.raises(AlgorithmError):
            imaxrank(small_3d, 4, tau=-1)

    def test_shared_tree_and_counters(self, small_3d):
        tree = RStarTree.build(small_3d.records)
        counters = CostCounters()
        first = maxrank(small_3d, 1, tree=tree, counters=counters)
        pages_after_first = counters.page_reads
        maxrank(small_3d, 2, tree=tree, counters=counters)
        assert counters.page_reads > pages_after_first
        assert first.counters is counters


class TestResultObjects:
    def test_summary_mentions_key_numbers(self, small_2d):
        result = maxrank(small_2d, 3)
        text = result.summary()
        assert f"k*={result.k_star}" in text
        assert f"|T|={result.region_count}" in text

    def test_best_regions_and_regions_at(self, small_3d):
        result = maxrank(small_3d, 3, tau=1)
        best = result.best_regions()
        assert best == result.regions_at(result.k_star)
        assert all(region.order == result.k_star for region in best)

    def test_total_volume_positive(self, small_3d):
        result = maxrank(small_3d, 3)
        assert result.total_volume() > 0

    def test_representative_queries_are_permissible(self, small_3d):
        result = maxrank(small_3d, 5)
        for query in result.representative_queries():
            assert query.shape == (small_3d.d,)
            assert (query > 0).all()
            assert query.sum() == pytest.approx(1.0)

    def test_region_reduced_dim(self, small_2d, small_3d):
        r2 = maxrank(small_2d, 0).regions[0]
        r3 = maxrank(small_3d, 0).regions[0]
        assert r2.reduced_dim == 1
        assert r3.reduced_dim == 2

    def test_invalid_result_construction(self):
        with pytest.raises(AlgorithmError):
            MaxRankResult(
                k_star=0, regions=[], dominator_count=0, minimum_cell_order=0,
                tau=0, algorithm="X",
            )
        with pytest.raises(AlgorithmError):
            MaxRankResult(
                k_star=1, regions=[], dominator_count=0, minimum_cell_order=0,
                tau=-1, algorithm="X",
            )

    def test_region_volume_interval(self):
        region = MaxRankRegion(geometry=Interval(0.2, 0.5), cell_order=0, order=1)
        assert region.volume() == pytest.approx(0.3)
        assert region.representative_query().shape == (2,)


class TestDataAccessor:
    def test_focal_by_index_excluded_from_incomparable(self, small_3d):
        accessor = DataAccessor(small_3d, 0)
        assert all(record_id != 0 for record_id, _ in accessor.scan_incomparable())

    def test_dominator_count_matches_partition(self, small_3d):
        accessor = DataAccessor(small_3d, 6)
        assert accessor.dominator_count() == accessor.partition().dominator_count

    def test_scan_matches_partition(self, small_3d):
        accessor = DataAccessor(small_3d, 6)
        scanned = {record_id for record_id, _ in accessor.scan_incomparable()}
        assert scanned == set(accessor.partition().incomparable.tolist())

    def test_external_focal(self, small_3d):
        accessor = DataAccessor(small_3d, np.array([0.5, 0.5, 0.5]))
        assert accessor.focal_index is None
        assert accessor.dominator_count() >= 0

    def test_counters_shared(self, small_3d):
        counters = CostCounters()
        accessor = DataAccessor(small_3d, 1, counters=counters)
        accessor.dominator_count()
        assert counters.page_reads > 0


class TestCostCounters:
    def test_timer_accumulates(self):
        counters = CostCounters()
        with counters.timer("phase"):
            pass
        with counters.timer("phase"):
            pass
        assert counters.timer_seconds("phase") >= 0
        assert "time_phase" in counters.as_dict()

    def test_merge(self):
        a, b = CostCounters(), CostCounters()
        a.count_page_read(1)
        b.count_page_read(2)
        b.lp_calls = 5
        a.merge(b)
        assert a.page_reads == 2
        assert a.distinct_page_reads == 2
        assert a.lp_calls == 5

    def test_reset(self):
        counters = CostCounters()
        counters.count_page_read(3)
        counters.reset()
        assert counters.page_reads == 0
        assert counters.distinct_page_reads == 0

    def test_distinct_vs_total(self):
        counters = CostCounters()
        counters.count_page_read(1)
        counters.count_page_read(1)
        assert counters.page_reads == 2
        assert counters.distinct_page_reads == 1
