"""Tests for the disk simulator and R*-tree node primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CostCounters
from repro.errors import IndexError_
from repro.index import DEFAULT_PAGE_SIZE, DiskSimulator, LeafEntry, RStarNode


class TestDiskSimulator:
    def test_default_page_size_matches_paper(self):
        assert DEFAULT_PAGE_SIZE == 4096

    def test_page_allocation_is_sequential(self):
        disk = DiskSimulator()
        assert [disk.allocate_page() for _ in range(3)] == [0, 1, 2]
        assert disk.pages_allocated == 3

    def test_capacities_scale_with_page_size_and_dim(self):
        small = DiskSimulator(page_size=1024)
        large = DiskSimulator(page_size=8192)
        assert small.leaf_capacity(4) < large.leaf_capacity(4)
        assert large.leaf_capacity(8) < large.leaf_capacity(2)
        assert small.leaf_capacity(100) >= 4   # floor keeps trees buildable

    def test_internal_entries_are_larger_than_leaf_entries(self):
        disk = DiskSimulator()
        assert disk.internal_capacity(4) < disk.leaf_capacity(4)

    def test_read_page_counts(self):
        disk = DiskSimulator()
        counters = CostCounters()
        page = disk.allocate_page()
        disk.read_page(page, counters)
        disk.read_page(page, counters)
        assert disk.total_reads == 2
        assert counters.page_reads == 2
        assert counters.distinct_page_reads == 1

    def test_read_page_without_counters(self):
        disk = DiskSimulator()
        disk.read_page(disk.allocate_page())
        assert disk.total_reads == 1


class TestLeafEntry:
    def test_point_read_only(self):
        entry = LeafEntry(3, np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            entry.point[0] = 5.0

    def test_count_and_mbr(self):
        entry = LeafEntry(3, np.array([0.1, 0.2]))
        assert entry.count == 1
        assert entry.mbr.contains_point([0.1, 0.2])


class TestRStarNode:
    def test_leaf_accepts_only_leaf_entries(self):
        leaf = RStarNode(level=0, page_id=0)
        internal = RStarNode(level=1, page_id=1)
        with pytest.raises(IndexError_):
            leaf.add(internal)
        with pytest.raises(IndexError_):
            internal.add(LeafEntry(0, np.array([0.1, 0.2])))

    def test_mbr_of_empty_node_rejected(self):
        node = RStarNode(level=0, page_id=0)
        with pytest.raises(IndexError_):
            _ = node.mbr

    def test_counts_and_invalidation(self):
        leaf = RStarNode(level=0, page_id=0)
        leaf.add(LeafEntry(0, np.array([0.1, 0.2])))
        leaf.add(LeafEntry(1, np.array([0.3, 0.4])))
        parent = RStarNode(level=1, page_id=1)
        parent.add(leaf)
        assert parent.count == 2
        leaf.add(LeafEntry(2, np.array([0.5, 0.6])))
        assert parent.count == 3   # cache must have been invalidated upward

    def test_remove_detaches_child(self):
        parent = RStarNode(level=1, page_id=0)
        child = RStarNode(level=0, page_id=1)
        child.add(LeafEntry(0, np.array([0.2, 0.2])))
        parent.add(child)
        parent.remove(child)
        assert child.parent is None
        assert len(parent) == 0
