"""Tests for dominance partitioning, BBS skyline, incremental skyline and k-skyband."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CostCounters, Dataset, generate_anticorrelated, generate_independent
from repro.errors import AlgorithmError
from repro.index import RStarTree
from repro.skyline import (
    IncrementalSkyline,
    bbs_skyband,
    bbs_skyline,
    count_dominators_with_index,
    dominates,
    naive_skyband,
    naive_skyline,
    partition_by_dominance,
)
from repro.skyline.bbs import SkylineCache


class TestDominates:
    def test_strict_dominance(self):
        assert dominates([0.5, 0.5], [0.4, 0.5])
        assert dominates([0.5, 0.6], [0.4, 0.5])

    def test_equal_records_do_not_dominate(self):
        assert not dominates([0.5, 0.5], [0.5, 0.5])

    def test_incomparable_records(self):
        assert not dominates([0.9, 0.1], [0.1, 0.9])
        assert not dominates([0.1, 0.9], [0.9, 0.1])

    @given(st.lists(st.floats(0, 1, width=32), min_size=2, max_size=5),
           st.lists(st.floats(0, 1, width=32), min_size=2, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_antisymmetric(self, a, b):
        size = min(len(a), len(b))
        a, b = a[:size], b[:size]
        assert not (dominates(a, b) and dominates(b, a))


class TestPartition:
    def test_paper_example_partition(self, paper_example):
        partition = partition_by_dominance(paper_example, paper_example.record(5),
                                           exclude_index=5)
        assert partition.dominators.tolist() == [0]      # r1 dominates p
        assert partition.dominees.tolist() == [4]        # r5 is dominated
        assert partition.incomparable.tolist() == [1, 2, 3]
        assert partition.dominator_count == 1

    def test_duplicates_are_separated(self):
        data = Dataset([[0.5, 0.5], [0.5, 0.5], [0.6, 0.6]])
        partition = partition_by_dominance(data, data.record(0), exclude_index=0)
        assert partition.duplicates.tolist() == [1]
        assert partition.dominators.tolist() == [2]

    def test_classes_are_exhaustive_and_disjoint(self):
        data = generate_independent(200, 3, seed=1)
        partition = partition_by_dominance(data, data.record(10), exclude_index=10)
        groups = [partition.dominators, partition.dominees,
                  partition.incomparable, partition.duplicates]
        union = np.concatenate(groups)
        assert len(union) == len(set(union.tolist()))
        assert len(union) == data.n - 1  # everything but the focal record

    def test_index_backed_dominator_count_matches(self):
        data = generate_independent(300, 3, seed=2)
        tree = RStarTree.build(data.records, max_entries=12)
        for focal in (0, 17, 250):
            partition = partition_by_dominance(data, data.record(focal), exclude_index=focal)
            counted = count_dominators_with_index(tree, data.record(focal))
            assert counted == partition.dominator_count


class TestBBS:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_skyline_matches_naive(self, seed):
        data = generate_anticorrelated(150, 3, seed=seed)
        tree = RStarTree.build(data.records, max_entries=10)
        expected = set(naive_skyline(data.records))
        got = {record.record_id for record in bbs_skyline(tree)}
        assert got == expected

    def test_skyline_with_accept_filter(self):
        data = generate_independent(120, 2, seed=4)
        tree = RStarTree.build(data.records, max_entries=8)
        keep = lambda record_id, point: record_id % 2 == 0
        got = {r.record_id for r in bbs_skyline(tree, accept=keep)}
        even_points = data.records[::2]
        expected = {2 * i for i in naive_skyline(even_points)}
        assert got == expected

    def test_io_less_than_full_scan(self):
        data = generate_independent(2000, 3, seed=5)
        tree = RStarTree.build(data.records, max_entries=20)
        counters = CostCounters()
        bbs_skyline(tree, counters=counters)
        assert counters.page_reads < tree.node_count()

    def test_incremental_exclusion_matches_recomputation(self):
        data = generate_independent(200, 3, seed=6)
        tree = RStarTree.build(data.records, max_entries=10)
        incremental = IncrementalSkyline(tree)
        skyline = incremental.compute()
        excluded = []
        for _ in range(5):
            victim = min(record.record_id for record in incremental.skyline)
            excluded.append(victim)
            incremental.exclude(victim)
            remaining_mask = np.array([i not in excluded for i in range(data.n)])
            remaining_points = data.records[remaining_mask]
            remaining_ids = np.flatnonzero(remaining_mask)
            expected = {int(remaining_ids[i]) for i in naive_skyline(remaining_points)}
            got = {record.record_id for record in incremental.skyline}
            assert got == expected

    def test_exclude_returns_only_new_members(self):
        data = generate_independent(150, 2, seed=7)
        tree = RStarTree.build(data.records, max_entries=8)
        incremental = IncrementalSkyline(tree)
        before = {r.record_id for r in incremental.compute()}
        victim = next(iter(before))
        newly = incremental.exclude(victim)
        for record in newly:
            assert record.record_id not in before

    @pytest.mark.parametrize("dist,seed", [
        ("ANTI", 0), ("ANTI", 1), ("IND", 2),
    ])
    def test_exhaustive_exclusion_matches_naive_at_every_step(self, dist, seed):
        """Exclude *every* record, one skyline member at a time.

        This drives the resumable-scan bookkeeping through its worst case —
        entries bouncing between blockers across dozens of excludes — and
        checks the skyline against the quadratic oracle after every single
        update until the dataset is exhausted.
        """
        generator = generate_anticorrelated if dist == "ANTI" else generate_independent
        data = generator(60, 3, seed=seed)
        tree = RStarTree.build(data.records, max_entries=8)
        incremental = IncrementalSkyline(tree)
        incremental.compute()
        excluded: set = set()
        while incremental.skyline:
            victim = min(record.record_id for record in incremental.skyline)
            excluded.add(victim)
            incremental.exclude(victim)
            remaining = [i for i in range(data.n) if i not in excluded]
            expected = {remaining[i]
                        for i in naive_skyline(data.records[remaining])}
            got = {record.record_id for record in incremental.skyline}
            assert got == expected
        assert excluded == set(range(data.n))

    def test_exclusion_with_accept_filter(self):
        data = generate_anticorrelated(80, 3, seed=3)
        tree = RStarTree.build(data.records, max_entries=8)
        keep = lambda record_id, point: record_id % 3 != 0
        incremental = IncrementalSkyline(tree, accept=keep)
        incremental.compute()
        excluded: set = set()
        for _ in range(10):
            if not incremental.skyline:
                break
            victim = max(record.record_id for record in incremental.skyline)
            excluded.add(victim)
            incremental.exclude(victim)
            remaining = [i for i in range(data.n)
                         if i not in excluded and i % 3 != 0]
            expected = {remaining[i]
                        for i in naive_skyline(data.records[remaining])}
            assert {r.record_id for r in incremental.skyline} == expected


class TestSkylineCache:
    def test_warm_pass_is_identical_and_counts_reuse(self):
        data = generate_independent(400, 3, seed=12)
        tree = RStarTree.build(data.records, max_entries=10)
        cache = SkylineCache(tree)

        cold_counters = CostCounters()
        cold = IncrementalSkyline(tree, counters=cold_counters, cache=cache).compute()
        assert cold_counters.skyline_reused == 0   # cache was empty

        warm_counters = CostCounters()
        warm = IncrementalSkyline(tree, counters=warm_counters, cache=cache).compute()
        assert warm_counters.skyline_reused > 0
        assert [r.record_id for r in warm] == [r.record_id for r in cold]
        # Simulated I/O is still charged in full on the warm pass.
        assert warm_counters.page_reads == cold_counters.page_reads

        reference = {r.record_id for r in bbs_skyline(tree)}
        assert {r.record_id for r in warm} == reference

    def test_warm_exclusion_sequence_matches_cold(self):
        data = generate_anticorrelated(120, 3, seed=5)
        tree = RStarTree.build(data.records, max_entries=8)
        cache = SkylineCache(tree)

        def run(with_cache):
            sky = IncrementalSkyline(tree, cache=cache if with_cache else None)
            trace = [sorted(r.record_id for r in sky.compute())]
            for _ in range(8):
                if not sky.skyline:
                    break
                victim = min(r.record_id for r in sky.skyline)
                sky.exclude(victim)
                trace.append(sorted(r.record_id for r in sky.skyline))
            return trace

        cold = run(with_cache=False)
        run(with_cache=True)        # fills the cache
        warm = run(with_cache=True)
        assert warm == cold

    def test_cache_rejects_foreign_tree(self):
        first = RStarTree.build(generate_independent(50, 3, seed=0).records)
        second = RStarTree.build(generate_independent(50, 3, seed=1).records)
        cache = SkylineCache(first)
        with pytest.raises(AlgorithmError, match="different R\\*-tree"):
            IncrementalSkyline(second, cache=cache)


class TestSkyband:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_skyband_matches_naive(self, k):
        data = generate_independent(120, 3, seed=8)
        tree = RStarTree.build(data.records, max_entries=10)
        expected = set(naive_skyband(data.records, k))
        got = {record.record_id for record in bbs_skyband(tree, k)}
        assert got == expected

    def test_skyband_1_is_skyline(self):
        data = generate_independent(100, 2, seed=9)
        tree = RStarTree.build(data.records, max_entries=8)
        assert ({r.record_id for r in bbs_skyband(tree, 1)}
                == {r.record_id for r in bbs_skyline(tree)})

    def test_skyband_grows_with_k(self):
        data = generate_independent(100, 3, seed=10)
        tree = RStarTree.build(data.records, max_entries=8)
        sizes = [len(bbs_skyband(tree, k)) for k in (1, 2, 4)]
        assert sizes[0] <= sizes[1] <= sizes[2]

    def test_invalid_k(self):
        data = generate_independent(10, 2, seed=11)
        tree = RStarTree.build(data.records)
        with pytest.raises(ValueError):
            bbs_skyband(tree, 0)


class TestSkylineRepair:
    """insert_record / remove_record keep the skyline equal to recomputation."""

    @staticmethod
    def naive_ids(points_by_id):
        ids = sorted(points_by_id)
        matrix = np.vstack([points_by_id[i] for i in ids])
        return {ids[i] for i in naive_skyline(matrix)}

    def test_insert_new_skyline_member_matches_naive(self):
        data = generate_independent(100, 3, seed=31)
        tree = RStarTree.build(data.records, max_entries=8)
        sky = IncrementalSkyline(tree)
        sky.compute()
        points = {i: data.records[i] for i in range(data.n)}
        rng = np.random.default_rng(31)
        for new_id in range(data.n, data.n + 8):
            point = rng.uniform(0.05, 0.95, size=3)
            tree.insert(point, new_id)
            sky.insert_record(new_id, point)
            points[new_id] = point
            assert {r.record_id for r in sky.skyline} == self.naive_ids(points)

    def test_insert_dominated_record_is_a_no_op(self):
        data = generate_independent(80, 3, seed=32)
        tree = RStarTree.build(data.records, max_entries=8)
        sky = IncrementalSkyline(tree)
        before = {r.record_id for r in sky.compute()}
        member = next(iter(before))
        dominated = data.records[member] * 0.5
        tree.insert(dominated, data.n)
        assert sky.insert_record(data.n, dominated) == []
        assert {r.record_id for r in sky.skyline} == before

    def test_dominating_insert_demotes_then_exclusion_restores(self):
        """A record dominating skyline members demotes them; excluding it
        later must resurface exactly the members it subsumed (plus anything
        parked beneath them), matching the quadratic oracle at every step."""
        data = generate_anticorrelated(70, 3, seed=33)
        tree = RStarTree.build(data.records, max_entries=8)
        sky = IncrementalSkyline(tree)
        sky.compute()
        points = {i: data.records[i] for i in range(data.n)}
        dominating = data.records.max(axis=0) * 0.98 + 0.02
        tree.insert(dominating, data.n)
        newly = sky.insert_record(data.n, dominating)
        points[data.n] = dominating
        assert [r.record_id for r in newly] == [data.n]
        assert {r.record_id for r in sky.skyline} == self.naive_ids(points)
        del points[data.n]
        sky.remove_record(data.n)
        assert {r.record_id for r in sky.skyline} == self.naive_ids(points)

    def test_interleaved_inserts_and_removes_match_naive(self):
        data = generate_anticorrelated(50, 3, seed=34)
        tree = RStarTree.build(data.records, max_entries=8)
        sky = IncrementalSkyline(tree)
        sky.compute()
        points = {i: data.records[i] for i in range(data.n)}
        rng = np.random.default_rng(34)
        next_id = data.n
        for step in range(16):
            if step % 3 == 2 and len(points) > 2:
                victim = int(rng.choice(sorted(points)))
                del points[victim]
                sky.remove_record(victim)
            else:
                point = rng.uniform(0.05, 0.95, size=3)
                tree.insert(point, next_id)
                sky.insert_record(next_id, point)
                points[next_id] = point
                next_id += 1
            assert {r.record_id for r in sky.skyline} == self.naive_ids(points)

    def test_insert_duplicate_member_raises(self):
        data = generate_independent(40, 3, seed=35)
        tree = RStarTree.build(data.records, max_entries=8)
        sky = IncrementalSkyline(tree)
        member = next(iter(sky.compute()))
        with pytest.raises(AlgorithmError, match="already on the skyline"):
            sky.insert_record(member.record_id, member.point)

    def test_insert_of_excluded_record_stays_excluded(self):
        data = generate_independent(40, 3, seed=36)
        tree = RStarTree.build(data.records, max_entries=8)
        sky = IncrementalSkyline(tree)
        member = next(iter(sky.compute()))
        sky.remove_record(member.record_id)
        assert sky.insert_record(member.record_id, member.point) == []
        assert member.record_id not in {r.record_id for r in sky.skyline}


class TestSkylineCachePageInvalidation:
    def test_invalidate_dirty_pages_keeps_warm_answers_correct(self):
        data = generate_independent(300, 3, seed=41)
        tree = RStarTree.build(data.records, max_entries=8)
        cache = SkylineCache(tree)
        IncrementalSkyline(tree, cache=cache).compute()
        assert len(cache) > 0
        tree.drain_dirty_pages()
        tree.delete(data.records[5], 5)
        dropped = cache.invalidate_pages(tree.drain_dirty_pages())
        assert dropped > 0
        warm = {r.record_id for r in IncrementalSkyline(tree, cache=cache).compute()}
        rebuilt = RStarTree.build(np.delete(data.records, 5, axis=0), max_entries=8)
        renumbered = {r.record_id for r in IncrementalSkyline(rebuilt).compute()}
        expected = {i + 1 if i >= 5 else i for i in renumbered}
        assert warm == expected

    def test_invalidate_unknown_pages_is_a_no_op(self):
        data = generate_independent(50, 3, seed=42)
        tree = RStarTree.build(data.records, max_entries=8)
        cache = SkylineCache(tree)
        IncrementalSkyline(tree, cache=cache).compute()
        size = len(cache)
        assert cache.invalidate_pages({10_000_000}) == 0
        assert len(cache) == size
