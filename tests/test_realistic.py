"""Tests for the simulated real datasets (HOTEL, HOUSE, NBA, PITCH, BAT)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import REAL_DATASETS, load_real_dataset


class TestSpecs:
    def test_all_five_paper_datasets_present(self):
        assert set(REAL_DATASETS) == {"HOTEL", "HOUSE", "NBA", "PITCH", "BAT"}

    def test_paper_dimensionalities(self):
        expected = {"HOTEL": 4, "HOUSE": 6, "NBA": 8, "PITCH": 8, "BAT": 9}
        for name, d in expected.items():
            assert REAL_DATASETS[name].d == d

    def test_paper_cardinalities_recorded(self):
        expected = {
            "HOTEL": 418_843,
            "HOUSE": 315_265,
            "NBA": 21_961,
            "PITCH": 43_058,
            "BAT": 99_847,
        }
        for name, n in expected.items():
            assert REAL_DATASETS[name].paper_n == n

    def test_attribute_names_match_dimensionality(self):
        for spec in REAL_DATASETS.values():
            assert len(spec.attributes) == spec.d


class TestLoading:
    @pytest.mark.parametrize("name", sorted(REAL_DATASETS))
    def test_load_default(self, name):
        data = load_real_dataset(name, n=400, seed=1)
        assert data.n == 400
        assert data.d == REAL_DATASETS[name].d
        assert data.records.min() >= 0.0
        assert data.records.max() <= 1.0

    def test_load_without_normalisation(self):
        data = load_real_dataset("HOTEL", n=200, seed=1, normalise=False)
        assert data.records.max() > 1.0  # raw prices / room counts exceed 1

    def test_reproducible(self):
        a = load_real_dataset("NBA", n=300, seed=9)
        b = load_real_dataset("NBA", n=300, seed=9)
        assert np.array_equal(a.records, b.records)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_real_dataset("MOVIES")

    def test_case_insensitive(self):
        data = load_real_dataset("hotel", n=100, seed=0)
        assert data.name == "HOTEL"

    def test_correlation_ordering_nba_vs_pitch(self):
        """PITCH is more correlated than NBA (the paper's explanation of Table 4)."""
        def mean_corr(records):
            corr = np.corrcoef(records, rowvar=False)
            d = corr.shape[0]
            return float(corr[~np.eye(d, dtype=bool)].mean())

        nba = load_real_dataset("NBA", n=2000, seed=4)
        pitch = load_real_dataset("PITCH", n=2000, seed=4)
        assert mean_corr(pitch.records) > mean_corr(nba.records)
