"""Tests for the general-dimensionality MaxRank algorithms: BA and AA (d >= 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CostCounters, Dataset, generate_independent
from repro.core import (
    aa_maxrank,
    ba_maxrank,
    maxrank_exact_small,
    minimum_order_by_sampling,
)
from repro.errors import AlgorithmError
from repro.topk import order_of


def tiny_dataset(seed: int, n: int = 26, d: int = 3) -> Dataset:
    """Datasets small enough for the exact arrangement oracle."""
    return generate_independent(n, d, seed=seed)


class TestAgreementWithExactOracle:
    @pytest.mark.parametrize("seed", [2, 5, 8, 11])
    def test_k_star_matches_oracle_d3(self, seed):
        data = tiny_dataset(seed)
        focal = seed % data.n
        try:
            oracle = maxrank_exact_small(data, focal)
        except AlgorithmError:
            pytest.skip("too many incomparable records for the exact oracle")
        ba = ba_maxrank(data, focal)
        aa = aa_maxrank(data, focal)
        assert ba.k_star == oracle.k_star
        assert aa.k_star == oracle.k_star
        assert ba.dominator_count == oracle.dominator_count == aa.dominator_count

    @pytest.mark.parametrize("seed", [3, 7])
    def test_k_star_matches_oracle_d4(self, seed):
        data = generate_independent(18, 4, seed=seed)
        focal = 1
        try:
            oracle = maxrank_exact_small(data, focal)
        except AlgorithmError:
            pytest.skip("too many incomparable records for the exact oracle")
        aa = aa_maxrank(data, focal)
        assert aa.k_star == oracle.k_star

    @pytest.mark.parametrize("seed", [0, 1, 4])
    def test_ba_and_aa_agree_on_larger_inputs(self, seed):
        data = generate_independent(120, 3, seed=seed)
        focal = 10 + seed
        ba = ba_maxrank(data, focal)
        aa = aa_maxrank(data, focal)
        assert ba.k_star == aa.k_star
        assert ba.dominator_count == aa.dominator_count

    def test_sampling_upper_bounds_k_star(self, medium_4d):
        focal = 13
        aa = aa_maxrank(medium_4d, focal)
        sampled = minimum_order_by_sampling(medium_4d, focal, samples=3000, seed=5)
        assert sampled >= aa.k_star


class TestRegionSoundness:
    @pytest.mark.parametrize("seed", [1, 6])
    def test_orders_inside_regions_equal_k_star(self, seed):
        data = generate_independent(80, 3, seed=seed)
        focal = 4
        aa = aa_maxrank(data, focal)
        rng = np.random.default_rng(seed)
        for region in aa.regions:
            query = region.representative_query()
            assert order_of(data, data.record(focal), query) == aa.k_star
            for sample in region.sample_queries(2, rng=rng):
                assert order_of(data, data.record(focal), sample) == aa.k_star

    def test_region_membership_check_consistent(self, medium_4d):
        focal = 21
        aa = aa_maxrank(medium_4d, focal)
        for region in aa.regions:
            assert region.contains_query(region.representative_query())

    def test_outscored_by_matches_region_order(self):
        data = generate_independent(70, 3, seed=9)
        focal = 8
        aa = aa_maxrank(data, focal)
        for region in aa.regions:
            assert len(region.outscored_by) == region.cell_order
            # Every listed record indeed outscores the focal record there.
            query = region.representative_query()
            focal_score = float(data.record(focal) @ query)
            for record_id in region.outscored_by:
                assert float(data.record(record_id) @ query) > focal_score

    def test_ba_region_parts_cover_aa_regions(self):
        """BA may split result cells across quad-tree leaves, but the reported
        query-space area must cover the same vectors AA reports."""
        data = generate_independent(60, 3, seed=12)
        focal = 7
        ba = ba_maxrank(data, focal)
        aa = aa_maxrank(data, focal)
        assert ba.k_star == aa.k_star
        rng = np.random.default_rng(3)
        for region in aa.regions:
            for query in region.sample_queries(2, rng=rng):
                assert any(other.contains_query(query) for other in ba.regions)


class TestIMaxRank:
    def test_tau_zero_equals_plain(self, small_3d):
        focal = 5
        plain = aa_maxrank(small_3d, focal)
        explicit = aa_maxrank(small_3d, focal, tau=0)
        assert plain.k_star == explicit.k_star
        assert plain.region_count == explicit.region_count

    def test_regions_grow_with_tau(self, small_3d):
        focal = 5
        counts = [aa_maxrank(small_3d, focal, tau=tau).region_count for tau in (0, 1, 2)]
        assert counts[0] <= counts[1] <= counts[2]

    def test_imaxrank_orders_within_band(self, small_3d):
        focal = 9
        tau = 2
        result = aa_maxrank(small_3d, focal, tau=tau)
        for region in result.regions:
            assert result.k_star <= region.order <= result.k_star + tau

    def test_imaxrank_region_orders_verified(self):
        data = generate_independent(50, 3, seed=14)
        focal = 3
        tau = 1
        result = aa_maxrank(data, focal, tau=tau)
        for region in result.regions:
            query = region.representative_query()
            assert order_of(data, data.record(focal), query) == region.order


class TestCostProfile:
    def test_aa_accesses_fewer_records_than_ba(self, medium_4d):
        focal = 30
        ba_counters, aa_counters = CostCounters(), CostCounters()
        ba = ba_maxrank(medium_4d, focal, counters=ba_counters)
        aa = aa_maxrank(medium_4d, focal, counters=aa_counters)
        assert ba.k_star == aa.k_star
        assert aa_counters.records_accessed < ba_counters.records_accessed
        assert aa_counters.halfspaces_inserted < ba_counters.halfspaces_inserted

    def test_aa_reads_fewer_pages_than_ba(self):
        from repro.index import RStarTree

        data = generate_independent(600, 3, seed=15)
        # A small fan-out gives the tree enough pages for the I/O difference
        # to be visible at this scaled-down cardinality.
        tree = RStarTree.build(data.records, max_entries=16)
        sums = data.records.sum(axis=1)
        focal = int(np.argsort(-sums)[10])
        ba_counters, aa_counters = CostCounters(), CostCounters()
        ba = ba_maxrank(data, focal, tree=tree, counters=ba_counters)
        aa = aa_maxrank(data, focal, tree=tree, counters=aa_counters)
        assert ba.k_star == aa.k_star
        assert aa_counters.page_reads < ba_counters.page_reads

    def test_counters_populated(self, small_3d):
        counters = CostCounters()
        aa_maxrank(small_3d, 2, counters=counters)
        report = counters.as_dict()
        assert report["halfspaces_inserted"] > 0
        assert report["cells_examined"] > 0
        assert counters.iterations >= 1


class TestEdgeCasesHighDim:
    def test_d2_rejected(self):
        data = generate_independent(20, 2, seed=0)
        with pytest.raises(AlgorithmError):
            ba_maxrank(data, 0)
        with pytest.raises(AlgorithmError):
            aa_maxrank(data, 0)

    def test_negative_tau_rejected(self, small_3d):
        with pytest.raises(AlgorithmError):
            aa_maxrank(small_3d, 0, tau=-2)

    def test_focal_dominating_everything(self):
        data = Dataset([[0.9, 0.9, 0.9], [0.1, 0.2, 0.3], [0.2, 0.1, 0.2], [0.3, 0.3, 0.1]])
        for result in (ba_maxrank(data, 0), aa_maxrank(data, 0)):
            assert result.k_star == 1
            assert result.region_count == 1
            assert result.regions[0].cell_order == 0

    def test_focal_dominated_by_everything(self):
        data = Dataset([[0.1, 0.1, 0.1], [0.5, 0.6, 0.7], [0.6, 0.5, 0.8], [0.9, 0.9, 0.9]])
        for result in (ba_maxrank(data, 0), aa_maxrank(data, 0)):
            assert result.k_star == 4
            assert result.dominator_count == 3

    def test_external_focal_record(self, small_3d):
        external = np.full(3, 0.55)
        ba = ba_maxrank(small_3d, external)
        aa = aa_maxrank(small_3d, external)
        assert ba.k_star == aa.k_star

    def test_split_threshold_does_not_change_answer(self, small_3d):
        focal = 11
        default = aa_maxrank(small_3d, focal)
        coarse = aa_maxrank(small_3d, focal, split_threshold=20)
        assert default.k_star == coarse.k_star

    def test_pairwise_pruning_does_not_change_answer(self, small_3d):
        focal = 7
        off = ba_maxrank(small_3d, focal, use_pairwise=False)
        on = ba_maxrank(small_3d, focal, use_pairwise=True)
        assert off.k_star == on.k_star
        assert off.region_count == on.region_count
