"""Execution-engine tests: executor equivalence, picklability, counter merging.

The engine's contract is that every executor — the in-process serial path,
the self-contained task path, and the process pool — produces *bit-identical*
results and cost counters for the same query.  These tests pin that contract
on small fig8/fig9-style workloads (including the AA re-scan machinery, which
round-trips reuse state through task snapshots), check that every object a
task ships across a process boundary pickles faithfully, and cover the
mergeability of :class:`repro.stats.CostCounters`.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import CostCounters, generate
from repro.core.aa import aa_maxrank
from repro.errors import AlgorithmError
from repro.core.ba import ba_maxrank
from repro.engine import (
    InlineTaskExecutor,
    LeafTask,
    ProcessPoolExecutor,
    SerialExecutor,
    execute_leaf_task,
    make_executor,
)
from repro.geometry.halfspace import Halfspace, halfspace_for_record
from repro.geometry.planar import PlanarArrangement
from repro.quadtree.withinleaf import (
    LeafReuseState,
    PairwiseConstraints,
    WithinLeafProcessor,
)


def _fingerprint(result, counters):
    """Everything that must match bit-for-bit across executors.

    ``build_tasks`` is the one deliberate exclusion: it counts subtree units
    shipped to pool workers during parallel construction, so it is 0 serial
    and positive under a pool — the *tree* the tasks build is identical
    (``nodes_created`` / ``splits_performed`` stay in the fingerprint).
    """
    return {
        "k_star": result.k_star,
        "region_count": result.region_count,
        "orders": [region.cell_order for region in result.regions],
        "points": [region.representative_query().tobytes() for region in result.regions],
        "counters": {
            name: value
            for name, value in counters.as_dict().items()
            if not name.startswith("time_") and name != "build_tasks"
        },
    }


def _run(algorithm, dataset, focal, executor, tau=0, **options):
    counters = CostCounters()
    run = aa_maxrank if algorithm == "aa" else ba_maxrank
    result = run(
        dataset, focal, tau=tau, counters=counters, executor=executor, **options
    )
    return _fingerprint(result, counters)


class TestExecutorEquivalence:
    """Serial, task-path and pool runs must be indistinguishable."""

    # (algorithm, distribution, n, d, focal, tau) — small cuts of the
    # fig8 (cardinality) and fig9 (dimensionality) benchmark workloads.
    CASES = [
        ("aa", "IND", 300, 4, 7, 0),     # fig9 d=4
        ("aa", "IND", 120, 5, 11, 0),    # fig9 d=5
        ("aa", "ANTI", 250, 4, 3, 0),    # fig8 ANTI: many AA re-scans
        ("aa", "IND", 150, 4, 9, 1),     # iMaxRank slack
        ("ba", "IND", 150, 4, 13, 0),    # BA single scan
    ]

    @pytest.mark.parametrize("algorithm,dist,n,d,focal,tau", CASES)
    def test_task_path_matches_serial(self, algorithm, dist, n, d, focal, tau):
        dataset = generate(dist, n, d, seed=0)
        serial = _run(algorithm, dataset, focal, None, tau=tau)
        task = _run(algorithm, dataset, focal, InlineTaskExecutor(), tau=tau)
        assert task == serial

    def test_process_pool_matches_serial(self):
        dataset = generate("IND", 300, 4, seed=0)
        serial = _run("aa", dataset, 7, None)
        with ProcessPoolExecutor(2) as pool:
            parallel = _run("aa", dataset, 7, pool)
        assert parallel == serial

    def test_process_pool_matches_serial_on_rescan_heavy_workload(self):
        dataset = generate("ANTI", 200, 4, seed=1)
        serial = _run("aa", dataset, 3, None)
        with ProcessPoolExecutor(2) as pool:
            parallel = _run("aa", dataset, 3, pool)
        assert parallel == serial

    def test_pool_is_reusable_across_queries(self):
        dataset = generate("IND", 200, 4, seed=2)
        with ProcessPoolExecutor(2) as pool:
            for focal in (3, 5):
                serial = _run("aa", dataset, focal, None)
                parallel = _run("aa", dataset, focal, pool)
                assert parallel == serial

    def test_serial_executor_object_matches_default(self):
        dataset = generate("IND", 150, 4, seed=3)
        assert _run("aa", dataset, 5, SerialExecutor()) == _run(
            "aa", dataset, 5, None
        )

    def test_jobs_facade(self):
        from repro import maxrank

        dataset = generate("IND", 150, 4, seed=4)
        serial = maxrank(dataset, 5)
        parallel = maxrank(dataset, 5, jobs=2)
        assert parallel.k_star == serial.k_star
        assert parallel.region_count == serial.region_count

    def test_make_executor(self):
        assert make_executor(None) is None
        assert make_executor(1) is None
        pool = make_executor(3)
        assert isinstance(pool, ProcessPoolExecutor) and pool.jobs == 3
        pool.close()
        with pytest.raises(ValueError):
            ProcessPoolExecutor(0)
        # A zero or negative worker count through the façade is a caller
        # bug, not a request for the serial path.
        for bad in (0, -1, -8):
            with pytest.raises(AlgorithmError):
                make_executor(bad)


class TestPlanarEngineExecutors:
    """The d = 3 planar sweep must stay bit-identical across executors.

    These are the engine-level counterparts of ``tests/test_differential.py``:
    the planar path ships a :class:`PlanarArrangement` inside its leaf tasks,
    so the serial, self-contained-task and process-pool runs must produce
    identical results *and* identical merged counter dicts — including the
    planar-specific ``lines_inserted`` / ``faces_enumerated`` tallies, which
    are charged exactly once per arrangement build wherever the build runs.
    """

    # (distribution, n, focal, tau) — d = 3 cuts with AA re-scans and, for
    # the tau cases, deep enough weights to engage the arrangement sweep.
    CASES = [
        ("IND", 300, 7, 0),
        ("ANTI", 150, 3, 0),
        ("IND", 200, 9, 3),
        ("ANTI", 120, 5, 2),
    ]

    @pytest.mark.parametrize("dist,n,focal,tau", CASES)
    def test_task_path_matches_serial(self, dist, n, focal, tau):
        dataset = generate(dist, n, 3, seed=0)
        serial = _run("aa", dataset, focal, None, tau=tau, use_planar=True)
        task = _run(
            "aa", dataset, focal, InlineTaskExecutor(), tau=tau, use_planar=True
        )
        assert task == serial

    def test_process_pool_matches_serial(self):
        dataset = generate("IND", 250, 3, seed=1)
        serial = _run("aa", dataset, 5, None, tau=2, use_planar=True)
        with ProcessPoolExecutor(2) as pool:
            parallel = _run("aa", dataset, 5, pool, tau=2, use_planar=True)
        assert parallel == serial

    def test_facade_jobs_matches_serial_at_d3(self):
        from repro import maxrank

        dataset = generate("ANTI", 150, 3, seed=2)
        serial = maxrank(dataset, 4, tau=1)
        parallel = maxrank(dataset, 4, tau=1, jobs=2)
        assert serial.algorithm == parallel.algorithm == "AA-3D"
        assert parallel.k_star == serial.k_star
        assert parallel.region_count == serial.region_count
        assert [
            r.representative_query().tobytes() for r in parallel.regions
        ] == [r.representative_query().tobytes() for r in serial.regions]


def _sample_task(track_frontier=True):
    """A realistic picklable task built from actual half-space geometry."""
    focal = np.array([0.5, 0.5, 0.5, 0.5])
    rng = np.random.default_rng(7)
    partial = []
    for record_id in range(8):
        record = rng.uniform(0.2, 0.8, size=4)
        record[0] = 0.9  # keep the record incomparable to the focal point
        record[1] = 0.1
        partial.append(
            (record_id, halfspace_for_record(record, focal, record_id=record_id))
        )
    lower = np.zeros(3)
    upper = np.full(3, 0.5)
    return LeafTask(
        leaf_key=123,
        seq=4,
        weight=1,
        lower=lower,
        upper=upper,
        partial=tuple(partial),
        track_frontier=track_frontier,
    )


def _sample_planar_task(weight=2, planar=None):
    """A d = 3 (planar-sweep) leaf task over real half-plane geometry."""
    focal = np.array([0.5, 0.5, 0.5])
    rng = np.random.default_rng(11)
    partial = []
    record_id = 0
    while len(partial) < 9:
        record = rng.uniform(0.1, 0.9, size=3)
        if (record > focal).all() or (record < focal).all():
            continue
        partial.append(
            (record_id, halfspace_for_record(record, focal, record_id=record_id))
        )
        record_id += 1
    return LeafTask(
        leaf_key=7,
        seq=2,
        weight=weight,
        lower=np.zeros(2),
        upper=np.ones(2),
        partial=tuple(partial),
        track_frontier=True,
        use_planar=True,
        planar=planar,
    )


class TestPicklability:
    """Everything a task ships across process boundaries must round-trip."""

    def test_halfspace_roundtrip(self):
        h = Halfspace([0.25, -1.5, 0.5], 0.125, record_id=9, augmented=True)
        clone = pickle.loads(pickle.dumps(h))
        assert np.array_equal(clone.coefficients, h.coefficients)
        assert clone.offset == h.offset
        assert clone.record_id == h.record_id
        assert clone.augmented is h.augmented

    def test_leaf_task_roundtrip_and_execution(self):
        task = _sample_task()
        clone = pickle.loads(pickle.dumps(task))
        assert clone.leaf_key == task.leaf_key
        assert clone.weight == task.weight
        assert np.array_equal(clone.lower, task.lower)
        assert [hid for hid, _ in clone.partial] == [hid for hid, _ in task.partial]
        original = execute_leaf_task(task)
        replayed = execute_leaf_task(clone)
        assert [c.bits for c in replayed.cells] == [c.bits for c in original.cells]
        for a, b in zip(original.cells, replayed.cells):
            assert np.array_equal(a.interior_point, b.interior_point)
        assert original.counters.as_dict() == replayed.counters.as_dict()

    def test_leaf_task_result_roundtrip(self):
        result = execute_leaf_task(_sample_task())
        clone = pickle.loads(pickle.dumps(result))
        assert clone.leaf_key == result.leaf_key
        assert [c.bits for c in clone.cells] == [c.bits for c in result.cells]
        assert clone.frontier == result.frontier
        assert clone.counters.as_dict() == result.counters.as_dict()

    def test_leaf_reuse_state_roundtrip(self):
        task = _sample_task()
        processor = WithinLeafProcessor(
            task.lower,
            task.upper,
            task.partial,
            pairwise_min_size=2,
            track_frontier=True,
        )
        processor.cells_at_weight(0)
        processor.cells_at_weight(1)
        state = processor.reuse_state()
        assert isinstance(state, LeafReuseState)
        assert state.pairwise is not None and len(state.pairwise) >= 0
        clone = pickle.loads(pickle.dumps(state))
        assert clone.partial_ids == state.partial_ids
        assert clone.frontier == state.frontier
        # The cloned pairwise analysis must forbid exactly the same patterns.
        probe_bits = [tuple(int(b) for b in np.binary_repr(v, len(task.partial)))
                      for v in range(16)]
        for bits in probe_bits:
            assert clone.pairwise.violates(bits) == state.pairwise.violates(bits)

    def test_planar_task_roundtrip_and_execution(self):
        task = _sample_planar_task()
        clone = pickle.loads(pickle.dumps(task))
        assert clone.use_planar is True and clone.planar is None
        original = execute_leaf_task(task)
        replayed = execute_leaf_task(clone)
        assert [c.bits for c in replayed.cells] == [c.bits for c in original.cells]
        for a, b in zip(original.cells, replayed.cells):
            assert np.array_equal(a.interior_point, b.interior_point)
        assert original.counters.as_dict() == replayed.counters.as_dict()
        assert original.counters.lines_inserted == len(task.partial)
        assert original.counters.faces_enumerated > 0

    def test_planar_arrangement_roundtrip(self):
        result = execute_leaf_task(_sample_planar_task())
        assert isinstance(result.planar, PlanarArrangement)
        clone = pickle.loads(pickle.dumps(result.planar))
        assert clone.line_ids == result.planar.line_ids
        assert clone.face_count == result.planar.face_count
        assert [f.mask for f in clone.faces()] == [
            f.mask for f in result.planar.faces()
        ]
        for a, b in zip(clone.faces(), result.planar.faces()):
            assert np.array_equal(a.vertices, b.vertices)

    def test_planar_arrangement_adopted_verbatim(self):
        first = execute_leaf_task(_sample_planar_task())
        shipped = pickle.loads(pickle.dumps(first.planar))
        follow_up = _sample_planar_task(weight=3, planar=shipped)
        result = execute_leaf_task(follow_up)
        # The adopted arrangement is not re-built: no lines, no faces charged,
        # and the result carries no arrangement delta.
        assert result.counters.lines_inserted == 0
        assert result.counters.faces_enumerated == 0
        assert result.planar is None
        # And the decisions match a from-scratch build exactly.
        scratch = execute_leaf_task(_sample_planar_task(weight=3))
        assert [c.bits for c in result.cells] == [c.bits for c in scratch.cells]
        for a, b in zip(result.cells, scratch.cells):
            assert np.array_equal(a.interior_point, b.interior_point)

    def test_leaf_reuse_state_ships_the_planar_arrangement(self):
        task = _sample_planar_task()
        processor = WithinLeafProcessor(
            task.lower, task.upper, task.partial,
            use_planar=True, track_frontier=True,
        )
        processor.cells_at_weight(2)
        state = processor.reuse_state()
        assert isinstance(state.planar, PlanarArrangement)
        clone = pickle.loads(pickle.dumps(state))
        assert clone.planar.line_ids == state.planar.line_ids
        assert clone.planar.face_count == state.planar.face_count

    def test_pairwise_constraints_adopted_verbatim(self):
        task = _sample_task()
        first = execute_leaf_task(task)
        assert isinstance(first.pairwise, PairwiseConstraints) or first.pairwise is None
        if first.pairwise is None:
            pytest.skip("leaf too small for a pairwise analysis")
        shipped = pickle.loads(pickle.dumps(first.pairwise))
        processor = WithinLeafProcessor(
            task.lower, task.upper, task.partial, pairwise=shipped
        )
        assert processor.pairwise_constraints is shipped


class TestCostCountersMerge:
    """merge() / += must be exact, associative and pickle-safe."""

    @staticmethod
    def _sample(seed: int) -> CostCounters:
        rng = np.random.default_rng(seed)
        counters = CostCounters()
        for name in (
            "records_accessed", "halfspaces_inserted", "halfspaces_expanded",
            "cells_examined", "nonempty_cells", "candidates_generated",
            "prefixes_cut", "screen_accepts", "screen_rejects",
            "pairwise_pruned", "lines_inserted", "faces_enumerated",
            "lp_calls", "lp_constraint_rows",
            "leaves_processed", "leaves_pruned", "skyline_updates", "iterations",
        ):
            setattr(counters, name, int(rng.integers(0, 1000)))
        for page in rng.integers(0, 50, size=10):
            counters.count_page_read(int(page))
        counters._timers["within_leaf"] = float(rng.uniform(0, 2))
        return counters

    def test_merge_roundtrip(self):
        """Splitting work over two bundles and merging equals one bundle."""
        whole = self._sample(1)
        whole.merge(self._sample(2))
        left, right = self._sample(1), self._sample(2)
        recombined = CostCounters()
        recombined += left
        recombined += right
        assert recombined.as_dict() == whole.as_dict()
        assert recombined.distinct_page_reads == whole.distinct_page_reads

    def test_merge_is_order_independent(self):
        a, b, c = self._sample(3), self._sample(4), self._sample(5)
        forward = CostCounters()
        forward += a
        forward += b
        forward += c
        backward = CostCounters()
        backward += c
        backward += b
        backward += a
        assert forward.as_dict() == backward.as_dict()

    def test_pickle_roundtrip_preserves_counts_and_pages(self):
        counters = self._sample(6)
        clone = pickle.loads(pickle.dumps(counters))
        assert clone.as_dict() == counters.as_dict()
        assert clone.distinct_page_reads == counters.distinct_page_reads
        # The clone keeps accumulating independently.
        clone.lp_calls += 1
        assert clone.lp_calls == counters.lp_calls + 1

    def test_worker_counter_deltas_cover_all_within_leaf_work(self):
        """A task run with its own counters reports the same totals as one
        run against a shared bundle — nothing is counted process-locally."""
        task = _sample_task()
        isolated = execute_leaf_task(task)
        shared = CostCounters()
        execute_leaf_task(task, counters=shared)
        assert isolated.counters is not None
        assert isolated.counters.as_dict() == shared.as_dict()
        assert shared.lp_constraint_rows > 0 or shared.lp_calls == 0


class TestEnvironmentOverride:
    def test_resolve_prefers_explicit_executor(self):
        from repro.engine import resolve_executor

        explicit = InlineTaskExecutor()
        assert resolve_executor(explicit) is explicit

    def test_env_forced_pool(self, monkeypatch):
        """REPRO_JOBS=task forces the self-contained path on plain queries."""
        from repro.engine import executors

        monkeypatch.setattr(executors, "_env_checked", False)
        monkeypatch.setattr(executors, "_env_executor", None)
        monkeypatch.setenv("REPRO_JOBS", "task")
        try:
            forced = executors.resolve_executor(None)
            assert isinstance(forced, InlineTaskExecutor)
            dataset = generate("IND", 120, 4, seed=5)
            serial = _run("aa", dataset, 3, SerialExecutor())
            routed = _run("aa", dataset, 3, None)  # picks up the env executor
            assert routed == serial
        finally:
            monkeypatch.setattr(executors, "_env_checked", False)
            monkeypatch.setattr(executors, "_env_executor", None)

    def test_env_rejects_garbage(self, monkeypatch):
        from repro.engine import executors

        monkeypatch.setattr(executors, "_env_checked", False)
        monkeypatch.setattr(executors, "_env_executor", None)
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            executors.resolve_executor(None)
        monkeypatch.setattr(executors, "_env_checked", False)
        monkeypatch.setattr(executors, "_env_executor", None)
