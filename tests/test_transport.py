"""Socket transport tests: protocol, EOF handling, drain, end-to-end serving.

The unit half drives :class:`ThreadedLineServer` with a toy handler; the
integration half wires the real CLI backend (router + admission +
services) into the transport in-process and checks the acceptance
contract: concurrent mixed-shard clients with a skewed hot-focal
workload get answers bit-identical to standalone ``maxrank()``, with the
single-flight counter showing real coalescing.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro import CostCounters, MaxRankService, generate, maxrank
from repro.service import DatasetRouter
from repro.service.core import result_fingerprint
from repro.service.transport import ThreadedLineServer, parse_hostport


def _connect(server):
    sock = socket.create_connection(server.address, timeout=10)
    return sock, sock.makefile("rwb")


def _start(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


class TestParseHostport:
    def test_forms(self):
        assert parse_hostport("127.0.0.1:7117") == ("127.0.0.1", 7117)
        assert parse_hostport(":7117") == ("127.0.0.1", 7117)
        assert parse_hostport("7117") == ("127.0.0.1", 7117)
        assert parse_hostport("0.0.0.0:0") == ("0.0.0.0", 0)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_hostport("nope")
        with pytest.raises(ValueError):
            parse_hostport("host:70000")


class TestThreadedLineServer:
    @pytest.fixture()
    def server(self):
        def handler(line: str):
            if line == "quit":
                return "bye", True
            if line == "boom":
                raise ValueError("boom")
            return line.upper(), False

        server = ThreadedLineServer(
            "127.0.0.1", 0, handler,
            greeting=lambda: "hello",
            farewell=lambda reason: f"farewell:{reason}",
            on_error=lambda exc: f"error:{exc}",
        )
        thread = _start(server)
        yield server
        server.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_round_trip_with_greeting(self, server):
        sock, f = _connect(server)
        assert f.readline() == b"hello\n"
        f.write(b"abc\n\n  \ndef\n")  # blank lines are skipped
        f.flush()
        assert f.readline() == b"ABC\n"
        assert f.readline() == b"DEF\n"
        sock.close()

    def test_unterminated_final_line_is_processed_at_eof(self, server):
        sock, f = _connect(server)
        f.readline()
        sock.sendall(b"tail-no-newline")  # client closes without the \n
        sock.shutdown(socket.SHUT_WR)
        assert f.readline() == b"TAIL-NO-NEWLINE\n"
        assert f.readline() == b"farewell:eof\n"
        assert f.readline() == b""  # connection closed
        sock.close()

    def test_handler_errors_are_isolated(self, server):
        sock, f = _connect(server)
        f.readline()
        f.write(b"boom\nstill-alive\n")
        f.flush()
        assert f.readline() == b"error:boom\n"
        assert f.readline() == b"STILL-ALIVE\n"  # connection survived
        sock.close()

    def test_quit_closes_only_that_connection(self, server):
        sock1, f1 = _connect(server)
        sock2, f2 = _connect(server)
        f1.readline(), f2.readline()
        f1.write(b"quit\n")
        f1.flush()
        assert f1.readline() == b"bye\n"
        assert f1.readline() == b"farewell:quit\n"
        assert f1.readline() == b""
        f2.write(b"ping\n")
        f2.flush()
        assert f2.readline() == b"PING\n"  # untouched by the other's quit
        sock1.close(), sock2.close()

    def test_shutdown_drains_open_connections(self):
        release = threading.Event()

        def handler(line: str):
            release.wait(10)  # an in-flight request the drain must finish
            return line.upper(), False

        server = ThreadedLineServer(
            "127.0.0.1", 0, handler,
            farewell=lambda reason: f"farewell:{reason}",
        )
        thread = _start(server)
        sock, f = _connect(server)
        f.write(b"inflight\n")
        f.flush()
        time.sleep(0.1)  # let the connection thread pick the request up
        server.shutdown("SIGTERM")
        release.set()
        assert f.readline() == b"INFLIGHT\n"  # finished, not dropped
        assert f.readline() == b"farewell:SIGTERM\n"
        thread.join(timeout=10)
        assert not thread.is_alive()  # serve_forever returned after drain
        sock.close()

    def test_concurrent_clients_each_get_their_own_answers(self, server):
        n_clients, per_client = 8, 20
        failures = []
        barrier = threading.Barrier(n_clients)

        def client(tag: int):
            sock, f = _connect(server)
            f.readline()
            barrier.wait()
            for i in range(per_client):
                message = f"client-{tag}-{i}"
                f.write(message.encode() + b"\n")
                f.flush()
                reply = f.readline().strip().decode()
                if reply != message.upper():
                    failures.append((tag, i, reply))
            sock.close()

        threads = [
            threading.Thread(target=client, args=(tag,))
            for tag in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        assert server.requests_handled >= n_clients * per_client


class TestServingEndToEnd:
    """Transport + router + admission + service, in-process."""

    N_CLIENTS = 8

    @pytest.fixture()
    def stack(self):
        from repro.service.cli import (
            _error_payload, _handle_request, _RouterBackend,
        )

        datasets = {
            "alpha": generate("IND", 130, 3, seed=61),
            "beta": generate("ANTI", 120, 3, seed=62),
        }
        shards = {name: MaxRankService(ds) for name, ds in datasets.items()}
        router = DatasetRouter(shards, slots=2, wave_window_s=0.05)
        backend = _RouterBackend(router, None)

        def handler(line: str):
            payload, quit_ = _handle_request(backend, json.loads(line))
            return (None if payload is None else json.dumps(payload)), quit_

        server = ThreadedLineServer(
            "127.0.0.1", 0, handler,
            greeting=lambda: json.dumps({"ready": True}),
            farewell=lambda reason: json.dumps({"shutdown": True,
                                                "reason": reason}),
            on_error=lambda exc: json.dumps({"error": _error_payload(exc)}),
        )
        thread = _start(server)
        try:
            yield server, router, datasets
        finally:
            server.shutdown()
            thread.join(timeout=10)
            router.close()

    def test_concurrent_skewed_clients_are_bit_identical(self, stack):
        """The acceptance workload: 8 concurrent clients, mixed shards,
        hot-focal skew — every payload equals the standalone answer and
        duplicates provably coalesced."""
        server, router, datasets = stack

        # Standalone references, computed fresh per (shard, focal, tau).
        hot = [("alpha", 7, 1)]
        cold = [("alpha", 20, 1), ("beta", 7, 1), ("beta", 33, 0),
                ("alpha", 55, 0), ("beta", 11, 1)]
        references = {}
        for shard, focal, tau in hot + cold:
            counters = CostCounters()
            result = maxrank(datasets[shard], focal, tau=tau,
                             counters=counters)
            references[(shard, focal, tau)] = {
                "k_star": result.k_star,
                "regions": result.region_count,
                "dominators": result.dominator_count,
                "tau": result.tau,
                "representative": [
                    round(float(w), 9)
                    for w in result.regions[0].representative_query()
                ] if result.regions else None,
            }

        failures = []
        barrier = threading.Barrier(self.N_CLIENTS)

        def client(tag: int):
            sock, f = _connect(server)
            f.readline()  # greeting
            barrier.wait()
            # Skew: every client opens with the same hot key, then walks
            # the cold keys from a client-specific offset.
            plan = [hot[0]] + [
                cold[(tag + i) % len(cold)] for i in range(len(cold))
            ]
            for shard, focal, tau in plan:
                f.write((json.dumps(
                    {"dataset": shard, "focal": focal, "tau": tau}
                ) + "\n").encode())
                f.flush()
                answer = json.loads(f.readline())
                expected = references[(shard, focal, tau)]
                got = {k: answer.get(k) for k in expected}
                if got != expected:
                    failures.append((tag, shard, focal, got, expected))
            sock.close()

        threads = [
            threading.Thread(target=client, args=(tag,))
            for tag in range(self.N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not failures
        stats = router.stats()
        coalesced = sum(
            slot["coalesced"] for slot in stats["slots"].values()
        )
        assert coalesced > 0  # the hot key provably single-flighted
        # Exactly one computation per unique (shard, focal, tau): the rest
        # were coalesced duplicates or cache hits.
        computed = sum(
            svc["queries_computed"] for svc in stats["services"].values()
        )
        assert computed == len(hot) + len(cold)

    def test_mixed_traffic_mutations_and_errors(self, stack):
        server, router, datasets = stack
        sock, f = _connect(server)
        f.readline()

        def ask(payload):
            f.write((json.dumps(payload) + "\n").encode())
            f.flush()
            return json.loads(f.readline())

        first = ask({"dataset": "alpha", "focal": 3, "tau": 1})
        assert first["cache_hit"] is False
        again = ask({"dataset": "alpha", "focal": 3, "tau": 1})
        assert again["cache_hit"] is True
        assert again["k_star"] == first["k_star"]

        inserted = ask({"cmd": "insert", "dataset": "beta",
                        "record": [0.4, 0.2, 0.7]})
        assert inserted["inserted"] is True
        assert inserted["record_id"] == datasets["beta"].n

        missing = ask({"dataset": "nope", "focal": 1})
        assert missing["error"]["code"] == "bad_request"
        unnamed = ask({"focal": 1})  # two shards: must name one
        assert unnamed["error"]["code"] == "bad_request"
        truncated = ask({"cmd": "delete", "dataset": "beta"})  # no record_id
        assert truncated["error"]["code"] == "bad_request"

        # Still serving after every error (isolation), and stats flow.
        stats = ask({"cmd": "stats"})
        assert stats["routed"] == 2  # only the valid queries were routed
        sock.close()
