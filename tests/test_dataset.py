"""Unit tests for the Dataset container and query-vector validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset, random_permissible_vector, validate_query_vector
from repro.errors import (
    DimensionalityError,
    InvalidDatasetError,
    InvalidQueryVectorError,
    InvalidRecordError,
)


class TestDatasetConstruction:
    def test_basic_shape(self):
        data = Dataset([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        assert data.n == 3
        assert data.d == 2
        assert len(data) == 3

    def test_single_record_promoted_to_2d(self):
        data = Dataset([1.0, 2.0, 3.0])
        assert (data.n, data.d) == (1, 3)

    def test_records_are_read_only(self):
        data = Dataset([[1.0, 2.0]])
        with pytest.raises(ValueError):
            data.records[0, 0] = 9.0

    def test_empty_dataset_rejected(self):
        with pytest.raises(InvalidDatasetError):
            Dataset(np.zeros((0, 3)))

    def test_nan_rejected(self):
        with pytest.raises(InvalidDatasetError):
            Dataset([[1.0, float("nan")]])

    def test_infinite_rejected(self):
        with pytest.raises(InvalidDatasetError):
            Dataset([[1.0, float("inf")]])

    def test_wrong_ndim_rejected(self):
        with pytest.raises(InvalidDatasetError):
            Dataset(np.zeros((2, 2, 2)))

    def test_attribute_names_length_checked(self):
        with pytest.raises(InvalidDatasetError):
            Dataset([[1.0, 2.0]], attribute_names=["only-one"])

    def test_attribute_names_stored(self):
        data = Dataset([[1.0, 2.0]], attribute_names=["a", "b"])
        assert data.attribute_names == ("a", "b")


class TestDatasetAccessors:
    def test_record_lookup(self):
        data = Dataset([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(data.record(1), [3.0, 4.0])
        assert np.allclose(data[0], [1.0, 2.0])

    def test_record_out_of_range(self):
        data = Dataset([[1.0, 2.0]])
        with pytest.raises(InvalidRecordError):
            data.record(5)

    def test_validate_focal_by_index(self):
        data = Dataset([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(data.validate_focal(1), [3.0, 4.0])

    def test_validate_focal_by_vector(self):
        data = Dataset([[1.0, 2.0]])
        assert np.allclose(data.validate_focal([0.5, 0.5]), [0.5, 0.5])

    def test_validate_focal_wrong_dim(self):
        data = Dataset([[1.0, 2.0]])
        with pytest.raises(InvalidRecordError):
            data.validate_focal([1.0, 2.0, 3.0])

    def test_validate_focal_nan(self):
        data = Dataset([[1.0, 2.0]])
        with pytest.raises(InvalidRecordError):
            data.validate_focal([float("nan"), 0.0])

    def test_attribute_bounds(self):
        data = Dataset([[0.0, 5.0], [1.0, 3.0]])
        mins, maxs = data.attribute_bounds()
        assert np.allclose(mins, [0.0, 3.0])
        assert np.allclose(maxs, [1.0, 5.0])

    def test_normalised_to_unit_range(self):
        data = Dataset([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        norm = data.normalised()
        assert norm.records.min() == pytest.approx(0.0)
        assert norm.records.max() == pytest.approx(1.0)

    def test_normalised_constant_attribute(self):
        data = Dataset([[1.0, 7.0], [2.0, 7.0]])
        norm = data.normalised()
        assert np.allclose(norm.records[:, 1], 0.5)

    def test_subset(self):
        data = Dataset([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        sub = data.subset([2, 0])
        assert sub.n == 2
        assert np.allclose(sub.records[0], [5.0, 6.0])

    def test_subset_empty_rejected(self):
        data = Dataset([[1.0, 2.0]])
        with pytest.raises(InvalidDatasetError):
            data.subset([])

    def test_scores(self):
        data = Dataset([[1.0, 0.0], [0.0, 1.0]])
        scores = data.scores([0.7, 0.3])
        assert np.allclose(scores, [0.7, 0.3])


class TestQueryVectorValidation:
    def test_valid_vector(self):
        q = validate_query_vector([0.4, 0.6], 2)
        assert np.allclose(q, [0.4, 0.6])

    def test_wrong_dimension(self):
        with pytest.raises(DimensionalityError):
            validate_query_vector([0.5, 0.5], 3)

    def test_non_positive_weight(self):
        with pytest.raises(InvalidQueryVectorError):
            validate_query_vector([0.0, 1.0], 2)

    def test_negative_weight(self):
        with pytest.raises(InvalidQueryVectorError):
            validate_query_vector([-0.1, 1.1], 2)

    def test_nan_weight(self):
        with pytest.raises(InvalidQueryVectorError):
            validate_query_vector([float("nan"), 1.0], 2)

    def test_normalisation_enforced_on_request(self):
        with pytest.raises(InvalidQueryVectorError):
            validate_query_vector([0.7, 0.7], 2, require_normalised=True)
        q = validate_query_vector([0.5, 0.5], 2, require_normalised=True)
        assert q.sum() == pytest.approx(1.0)


class TestRandomPermissibleVector:
    @given(d=st.integers(min_value=1, max_value=10), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_random_vectors_are_permissible(self, d, seed):
        q = random_permissible_vector(d, np.random.default_rng(seed))
        assert q.shape == (d,)
        assert (q > 0).all()
        assert q.sum() == pytest.approx(1.0)

    def test_zero_dimension_rejected(self):
        with pytest.raises(DimensionalityError):
            random_permissible_vector(0)
