"""Tests for the reference arrangement enumerator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import Halfspace, enumerate_cells, minimum_order_cells


class TestEnumerateCells:
    def test_single_halfspace_two_cells(self):
        h = Halfspace([1.0, 0.0], 0.3)
        cells = enumerate_cells([h], restrict_to_simplex=False)
        assert len(cells) == 2
        assert {cell.order for cell in cells} == {0, 1}

    def test_two_crossing_halfspaces_four_cells(self):
        a = Halfspace([1.0, 0.0], 0.5)
        b = Halfspace([0.0, 1.0], 0.5)
        cells = enumerate_cells([a, b], restrict_to_simplex=False)
        assert len(cells) == 4
        assert sorted(cell.order for cell in cells) == [0, 1, 1, 2]

    def test_parallel_halfspaces_three_cells(self):
        a = Halfspace([1.0, 0.0], 0.3)
        b = Halfspace([1.0, 0.0], 0.7)
        cells = enumerate_cells([a, b], restrict_to_simplex=False)
        # x<0.3, 0.3<x<0.7, x>0.7 — the combination (inside a, outside b) ... wait
        # inside b implies inside a, so (outside-a, inside-b) is empty: 3 cells.
        assert len(cells) == 3

    def test_simplex_restriction_removes_cells(self):
        # A half-space satisfied only where x + y > 1.2 has no permissible cell.
        h = Halfspace([1.0, 1.0], 1.2)
        cells = enumerate_cells([h], restrict_to_simplex=True)
        assert all(cell.bits == (0,) for cell in cells)

    def test_interior_points_witness_their_bits(self):
        halfspaces = [
            Halfspace([1.0, -0.5], 0.1),
            Halfspace([-0.3, 1.0], 0.2),
            Halfspace([0.8, 0.7], 0.6),
        ]
        for cell in enumerate_cells(halfspaces, restrict_to_simplex=False):
            for h, bit in zip(halfspaces, cell.bits):
                assert h.contains_point(cell.interior_point) == bool(bit)

    def test_max_order_filter(self):
        halfspaces = [Halfspace([1.0, 0.0], 0.2), Halfspace([0.0, 1.0], 0.2)]
        cells = enumerate_cells(halfspaces, restrict_to_simplex=False, max_order=1)
        assert all(cell.order <= 1 for cell in cells)

    def test_refuses_empty_input(self):
        with pytest.raises(GeometryError):
            enumerate_cells([])

    def test_refuses_oversized_input(self):
        halfspaces = [Halfspace([1.0, float(i)], 0.1) for i in range(1, 30)]
        with pytest.raises(GeometryError):
            enumerate_cells(halfspaces)

    def test_inside_ids(self):
        h = Halfspace([1.0, 0.0], 0.3, record_id=42)
        cells = enumerate_cells([h], restrict_to_simplex=False)
        inside_cell = next(cell for cell in cells if cell.order == 1)
        assert inside_cell.inside_ids([h]) == [42]


class TestMinimumOrderCells:
    def test_minimum_order_zero_when_complement_feasible(self):
        h = Halfspace([1.0, 0.0], 0.5)
        best, cells = minimum_order_cells([h])
        assert best == 0
        assert all(cell.order == 0 for cell in cells)

    def test_minimum_positive_when_halfspace_covers_simplex(self):
        # x > -1 contains the entire permissible simplex: minimum order is 1.
        h = Halfspace([1.0, 0.0], -1.0)
        best, cells = minimum_order_cells([h])
        assert best == 1
        assert len(cells) == 1

    def test_slack_returns_more_cells(self):
        halfspaces = [Halfspace([1.0, 0.0], 0.4), Halfspace([0.0, 1.0], 0.4)]
        _, tight = minimum_order_cells(halfspaces, slack=0)
        _, loose = minimum_order_cells(halfspaces, slack=1)
        assert len(loose) >= len(tight)
