"""Tests for the LP feasibility layer: the Seidel solver and its scipy cross-check."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Halfspace, find_interior_point
from repro.geometry.lp import find_interior_point_arrays
from repro.geometry.seidel import solve_lp


class TestSeidelSolver:
    def test_box_only_optimum(self):
        x = solve_lp([], [1.0, 1.0], [0.0, 0.0], [2.0, 3.0])
        assert x == pytest.approx([2.0, 3.0])

    def test_single_constraint_binds(self):
        # maximise x subject to x <= 0.5 within [0, 1]
        x = solve_lp([(([1.0]), 0.5)], [1.0], [0.0], [1.0])
        assert x[0] == pytest.approx(0.5)

    def test_infeasible_detected(self):
        # x <= 0.2 and -x <= -0.8 (i.e. x >= 0.8) cannot both hold
        constraints = [([1.0], 0.2), ([-1.0], -0.8)]
        assert solve_lp(constraints, [1.0], [0.0], [1.0]) is None

    def test_two_dimensional_vertex_optimum(self):
        # maximise x + y subject to x + y <= 1 within the unit box
        constraints = [([1.0, 1.0], 1.0)]
        x = solve_lp(constraints, [1.0, 1.0], [0.0, 0.0], [1.0, 1.0])
        assert x[0] + x[1] == pytest.approx(1.0)

    def test_empty_box_infeasible(self):
        assert solve_lp([], [1.0], [1.0], [0.0]) is None

    @given(seed=st.integers(0, 500), m=st.integers(0, 15), k=st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy_on_random_systems(self, seed, m, k):
        """Feasibility decisions must agree with scipy's HiGHS on random systems."""
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(m, k))
        b = rng.normal(size=m) * 0.3
        lower = np.zeros(k)
        upper = np.ones(k)
        ours = find_interior_point_arrays(A, b, lower, upper, engine="seidel")
        reference = find_interior_point_arrays(A, b, lower, upper, engine="scipy")
        if max(ours.radius, reference.radius) > 1e-6:
            assert ours.feasible == reference.feasible
        if ours.feasible:
            margins = A @ ours.point - b if m else np.array([1.0])
            assert (margins > 0).all()
            assert (ours.point >= lower - 1e-9).all()
            assert (ours.point <= upper + 1e-9).all()


class TestFindInteriorPoint:
    def test_no_constraints_returns_centre(self):
        result = find_interior_point([], [0.0, 0.0], [1.0, 1.0])
        assert result.feasible
        assert np.allclose(result.point, [0.5, 0.5])

    def test_simple_halfplane(self):
        h = Halfspace([1.0, 0.0], 0.5)
        result = find_interior_point([h], [0.0, 0.0], [1.0, 1.0])
        assert result.feasible
        assert result.point[0] > 0.5

    def test_contradictory_halfplanes(self):
        h = Halfspace([1.0, 0.0], 0.7)
        result = find_interior_point([h, h.complement()], [0.0, 0.0], [1.0, 1.0])
        assert not result.feasible
        assert result.point is None

    def test_halfspace_outside_box(self):
        h = Halfspace([1.0, 0.0], 5.0)
        result = find_interior_point([h], [0.0, 0.0], [1.0, 1.0])
        assert not result.feasible

    def test_degenerate_box(self):
        h = Halfspace([1.0, 0.0], 0.1)
        result = find_interior_point([h], [0.5, 0.5], [0.5, 0.5])
        assert not result.feasible

    def test_thin_slab_still_found(self):
        lo_cut = Halfspace([1.0, 0.0], 0.499)
        hi_cut = Halfspace([-1.0, 0.0], -0.501)
        result = find_interior_point([lo_cut, hi_cut], [0.0, 0.0], [1.0, 1.0])
        assert result.feasible
        assert 0.499 < result.point[0] < 0.501

    def test_witness_respects_every_constraint(self, rng):
        for _ in range(20):
            halfspaces = [
                Halfspace(rng.normal(size=3), rng.normal() * 0.2) for _ in range(8)
            ]
            result = find_interior_point(halfspaces, np.zeros(3), np.ones(3))
            if result.feasible:
                for h in halfspaces:
                    assert h.evaluate(result.point) > 0

    def test_radius_reported_positive_when_feasible(self):
        h = Halfspace([1.0, 1.0], 0.5)
        result = find_interior_point([h], [0.0, 0.0], [1.0, 1.0])
        assert result.feasible and result.radius > 0
