"""Tests for the two-dimensional MaxRank algorithms: FCA and AA-2D."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CostCounters, Dataset, generate, generate_independent
from repro.core import aa2d_maxrank, fca_maxrank, maxrank_exact_small, minimum_order_by_sampling
from repro.errors import AlgorithmError
from repro.topk import order_of


class TestPaperExample:
    """The running example of Sections 1 and 4 (Figures 1 and 2)."""

    def test_fca_reproduces_figure_2(self, paper_example):
        result = fca_maxrank(paper_example, 5)
        assert result.k_star == 3
        assert result.dominator_count == 1
        assert result.region_count == 2
        intervals = sorted((r.geometry.low, r.geometry.high) for r in result.regions)
        assert intervals[0] == pytest.approx((0.0, 0.2), abs=1e-9)
        assert intervals[1] == pytest.approx((0.4, 0.6), abs=1e-9)

    def test_aa2d_reproduces_figure_2(self, paper_example):
        result = aa2d_maxrank(paper_example, 5)
        assert result.k_star == 3
        assert result.region_count == 2
        intervals = sorted((r.geometry.low, r.geometry.high) for r in result.regions)
        assert intervals[0] == pytest.approx((0.0, 0.2), abs=1e-9)
        assert intervals[1] == pytest.approx((0.4, 0.6), abs=1e-9)

    def test_outscored_records_identified(self, paper_example):
        """Figure 2: besides the dominator r1, the record beating p in (0, 0.2)
        is r2 (index 1) and the one beating it in (0.4, 0.6) is r3 (index 2)."""
        result = fca_maxrank(paper_example, 5)
        by_interval = {
            round(region.geometry.low, 1): set(region.outscored_by)
            for region in result.regions
        }
        assert by_interval[0.0] == {1}
        assert by_interval[0.4] == {2}

    def test_imaxrank_tau_one_adds_regions(self, paper_example):
        plain = fca_maxrank(paper_example, 5)
        relaxed = fca_maxrank(paper_example, 5, tau=1)
        assert relaxed.k_star == plain.k_star
        assert relaxed.region_count >= plain.region_count
        assert {region.order for region in relaxed.regions} <= {3, 4}
        # With tau = 1 the whole query space is covered (orders are 3 or 4 everywhere).
        assert sum(r.geometry.length for r in relaxed.regions) == pytest.approx(1.0, abs=1e-6)


class TestAgreementWithOracles:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_fca_and_aa2d_agree_with_exact_oracle(self, seed):
        data = generate_independent(35, 2, seed=seed)
        focal = seed % data.n
        fca = fca_maxrank(data, focal)
        aa2d = aa2d_maxrank(data, focal)
        try:
            oracle = maxrank_exact_small(data, focal)
        except AlgorithmError:
            oracle = None
        assert fca.k_star == aa2d.k_star
        if oracle is not None:
            assert fca.k_star == oracle.k_star
        assert fca.region_count == aa2d.region_count

    @pytest.mark.parametrize("distribution", ["IND", "COR", "ANTI"])
    def test_regions_verified_by_rank_computation(self, distribution):
        """Sampling inside every reported region must yield order exactly k*."""
        data = generate(distribution, 120, 2, seed=7)
        focal = 11
        result = aa2d_maxrank(data, focal)
        rng = np.random.default_rng(0)
        for region in result.regions:
            for query in region.sample_queries(3, rng=rng):
                assert order_of(data, data.record(focal), query) == result.k_star

    def test_sampled_minimum_never_beats_k_star(self):
        data = generate_independent(150, 2, seed=9)
        focal = 3
        result = fca_maxrank(data, focal)
        sampled = minimum_order_by_sampling(data, focal, samples=1500, seed=1)
        assert sampled >= result.k_star

    def test_outside_regions_order_is_worse(self):
        data = generate_independent(90, 2, seed=10)
        focal = 5
        result = fca_maxrank(data, focal)
        rng = np.random.default_rng(2)
        for _ in range(40):
            q1 = rng.uniform(0.001, 0.999)
            query = np.array([q1, 1.0 - q1])
            inside = any(region.contains_query(query) for region in result.regions)
            order = order_of(data, data.record(focal), query)
            if not inside:
                assert order > result.k_star


class TestCostProfile:
    def test_aa2d_reads_fewer_pages_than_fca(self):
        """Figure 11's headline: AA-2D accesses far fewer pages than FCA.

        AA only reads the pages needed for the dominator count, the skyline
        and the expansion chain down to the result cells, so a focal record
        that can rank reasonably well (small ``k*``) keeps that set far below
        FCA's full scan.
        """
        data = generate_independent(3000, 2, seed=12)
        sums = data.records.sum(axis=1)
        focal = int(np.argsort(-sums)[25])   # a strong but not skyline record
        fca_counters, aa_counters = CostCounters(), CostCounters()
        fca = fca_maxrank(data, focal, counters=fca_counters)
        aa2d = aa2d_maxrank(data, focal, counters=aa_counters)
        assert fca.k_star == aa2d.k_star
        assert aa_counters.page_reads < fca_counters.page_reads

    def test_aa2d_accesses_fewer_records_than_fca(self):
        data = generate_independent(2000, 2, seed=13)
        fca = fca_maxrank(data, 50)
        aa2d = aa2d_maxrank(data, 50)
        assert aa2d.counters.records_accessed < fca.counters.records_accessed
        assert fca.k_star == aa2d.k_star


class TestEdgeCases:
    def test_wrong_dimensionality_rejected(self):
        data = generate_independent(20, 3, seed=1)
        with pytest.raises(AlgorithmError):
            fca_maxrank(data, 0)
        with pytest.raises(AlgorithmError):
            aa2d_maxrank(data, 0)

    def test_negative_tau_rejected(self, paper_example):
        with pytest.raises(AlgorithmError):
            fca_maxrank(paper_example, 5, tau=-1)
        with pytest.raises(AlgorithmError):
            aa2d_maxrank(paper_example, 5, tau=-1)

    def test_focal_dominating_everything(self):
        data = Dataset([[0.9, 0.9], [0.1, 0.2], [0.2, 0.1], [0.3, 0.3]])
        for result in (fca_maxrank(data, 0), aa2d_maxrank(data, 0)):
            assert result.k_star == 1
            assert result.region_count == 1
            assert result.regions[0].geometry.length == pytest.approx(1.0)

    def test_focal_dominated_by_everything(self):
        data = Dataset([[0.1, 0.1], [0.5, 0.6], [0.6, 0.5], [0.9, 0.9]])
        for result in (fca_maxrank(data, 0), aa2d_maxrank(data, 0)):
            assert result.k_star == 4
            assert result.dominator_count == 3

    def test_external_focal_record(self):
        data = generate_independent(50, 2, seed=3)
        fca = fca_maxrank(data, [0.5, 0.5])
        aa2d = aa2d_maxrank(data, [0.5, 0.5])
        assert fca.k_star == aa2d.k_star

    def test_duplicate_focal_records_ignored(self):
        data = Dataset([[0.5, 0.5], [0.5, 0.5], [0.2, 0.3], [0.4, 0.1]])
        result = fca_maxrank(data, 0)
        # The duplicate ties everywhere (ignored) and the rest are dominees.
        assert result.k_star == 1
        assert result.dominator_count == 0
