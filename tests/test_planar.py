"""Metamorphic tests for the incremental planar arrangement.

The planar sweep of the ``d = 3`` fast path rests on structural invariants
of :class:`repro.geometry.planar.PlanarArrangement` that hold regardless of
the inserted lines, so they are checked *metamorphically* on seeded random
inputs:

* the face count respects the Euler-formula bound ``1 + m + C(m, 2)`` (with
  equality for lines in general position all crossing the region);
* ``V − E + F = 1`` for the derived vertex/edge/face structure (a planar
  subdivision of a disk, outer face excluded);
* the faces partition the region — their areas sum to the region's area;
* the enumerated face/cover-set structure does not depend on insertion
  order;
* inserting into a retained arrangement (the AA re-scan path) produces the
  same structure as a from-scratch rebuild.

An integration section pins the within-leaf contract: a planar-enabled
processor must report *exactly* the cells (bits, p-orders and bit-identical
witness centroids) of the generic sequential path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.clipping import MIN_AREA, polygon_area
from repro.geometry.halfspace import Halfspace, reduced_space_constraints
from repro.geometry.planar import PlanarArrangement
from repro.quadtree.withinleaf import WithinLeafProcessor
from repro.stats import CostCounters


def random_lines(count, seed, *, through=(0.35, 0.65)):
    """Half-planes whose boundary lines pass near the middle of the unit box.

    Anchoring each line at a random point of the central region guarantees
    it crosses the unit box, so the Euler-bound equality cases are exercised
    with high probability.
    """
    rng = np.random.default_rng(seed)
    lines = []
    for index in range(count):
        angle = rng.uniform(0.0, np.pi)
        normal = np.array([np.cos(angle), np.sin(angle)])
        anchor = rng.uniform(*through, size=2)
        lines.append((index, Halfspace(normal, float(normal @ anchor))))
    return lines


def canonical(arrangement):
    """Order-independent fingerprint: cover-id set → total area (rounded)."""
    summary = {}
    for face in arrangement.faces():
        key = frozenset(arrangement.cover_ids(face.mask))
        summary[key] = summary.get(key, 0.0) + face.area()
    return {key: round(area, 9) for key, area in summary.items()}


def unit_box_arrangement(lines):
    arrangement = PlanarArrangement.for_leaf(np.zeros(2), np.ones(2))
    arrangement.insert_many(lines)
    return arrangement


class TestEulerInvariants:
    @pytest.mark.parametrize("m,seed", [(1, 0), (3, 1), (6, 2), (10, 3), (14, 4)])
    def test_face_count_within_euler_bound(self, m, seed):
        arrangement = unit_box_arrangement(random_lines(m, seed))
        bound = 1 + m + m * (m - 1) // 2
        assert arrangement.face_count <= bound
        assert len(canonical(arrangement)) <= arrangement.face_count

    @pytest.mark.parametrize("m", [2, 4, 7, 11])
    def test_general_position_attains_euler_bound(self, m):
        # A fan of lines with well-separated angles, each anchored at a
        # slightly different point near the box centre: all pairwise
        # intersections land near the centre, i.e. inside the region, so
        # the arrangement attains the Euler bound 1 + m + C(m, 2) exactly.
        lines = []
        for index in range(m):
            angle = np.pi * (index + 0.5) / m
            normal = np.array([np.cos(angle), np.sin(angle)])
            anchor = np.array([0.5 + 0.01 * index, 0.5 - 0.008 * index])
            lines.append((index, Halfspace(normal, float(normal @ anchor))))
        arrangement = unit_box_arrangement(lines)
        assert arrangement.face_count == 1 + m + m * (m - 1) // 2

    @pytest.mark.parametrize("m,seed", [(2, 5), (5, 6), (9, 7), (13, 8)])
    def test_euler_characteristic_of_subdivision(self, m, seed):
        arrangement = unit_box_arrangement(random_lines(m, seed))
        v, e, f = arrangement.vertex_edge_face_counts()
        assert v - e + f == 1

    def test_parallel_lines_miss_quadratic_term(self):
        # k parallel lines create exactly k + 1 faces: the C(m, 2) term of
        # the Euler bound needs crossings.
        lines = [
            (i, Halfspace([1.0, 0.0], 0.2 + 0.15 * i)) for i in range(4)
        ]
        arrangement = unit_box_arrangement(lines)
        assert arrangement.face_count == 5
        v, e, f = arrangement.vertex_edge_face_counts()
        assert v - e + f == 1


class TestPartitionInvariant:
    @pytest.mark.parametrize("m,seed", [(1, 10), (4, 11), (8, 12), (12, 13)])
    def test_face_areas_sum_to_box_area(self, m, seed):
        arrangement = unit_box_arrangement(random_lines(m, seed))
        total = sum(arrangement.face_areas())
        assert total == pytest.approx(1.0, abs=max(MIN_AREA, 1e-9))

    @pytest.mark.parametrize("m,seed", [(3, 14), (7, 15), (11, 16)])
    def test_face_areas_sum_to_simplex_area(self, m, seed):
        # Region clipped by the permissible-simplex constraints: a triangle
        # of area 1/2 inside the unit box.
        arrangement = PlanarArrangement.for_leaf(
            np.zeros(2), np.ones(2), reduced_space_constraints(2)
        )
        arrangement.insert_many(random_lines(m, seed))
        assert sum(arrangement.face_areas()) == pytest.approx(0.5, abs=1e-9)

    def test_empty_region_has_no_faces(self):
        # A leaf box entirely outside the simplex (x + y > 1 everywhere).
        arrangement = PlanarArrangement.for_leaf(
            np.array([0.8, 0.8]), np.ones(2), reduced_space_constraints(2)
        )
        assert arrangement.face_count == 0
        arrangement.insert_many(random_lines(3, 17))
        assert arrangement.face_count == 0
        assert arrangement.line_count == 3


class TestOrderInvariance:
    @pytest.mark.parametrize("m,seed", [(4, 20), (8, 21), (11, 22)])
    def test_insertion_order_never_changes_faces_or_covers(self, m, seed):
        lines = random_lines(m, seed)
        reference = canonical(unit_box_arrangement(lines))
        rng = np.random.default_rng(seed + 1000)
        for _ in range(3):
            permuted = [lines[i] for i in rng.permutation(m)]
            assert canonical(unit_box_arrangement(permuted)) == reference

    @pytest.mark.parametrize("m,seed", [(6, 23), (10, 24)])
    def test_cover_sets_are_order_independent_by_weight(self, m, seed):
        lines = random_lines(m, seed)
        forward = unit_box_arrangement(lines)
        backward = unit_box_arrangement(list(reversed(lines)))
        forward_covers = {
            frozenset(forward.cover_ids(mask)) for mask in forward.distinct_masks()
        }
        backward_covers = {
            frozenset(backward.cover_ids(mask)) for mask in backward.distinct_masks()
        }
        assert forward_covers == backward_covers


class TestIncrementalInsertion:
    @pytest.mark.parametrize("m,split,seed", [(6, 2, 30), (10, 5, 31), (12, 9, 32)])
    def test_incremental_equals_rebuild(self, m, split, seed):
        lines = random_lines(m, seed)
        scratch = unit_box_arrangement(lines)

        retained = unit_box_arrangement(lines[:split])
        extended = retained.copy()
        extended.insert_many(lines[split:])
        assert canonical(extended) == canonical(scratch)
        assert extended.line_ids == scratch.line_ids

    def test_copy_isolates_the_retained_arrangement(self):
        lines = random_lines(8, 33)
        retained = unit_box_arrangement(lines[:4])
        fingerprint = canonical(retained)
        clone = retained.copy()
        clone.insert_many(lines[4:])
        # The retained arrangement is untouched by the extension.
        assert canonical(retained) == fingerprint
        assert retained.line_count == 4
        assert clone.line_count == 8

    def test_counters_charge_inserts_and_faces_once(self):
        counters = CostCounters()
        arrangement = PlanarArrangement.for_leaf(np.zeros(2), np.ones(2))
        arrangement.insert_many(random_lines(5, 34), counters=counters)
        assert counters.lines_inserted == 5


class TestWithinLeafEquivalence:
    """Planar-enabled processors report exactly the generic path's cells."""

    @staticmethod
    def _partial(seed, count=9):
        rng = np.random.default_rng(seed)
        focal = np.array([0.5, 0.5, 0.5])
        partial = []
        produced = 0
        attempt = 0
        while produced < count:
            record = rng.uniform(0.05, 0.95, size=3)
            attempt += 1
            if (record > focal).all() or (record < focal).all():
                continue
            from repro.geometry.halfspace import halfspace_for_record

            partial.append(
                (produced, halfspace_for_record(record, focal, record_id=produced))
            )
            produced += 1
        return partial

    @pytest.mark.parametrize("seed", [40, 41, 42, 43])
    def test_cells_match_generic_exactly(self, seed):
        partial = self._partial(seed)
        lower, upper = np.zeros(2), np.ones(2)
        generic = WithinLeafProcessor(lower, upper, partial, pairwise_min_size=4)
        planar = WithinLeafProcessor(
            lower, upper, partial, pairwise_min_size=4, use_planar=True
        )
        for weight in range(len(partial) + 1):
            expected = generic.cells_at_weight(weight)
            got = planar.cells_at_weight(weight)
            assert [c.bits for c in got] == [c.bits for c in expected]
            for a, b in zip(expected, got):
                assert a.inside_ids == b.inside_ids
                assert a.p_order == b.p_order
                assert np.array_equal(a.interior_point, b.interior_point)

    def test_reuse_state_round_trips_the_arrangement(self):
        partial = self._partial(44, count=12)
        lower, upper = np.zeros(2), np.ones(2)
        first = WithinLeafProcessor(
            lower, upper, partial[:8], use_planar=True, pairwise_min_size=4
        )
        for weight in range(4):
            first.cells_at_weight(weight)
        state = first.reuse_state()
        assert state.planar is not None
        assert state.planar.line_ids == tuple(hid for hid, _ in partial[:8])

        counters = CostCounters()
        grown = WithinLeafProcessor(
            lower, upper, partial, use_planar=True, pairwise_min_size=4,
            seed_state=state, counters=counters,
        )
        fresh = WithinLeafProcessor(
            lower, upper, partial, use_planar=True, pairwise_min_size=4
        )
        for weight in range(len(partial) + 1):
            a = grown.cells_at_weight(weight)
            b = fresh.cells_at_weight(weight)
            assert [c.bits for c in a] == [c.bits for c in b]
            for x, y in zip(a, b):
                assert np.array_equal(x.interior_point, y.interior_point)
        # Only the four newly arrived half-planes were inserted.
        assert counters.lines_inserted == 4
