"""Parallel quad-tree construction: identity, cost policy, counters.

The parallel build contract is *node-for-node identity*: a tree built by
shipping frontier subtrees to a process pool must be indistinguishable from
the serially built one — same node sequence numbers, same boxes, same
containment/partial sets, same scan-index buckets in the same order — so
every downstream scan, prune and within-leaf pass behaves identically.
These tests walk both trees and compare everything; the only tolerated
difference is the ``build_tasks`` counter (0 serial, positive parallel).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import CostCounters, generate, maxrank
from repro.core.aa import aa_maxrank
from repro.engine.executors import make_executor
from repro.experiments.reporting import construction_summary
from repro.geometry import Halfspace
from repro.quadtree import AugmentedQuadTree
from repro.quadtree.build import SubtreeBuildTask, build_subtree
from repro.service.core import MaxRankService


def random_halfspaces(count: int, dim: int, seed: int) -> list:
    rng = np.random.default_rng(seed)
    result = []
    for i in range(count):
        normal = rng.normal(size=dim)
        while np.allclose(normal, 0):
            normal = rng.normal(size=dim)
        result.append(Halfspace(normal, rng.uniform(-0.3, 0.6), record_id=i))
    return result


def structure_dump(tree: AugmentedQuadTree):
    """Everything structural, in deterministic traversal order."""
    nodes = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        nodes.append(
            (
                node.seq,
                node.depth,
                node.lower.tobytes(),
                node.upper.tobytes(),
                tuple(node.containment),
                tuple(node.partial),
                node.children is None,
            )
        )
        if node.children is not None:
            stack.extend(reversed(node.children))
    buckets = [
        tuple(entry.seq for entry in bucket) for bucket in tree._buckets
    ]
    return {
        "nodes": nodes,
        "buckets": buckets,
        "node_seq": tree._node_seq,
        "live_leaves": tree._live_leaves,
    }


def build_tree(halfspaces, *, executor=None, split_policy="static",
               max_depth=3, counters=None):
    tree = AugmentedQuadTree(
        3, max_depth=max_depth, split_policy=split_policy, counters=counters
    )
    tree.parallel_min_rows = 8  # the test workloads are far below the gate
    tree.insert_bulk(halfspaces, executor=executor)
    return tree


class TestParallelBuildIdentity:
    @pytest.mark.parametrize("split_policy", ["static", "cost"])
    def test_pool_build_is_node_for_node_identical(self, split_policy):
        halfspaces = random_halfspaces(300, 3, seed=17)
        serial_counters = CostCounters()
        serial = build_tree(
            halfspaces, split_policy=split_policy, counters=serial_counters
        )
        pool_counters = CostCounters()
        executor = make_executor(2)
        try:
            pool = build_tree(
                halfspaces,
                executor=executor,
                split_policy=split_policy,
                counters=pool_counters,
            )
        finally:
            executor.close()
        assert pool_counters.build_tasks > 0, "parallel path never engaged"
        assert serial_counters.build_tasks == 0
        assert structure_dump(pool) == structure_dump(serial)
        assert pool_counters.nodes_created == serial_counters.nodes_created
        assert pool_counters.splits_performed == serial_counters.splits_performed

    def test_parallel_gate_leaves_small_inserts_serial(self):
        halfspaces = random_halfspaces(40, 3, seed=5)
        counters = CostCounters()
        tree = AugmentedQuadTree(3, max_depth=3, counters=counters)
        executor = make_executor(2)
        try:
            tree.insert_bulk(halfspaces, executor=executor)
        finally:
            executor.close()
        # 40 rows < PARALLEL_MIN_ROWS: the build must not pay pool overhead.
        assert counters.build_tasks == 0

    def test_end_to_end_aa_parallel_build_matches_serial(self, monkeypatch):
        dataset = generate("IND", 300, 4, seed=0)

        def fingerprint(executor):
            counters = CostCounters()
            result = aa_maxrank(dataset, 7, counters=counters, executor=executor)
            dump = counters.as_dict()
            return (
                result.k_star,
                [r.cell_order for r in result.regions],
                [r.representative_query().tobytes() for r in result.regions],
                {k: v for k, v in dump.items()
                 if not k.startswith("time_") and k != "build_tasks"},
                dump["build_tasks"],
            )

        serial = fingerprint(None)
        monkeypatch.setattr("repro.quadtree.quadtree.PARALLEL_MIN_ROWS", 8)
        executor = make_executor(2)
        try:
            parallel = fingerprint(executor)
        finally:
            executor.close()
        assert parallel[:4] == serial[:4]
        assert serial[4] == 0 and parallel[4] > 0


class TestSubtreeBuildTask:
    def make_task(self, split_policy="static"):
        rng = np.random.default_rng(3)
        m = 60
        return SubtreeBuildTask(
            lower=np.zeros(3),
            upper=np.full(3, 0.5),
            depth=1,
            pending_ids=np.arange(100, 100 + m),
            coefficients=rng.normal(size=(m, 3)),
            offsets_tol=rng.uniform(-0.3, 0.4, size=m),
            split_threshold=10,
            max_depth=4,
            split_policy=split_policy,
        )

    @pytest.mark.parametrize("split_policy", ["static", "cost"])
    def test_pickle_roundtrip_builds_identical_subtree(self, split_policy):
        task = self.make_task(split_policy)
        direct = build_subtree(task)
        shipped = pickle.loads(pickle.dumps(task)).run()
        assert shipped.nodes_created == direct.nodes_created
        assert shipped.splits_performed == direct.splits_performed
        for field in ("lowers", "uppers", "events", "containment_flat",
                      "containment_offsets", "partial_flat", "partial_offsets"):
            assert np.array_equal(getattr(shipped, field), getattr(direct, field))

    def test_result_ids_are_original_tree_ids(self):
        result = build_subtree(self.make_task())
        ids = np.concatenate([result.containment_flat, result.partial_flat])
        assert ids.size > 0
        assert ids.min() >= 100 and ids.max() < 160


class TestCostPolicyBookkeeping:
    def test_cost_built_tree_has_exact_sets(self):
        """The dry-run child classification inside the cost model must agree
        with the actual redistribution: every leaf's containment/partial sets
        stay exact."""
        from repro.geometry import BoxRelation

        halfspaces = random_halfspaces(150, 3, seed=23)
        tree = AugmentedQuadTree(3, max_depth=3, split_policy="cost")
        tree.insert_bulk(halfspaces)
        assert tree.leaf_count() > 1
        for leaf in tree.leaves():
            full = leaf.full_ids()
            partial = set(leaf.partial)
            for hid, h in tree.halfspaces.items():
                relation = h.relation_to_box(leaf.lower, leaf.upper)
                if relation is BoxRelation.CONTAINS:
                    assert hid in full and hid not in partial
                elif relation is BoxRelation.OVERLAPS:
                    assert hid in partial and hid not in full
                else:
                    assert hid not in full and hid not in partial


class TestConstructionCounters:
    def test_merge_sums_construction_counters(self):
        a, b = CostCounters(), CostCounters()
        a.nodes_created, a.splits_performed, a.build_tasks = 8, 1, 2
        b.nodes_created, b.splits_performed, b.build_tasks = 16, 2, 3
        a.merge(b)
        assert (a.nodes_created, a.splits_performed, a.build_tasks) == (24, 3, 5)
        dump = a.as_dict()
        assert dump["nodes_created"] == 24
        assert dump["splits_performed"] == 3
        assert dump["build_tasks"] == 5

    def test_build_wall_fraction(self):
        counters = CostCounters()
        assert counters.build_wall_fraction == 0.0
        counters._timers["quadtree_build"] = 3.0
        counters._timers["skyline"] = 0.5
        counters._timers["within_leaf"] = 0.5
        assert counters.build_wall_fraction == pytest.approx(0.75)

    def test_construction_summary_derivation(self):
        summary = construction_summary({
            "halfspaces_inserted": 100,
            "nodes_created": 250,
            "splits_performed": 31,
            "build_tasks": 4,
            "time_quadtree_build": 1.0,
            "time_skyline": 0.5,
            "time_within_leaf": 2.5,
        })
        assert summary["nodes_per_halfspace"] == pytest.approx(2.5)
        assert summary["build_wall_fraction"] == pytest.approx(0.25)
        assert summary["build_tasks"] == 4

    def test_service_stats_expose_construction(self):
        service = MaxRankService(generate("IND", 60, 3, seed=2))
        try:
            service.query(3)
            stats = service.stats()
        finally:
            service.close()
        for key in ("nodes_created", "splits_performed", "build_tasks",
                    "build_wall_fraction"):
            assert key in stats
        assert stats["nodes_created"] >= 0
        assert 0.0 <= stats["build_wall_fraction"] <= 1.0
