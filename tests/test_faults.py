"""Chaos matrix for the fault-tolerant serving runtime.

Robustness code is exactly the code that never runs by accident, so this
suite *makes* it run, deterministically: seeded fault plans
(:mod:`repro.testing.faults`) kill pool workers mid-batch, stall tasks past
their deadline, corrupt snapshots and fail atomic renames — and every
recovery path is held to the repo's headline contract, **bit-identity**: a
batch completed through any mixture of crash retries and serial degradation
must be byte-for-byte the answer of a fault-free serial run.

The matrix:

* deadlines — budget validation, prompt expiry on every algorithm path,
  zero result drift under a generous budget, partial counters on the error;
* worker-crash recovery — kill → retry → identical results (the PR's
  acceptance gate), retry exhaustion → serial degradation, degradation
  disabled → :class:`~repro.errors.RetryExhaustedError`, pool reuse after a
  crash, deterministic task errors are *not* retried;
* executor lifecycle — idempotent close, run-after-close, context manager;
* crash-safe snapshots — failed rename leaves the previous snapshot intact,
  corruption is detected on load, ``from_snapshot`` degrades to a dataset
  rebuild (and ``strict=True`` refuses to);
* service boundary — malformed requests rejected before any tree work;
* CLI / serve — structured error codes, exit codes, request isolation and
  SIGTERM graceful drain.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro import CostCounters, Dataset, MaxRankService, generate, maxrank
from repro.engine import Deadline, InlineTaskExecutor, ProcessPoolExecutor
from repro.errors import (
    AlgorithmError,
    InvalidRecordError,
    QueryTimeoutError,
    ReproError,
    RetryExhaustedError,
    SnapshotError,
)
from repro.index.diskio import load_snapshot
from repro.service.core import result_fingerprint
from repro.testing import FaultPlan, InjectedFaultError, inject

from test_service import ENGINE_INVARIANT_COUNTERS


def invariant_dump(counters: CostCounters):
    dump = counters.as_dict()
    return {name: dump[name] for name in ENGINE_INVARIANT_COUNTERS}


# --------------------------------------------------------------------------
# Deadlines
# --------------------------------------------------------------------------
class TestDeadline:
    def test_after_validates_budget(self):
        for bad in (0, -1, -0.5, float("nan")):
            with pytest.raises(AlgorithmError):
                Deadline.after(bad)

    def test_remaining_and_expiry(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired()
        assert 0 < deadline.remaining() <= 60.0
        past = Deadline(expires_at=time.monotonic() - 1.0, budget_seconds=0.001)
        assert past.expired() and past.remaining() < 0

    def test_check_counts_and_raises(self):
        counters = CostCounters()
        Deadline.after(60.0).check(counters, "somewhere")
        assert counters.deadline_checks == 1
        past = Deadline(expires_at=time.monotonic() - 1.0, budget_seconds=0.25)
        with pytest.raises(QueryTimeoutError) as excinfo:
            past.check(counters, "the_checkpoint")
        assert counters.deadline_checks == 2
        assert excinfo.value.where == "the_checkpoint"
        assert excinfo.value.counters is counters

    def test_deadline_and_timeout_error_pickle(self):
        deadline = Deadline.after(30.0)
        clone = pickle.loads(pickle.dumps(deadline))
        assert clone == deadline

        counters = CostCounters()
        counters.lp_calls = 7
        error = QueryTimeoutError("late", where="leaf_task", counters=counters)
        revived = pickle.loads(pickle.dumps(error))
        assert revived.where == "leaf_task"
        assert revived.counters.lp_calls == 7

    def test_maxrank_rejects_non_deadline(self, small_3d):
        with pytest.raises(AlgorithmError, match="Deadline"):
            maxrank(small_3d, 3, deadline=0.5)


class TestDeadlineExpiry:
    """A pre-expired budget must fail promptly on every algorithm path."""

    @pytest.mark.parametrize(
        "dist,n,d,algorithm",
        [
            ("IND", 120, 3, "aa"),
            ("IND", 120, 3, "ba"),
            ("IND", 100, 4, "aa"),
            ("IND", 80, 2, "aa2d"),
            ("IND", 80, 2, "fca"),
            ("IND", 40, 2, "exact"),
            ("IND", 100, 3, "aa3d"),
        ],
    )
    def test_expired_budget_raises_at_entry(self, dist, n, d, algorithm):
        dataset = generate(dist, n, d, seed=3)
        expired = Deadline(expires_at=time.monotonic() - 1.0, budget_seconds=1e-9)
        started = time.perf_counter()
        with pytest.raises(QueryTimeoutError) as excinfo:
            maxrank(dataset, 5, algorithm=algorithm, deadline=expired)
        assert time.perf_counter() - started < 5.0
        assert excinfo.value.where == "maxrank_entry"

    def test_generous_budget_changes_nothing(self):
        dataset = generate("IND", 200, 4, seed=9)
        plain_counters = CostCounters()
        plain = maxrank(dataset, 7, tau=1, counters=plain_counters)
        budgeted_counters = CostCounters()
        budgeted = maxrank(
            dataset, 7, tau=1,
            counters=budgeted_counters,
            deadline=Deadline.after(600.0),
        )
        assert result_fingerprint(budgeted) == result_fingerprint(plain)
        assert invariant_dump(budgeted_counters) == invariant_dump(plain_counters)
        # The budget is enforced (checks happened), but never charged to the
        # engine-invariant work counters.
        assert budgeted_counters.deadline_checks > 0
        assert plain_counters.deadline_checks == 0

    def test_mid_query_expiry_carries_partial_counters(self):
        dataset = generate("IND", 200, 4, seed=9)
        # Stall the very first task long enough for a short budget to
        # lapse mid-query: the next checkpoint must cancel, and the error
        # must carry the work done so far.
        counters = CostCounters()
        with inject(FaultPlan(stall_task=0, stall_seconds=0.3)):
            with pytest.raises(QueryTimeoutError) as excinfo:
                maxrank(
                    dataset, 7, tau=1,
                    counters=counters,
                    executor=InlineTaskExecutor(),
                    deadline=Deadline.after(0.05),
                )
        error = excinfo.value
        assert error.where != "maxrank_entry"  # got past the entry check
        assert error.counters is not None
        assert error.counters.records_accessed > 0  # partial work reported

    def test_pool_run_honours_deadline(self):
        dataset = generate("IND", 150, 4, seed=5)
        # Stall every chunk-0 dispatch past the budget; whichever side
        # notices first (worker leaf_task checkpoint or the parent scan
        # loop), the query must cancel with the structured error.
        with inject(FaultPlan(stall_chunk=0, stall_seconds=0.5)):
            with pytest.raises(QueryTimeoutError):
                maxrank(dataset, 5, jobs=2, deadline=Deadline.after(0.1))


# --------------------------------------------------------------------------
# Worker-crash recovery
# --------------------------------------------------------------------------
class TestCrashRecovery:
    def test_leaf_pool_survives_worker_kill_bit_identically(self):
        """A kill mid-batch recovers via retry with bit-identical answers."""
        dataset = generate("IND", 150, 4, seed=5)
        serial_counters = CostCounters()
        serial = maxrank(dataset, 5, tau=1, counters=serial_counters)

        executor = ProcessPoolExecutor(2)
        try:
            with inject(FaultPlan(kill_worker_on_chunk=0, kill_times=1)):
                chaotic_counters = CostCounters()
                chaotic = maxrank(
                    dataset, 5, tau=1,
                    counters=chaotic_counters, executor=executor,
                )
        finally:
            executor.close()

        assert executor.worker_retries >= 1
        assert executor.degraded_batches == 0
        assert result_fingerprint(chaotic) == result_fingerprint(serial)
        assert invariant_dump(chaotic_counters) == invariant_dump(serial_counters)
        # The recovery was charged to the query that paid for it.
        assert chaotic_counters.worker_retries == executor.worker_retries
        assert serial_counters.worker_retries == 0

    def test_service_batch_survives_worker_kill(self):
        """The PR's acceptance gate: seeded kill → query_batch(jobs=2)
        completes via retry and matches the fault-free serial service."""
        dataset = generate("IND", 160, 3, seed=11)
        focals = [3, 17, 29, 41]

        with MaxRankService(dataset) as clean:
            expected = clean.query_batch(focals, tau=1, use_cache=False)

        with MaxRankService(dataset) as service:
            with inject(FaultPlan(kill_worker_on_chunk=0, kill_times=1)):
                survived = service.query_batch(
                    focals, tau=1, jobs=2, use_cache=False
                )
            stats = service.stats()

        assert stats["worker_retries"] >= 1
        assert stats["degraded_batches"] == 0
        assert [result_fingerprint(r) for r in survived] == [
            result_fingerprint(r) for r in expected
        ]
        for got, want in zip(survived, expected):
            assert invariant_dump(got.counters) == invariant_dump(want.counters)

    def test_mutation_batch_survives_worker_kill(self):
        """Seeded kill mid-batch right after insert/delete mutations: the
        dataset swap closes the old forked pools, so the retried batch must
        answer against the *mutated* records — bit-identical to a cold
        service built over the same post-mutation dataset."""
        dataset = generate("IND", 160, 3, seed=11)
        rng = np.random.default_rng(23)
        focals = [3, 17, 29, 41]

        with MaxRankService(dataset) as service:
            service.insert(rng.uniform(0.05, 0.95, size=3))
            service.delete(int(rng.integers(0, service.dataset.n)))
            service.insert(rng.uniform(0.05, 0.95, size=3))
            mutated = service.dataset.records.copy()
            with inject(FaultPlan(kill_worker_on_chunk=0, kill_times=1)):
                survived = service.query_batch(
                    focals, tau=1, jobs=2, use_cache=False
                )
            stats = service.stats()

        with MaxRankService(Dataset(mutated, name="oracle")) as oracle:
            expected = oracle.query_batch(focals, tau=1, use_cache=False)

        assert stats["inserts"] == 2 and stats["deletes"] == 1
        assert stats["worker_retries"] >= 1
        assert stats["degraded_batches"] == 0
        assert [result_fingerprint(r) for r in survived] == [
            result_fingerprint(r) for r in expected
        ]
        for got, want in zip(survived, expected):
            assert invariant_dump(got.counters) == invariant_dump(want.counters)

    def test_retry_exhaustion_degrades_to_serial(self):
        dataset = generate("IND", 150, 4, seed=5)
        serial = maxrank(dataset, 5)

        executor = ProcessPoolExecutor(2, max_retries=1, retry_backoff=0.01)
        try:
            # More kills than retry rounds: every pooled dispatch of chunk 0
            # dies, so the batch can only finish through degradation.
            with inject(FaultPlan(kill_worker_on_chunk=0, kill_times=50)):
                degraded = maxrank(dataset, 5, executor=executor)
        finally:
            executor.close()

        assert executor.degraded_batches >= 1
        assert result_fingerprint(degraded) == result_fingerprint(serial)

    def test_degradation_disabled_raises_retry_exhausted(self):
        dataset = generate("IND", 150, 4, seed=5)
        executor = ProcessPoolExecutor(
            2, max_retries=1, retry_backoff=0.01, degrade_to_serial=False
        )
        try:
            with inject(FaultPlan(kill_worker_on_chunk=0, kill_times=50)):
                with pytest.raises(RetryExhaustedError):
                    maxrank(dataset, 5, executor=executor)
        finally:
            executor.close()

    def test_pool_is_reusable_after_a_crash(self):
        """The rebuilt pool keeps serving later batches on the same executor."""
        dataset = generate("IND", 150, 4, seed=5)
        serial_a = maxrank(dataset, 5)
        serial_b = maxrank(dataset, 9)
        executor = ProcessPoolExecutor(2)
        try:
            with inject(FaultPlan(kill_worker_on_chunk=0, kill_times=1)):
                first = maxrank(dataset, 5, executor=executor)
            second = maxrank(dataset, 9, executor=executor)
        finally:
            executor.close()
        assert executor.worker_retries >= 1
        assert result_fingerprint(first) == result_fingerprint(serial_a)
        assert result_fingerprint(second) == result_fingerprint(serial_b)

    def test_deterministic_task_errors_are_not_retried(self):
        """An ordinary exception is the query's answer — the serial path
        would raise it too, so retrying would change semantics."""
        dataset = generate("IND", 150, 4, seed=5)
        executor = ProcessPoolExecutor(2)
        try:
            # Fork workers inherit the armed plan; each raises on its first
            # task, which must propagate instead of burning retries.
            with inject(FaultPlan(raise_in_task=0)):
                with pytest.raises(InjectedFaultError):
                    maxrank(dataset, 5, executor=executor)
        finally:
            executor.close()
        assert executor.worker_retries == 0
        assert executor.degraded_batches == 0

    def test_drain_events_is_incremental(self):
        executor = ProcessPoolExecutor(2)
        try:
            assert executor.drain_events() == {}
            executor._record_event("worker_retries")
            executor._record_event("worker_retries")
            assert executor.drain_events() == {"worker_retries": 2}
            assert executor.drain_events() == {}
            assert executor.worker_retries == 2  # lifetime tally survives
        finally:
            executor.close()


class TestExecutorLifecycle:
    def test_close_is_idempotent(self):
        executor = ProcessPoolExecutor(2)
        executor.close()
        executor.close()  # twice-safe

    def test_run_after_close_raises(self):
        executor = ProcessPoolExecutor(2)
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.run([object(), object()])

    def test_context_manager_closes_on_error(self):
        with pytest.raises(ValueError, match="boom"):
            with ProcessPoolExecutor(2) as executor:
                raise ValueError("boom")
        assert executor._closed


# --------------------------------------------------------------------------
# Crash-safe snapshots
# --------------------------------------------------------------------------
class TestSnapshotFaults:
    @pytest.fixture()
    def service_and_snapshot(self, tmp_path):
        dataset = generate("IND", 120, 3, seed=21)
        service = MaxRankService(dataset)
        path = tmp_path / "index.rprs"
        service.save_snapshot(path)
        yield service, path
        service.close()

    def test_failed_replace_keeps_previous_snapshot(self, service_and_snapshot):
        service, path = service_and_snapshot
        before = path.read_bytes()
        with inject(FaultPlan(fail_replace=1)):
            with pytest.raises(SnapshotError, match="injected"):
                service.save_snapshot(path)
        # The atomic write failed *whole*: old bytes intact, no temp litter.
        assert path.read_bytes() == before
        assert list(path.parent.glob("*.tmp")) == []
        load_snapshot(path)  # still a valid snapshot
        service.save_snapshot(path)  # and the next save succeeds

    def test_corruption_is_detected_on_load(self, service_and_snapshot):
        service, path = service_and_snapshot
        with inject(FaultPlan(seed=4, flip_snapshot_byte=True)):
            service.save_snapshot(path)
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_from_snapshot_falls_back_to_rebuild(self, service_and_snapshot):
        service, path = service_and_snapshot
        expected = result_fingerprint(service.query(7, tau=1, use_cache=False))
        with inject(FaultPlan(seed=4, flip_snapshot_byte=True)):
            service.save_snapshot(path)

        # strict mode and fallback-less loads refuse to mask the corruption
        with pytest.raises(SnapshotError):
            MaxRankService.from_snapshot(path)
        with pytest.raises(SnapshotError):
            MaxRankService.from_snapshot(
                path, fallback_dataset=service.dataset, strict=True
            )

        with MaxRankService.from_snapshot(
            path, fallback_dataset=service.dataset
        ) as rebuilt:
            assert rebuilt.snapshot_fallback is True
            assert rebuilt.snapshot_error  # the cause is preserved
            stats = rebuilt.stats()
            assert stats["snapshot_fallback"] is True
            # Degraded cold-start, identical answers: the tree is rebuilt
            # over the same records.
            got = result_fingerprint(rebuilt.query(7, tau=1, use_cache=False))
            assert got == expected


# --------------------------------------------------------------------------
# Service boundary validation + timeouts
# --------------------------------------------------------------------------
class TestServiceBoundary:
    @pytest.fixture(scope="class")
    def service(self):
        dataset = generate("IND", 140, 3, seed=13)
        with MaxRankService(dataset) as service:
            yield service

    @pytest.mark.parametrize(
        "focal",
        [
            [float("nan"), 0.5, 0.5],
            [float("inf"), 0.5, 0.5],
            [0.5, 0.5],          # wrong dimensionality
            10**9,               # out-of-range index
            -1,                  # negative index
        ],
    )
    def test_bad_focal_rejected_before_tree_work(self, service, focal):
        computed = service.queries_computed
        with pytest.raises(InvalidRecordError):
            service.query(focal)
        assert service.queries_computed == computed

    @pytest.mark.parametrize("kwargs", [
        {"tau": -1},
        {"tau": 1.5},
        {"tau": True},
        {"algorithm": "bogus"},
        {"engine": "bogus"},
    ])
    def test_bad_parameters_rejected(self, service, kwargs):
        with pytest.raises(AlgorithmError):
            service.query(3, **kwargs)

    def test_batch_validates_every_member(self, service):
        with pytest.raises(InvalidRecordError):
            service.query_batch([3, 10**9])

    def test_timeout_raises_and_is_counted(self):
        dataset = generate("IND", 140, 3, seed=13)
        with MaxRankService(dataset) as service:
            with pytest.raises(QueryTimeoutError):
                service.query(5, timeout=1e-9, use_cache=False)
            assert service.query_timeouts == 1
            assert service.stats()["query_timeouts"] == 1
            # Partial counters were still folded into the aggregates.
            assert service.counters.deadline_checks >= 1

    def test_cached_answer_served_regardless_of_timeout(self):
        dataset = generate("IND", 140, 3, seed=13)
        with MaxRankService(dataset) as service:
            warm = service.query(5)
            again = service.query(5, timeout=1e-9)  # hit: no compute, no expiry
            assert again is warm

    def test_batch_shares_one_deadline(self):
        dataset = generate("IND", 140, 3, seed=13)
        with MaxRankService(dataset) as service:
            with pytest.raises(QueryTimeoutError):
                service.query_batch([3, 7, 11], timeout=1e-9, use_cache=False)
            assert service.query_timeouts == 1

    def test_generous_timeout_matches_untimed_batch(self):
        dataset = generate("IND", 140, 3, seed=13)
        focals = [3, 7, 11]
        with MaxRankService(dataset) as plain_service:
            plain = plain_service.query_batch(focals, use_cache=False)
        with MaxRankService(dataset) as timed_service:
            timed = timed_service.query_batch(
                focals, timeout=600.0, use_cache=False
            )
            pooled = timed_service.query_batch(
                focals, timeout=600.0, jobs=2, use_cache=False
            )
        fingerprints = [result_fingerprint(r) for r in plain]
        assert [result_fingerprint(r) for r in timed] == fingerprints
        assert [result_fingerprint(r) for r in pooled] == fingerprints


# --------------------------------------------------------------------------
# CLI + serve loop
# --------------------------------------------------------------------------
class TestCliFailureContract:
    @pytest.fixture(scope="class")
    def snapshot(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("chaos-cli") / "chaos.rprs"
        run = self._run("build", "--dist", "IND", "--n", "130", "--d", "3",
                        "--out", str(path))
        assert run.returncode == 0, run.stderr
        return path

    @staticmethod
    def _run(*args, stdin=None, env_extra=None):
        env = dict(os.environ)
        root = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(root / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        if env_extra:
            env.update(env_extra)
        return subprocess.run(
            [sys.executable, "-m", "repro.service", *args],
            capture_output=True, text=True, input=stdin, env=env, timeout=300,
        )

    @staticmethod
    def _stderr_payload(run):
        line = [l for l in run.stderr.splitlines() if l.startswith("error: ")][0]
        return json.loads(line[len("error: "):])

    def test_timeout_exits_3_with_structured_error(self, snapshot):
        run = self._run("query", "--snapshot", str(snapshot), "--batch", "4",
                        "--timeout", "1e-9")
        assert run.returncode == 3
        payload = self._stderr_payload(run)
        assert payload["code"] == "timeout"
        assert "budget" in payload["message"]

    def test_missing_snapshot_exits_2_with_snapshot_code(self, tmp_path):
        run = self._run("query", "--snapshot", str(tmp_path / "gone.rprs"))
        assert run.returncode == 2
        assert self._stderr_payload(run)["code"] == "snapshot"

    def test_env_armed_corruption_build_then_query(self, tmp_path):
        """REPRO_FAULTS activates across process boundaries: a build whose
        snapshot is corrupted mid-write yields a clean exit-2 on query."""
        path = tmp_path / "corrupt.rprs"
        build = self._run(
            "build", "--dist", "IND", "--n", "110", "--d", "3",
            "--out", str(path),
            env_extra={"REPRO_FAULTS": '{"seed": 4, "flip_snapshot_byte": true}'},
        )
        assert build.returncode == 0, build.stderr
        query = self._run("query", "--snapshot", str(path), "--batch", "2")
        assert query.returncode == 2
        assert self._stderr_payload(query)["code"] == "snapshot"

    def test_serve_isolates_failing_requests(self, snapshot):
        lines = "\n".join([
            '{"focal": 5}',
            'garbage',
            '{"focal": 1000000}',
            '{"focal": 9, "timeout": 1e-9}',
            '{"focal": 5}',
            '{"cmd": "quit"}',
        ]) + "\n"
        run = self._run("serve", "--snapshot", str(snapshot), stdin=lines)
        assert run.returncode == 0, run.stderr
        out = [json.loads(line) for line in run.stdout.splitlines()]
        assert out[0]["ready"] is True
        assert "k_star" in out[1]
        assert out[2]["error"]["code"] == "bad_request"
        assert out[3]["error"]["code"] == "bad_request"
        assert out[4]["error"]["code"] == "timeout"
        assert out[5]["cache_hit"] is True  # the loop kept serving
        assert out[6]["shutdown"] is True and out[6]["reason"] == "eof"
        assert out[6]["queries_answered"] == 2

    def test_serve_drains_gracefully_on_sigterm(self, snapshot):
        env = dict(os.environ)
        root = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(root / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--snapshot", str(snapshot)],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            ready = json.loads(proc.stdout.readline())
            assert ready["ready"] is True
            proc.stdin.write('{"focal": 5}\n')
            proc.stdin.flush()
            answer = json.loads(proc.stdout.readline())
            assert "k_star" in answer
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
        except BaseException:
            proc.kill()
            raise
        assert proc.returncode == 0, err
        shutdown = json.loads(out.splitlines()[-1])
        assert shutdown["shutdown"] is True
        assert shutdown["reason"] == "SIGTERM"
        assert shutdown["queries_answered"] == 1


class TestServeInProcess:
    """The serve loop's StringIO fallback path (no real stdin fd)."""

    def test_per_request_timeout_and_default(self, tmp_path, monkeypatch, capsys):
        from repro.service.cli import main

        snap = tmp_path / "serve.rprs"
        assert main(["build", "--dist", "IND", "--n", "110", "--d", "3",
                     "--out", str(snap)]) == 0
        capsys.readouterr()
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO('{"focal": 5}\n{"focal": 9, "timeout": 1e-9}\n'
                        '{"cmd": "quit"}\n'),
        )
        # A tiny *default* budget would kill every request; the request
        # field must override it in both directions.
        assert main(["serve", "--snapshot", str(snap), "--timeout", "600"]) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert "k_star" in lines[1]
        assert lines[2]["error"]["code"] == "timeout"
        assert lines[3]["shutdown"] is True
