"""Tests for convex polytopes, intervals and polygon clipping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    ConvexPolytope,
    Halfspace,
    Interval,
    IntervalSet,
    box_polygon,
    clip_polygon,
    polygon_area,
    polygon_centroid,
)


class TestConvexPolytope:
    def test_unit_box_not_empty(self):
        poly = ConvexPolytope([], np.zeros(2), np.ones(2))
        assert not poly.is_empty
        assert poly.contains([0.5, 0.5])
        assert poly.volume() == pytest.approx(1.0, rel=1e-6)

    def test_halfspace_cut_volume(self):
        cut = Halfspace([1.0, 0.0], 0.5)
        poly = ConvexPolytope([cut], np.zeros(2), np.ones(2))
        assert poly.volume() == pytest.approx(0.5, rel=1e-6)

    def test_empty_polytope(self):
        cut = Halfspace([1.0, 0.0], 0.5)
        poly = ConvexPolytope([cut, cut.complement()], np.zeros(2), np.ones(2))
        assert poly.is_empty
        assert poly.volume() == 0.0
        with pytest.raises(GeometryError):
            poly.interior_point()
        with pytest.raises(GeometryError):
            poly.sample(1)

    def test_interior_point_strictly_inside(self):
        constraints = [Halfspace([1.0, 1.0], 0.8), Halfspace([-1.0, 1.0], -0.5)]
        poly = ConvexPolytope(constraints, np.zeros(2), np.ones(2))
        point = poly.interior_point()
        assert poly.contains(point)

    def test_contains_rejects_outside_box(self):
        poly = ConvexPolytope([], np.zeros(2), np.ones(2))
        assert not poly.contains([1.5, 0.5])

    def test_vertices_of_triangle(self):
        cut = Halfspace([-1.0, -1.0], -1.0)   # x + y < 1
        poly = ConvexPolytope([cut], np.zeros(2), np.ones(2))
        vertices = poly.vertices()
        expected = {(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)}
        got = {tuple(np.round(v, 6)) for v in vertices}
        assert expected <= got

    def test_vertices_1d(self):
        cut = Halfspace([1.0], 0.25)
        poly = ConvexPolytope([cut], np.zeros(1), np.ones(1))
        vertices = poly.vertices()
        assert sorted(v[0] for v in vertices) == pytest.approx([0.25, 1.0])

    def test_sampling_inside(self, rng):
        cut = Halfspace([1.0, 1.0, 1.0], 1.0)
        poly = ConvexPolytope([cut], np.zeros(3), np.ones(3))
        for point in poly.sample(20, rng=rng):
            assert poly.contains(point, tol=1e-9)

    def test_volume_3d_monte_carlo(self):
        cut = Halfspace([-1.0, 0.0, 0.0], -0.5)   # x < 0.5
        poly = ConvexPolytope([cut], np.zeros(3), np.ones(3))
        assert poly.volume(samples=20000) == pytest.approx(0.5, abs=0.05)

    def test_intersect_returns_new_polytope(self):
        poly = ConvexPolytope([], np.zeros(2), np.ones(2))
        cut = poly.intersect(Halfspace([1.0, 0.0], 0.9))
        assert not cut.is_empty
        assert cut.volume() == pytest.approx(0.1, rel=1e-5)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            ConvexPolytope([Halfspace([1.0], 0.0)], np.zeros(2), np.ones(2))


class TestInterval:
    def test_length_and_midpoint(self):
        interval = Interval(0.2, 0.6)
        assert interval.length == pytest.approx(0.4)
        assert interval.midpoint == pytest.approx(0.4)

    def test_empty_interval(self):
        assert Interval(0.5, 0.5).is_empty
        assert Interval(0.6, 0.5).is_empty

    def test_contains_open(self):
        interval = Interval(0.2, 0.6)
        assert interval.contains(0.3)
        assert not interval.contains(0.2)
        assert not interval.contains(0.6)

    def test_intersection(self):
        a = Interval(0.0, 0.5)
        b = Interval(0.3, 0.9)
        overlap = a.intersect(b)
        assert (overlap.low, overlap.high) == pytest.approx((0.3, 0.5))
        assert a.intersect(Interval(0.7, 0.9)) is None


class TestIntervalSet:
    def test_normalisation_merges_overlaps(self):
        intervals = IntervalSet([(0.0, 0.3), (0.2, 0.5), (0.7, 0.9)])
        assert len(intervals) == 2
        assert intervals.total_length == pytest.approx(0.7)

    def test_union_and_intersection(self):
        a = IntervalSet([(0.0, 0.4)])
        b = IntervalSet([(0.3, 0.6)])
        assert a.union(b).total_length == pytest.approx(0.6)
        assert a.intersect(b).total_length == pytest.approx(0.1)

    def test_contains(self):
        intervals = IntervalSet([(0.0, 0.2), (0.5, 0.6)])
        assert intervals.contains(0.1)
        assert not intervals.contains(0.3)

    def test_empty_set_is_falsy(self):
        assert not IntervalSet()
        assert IntervalSet([(0.1, 0.2)])

    def test_sample_points_inside(self):
        intervals = IntervalSet([(0.1, 0.2), (0.6, 0.9)])
        for point in intervals.sample_points(per_interval=3):
            assert intervals.contains(point)

    @given(st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1)), max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_total_length_bounded(self, pairs):
        intervals = IntervalSet([(min(a, b), max(a, b)) for a, b in pairs])
        assert 0.0 <= intervals.total_length <= 1.0 + 1e-9


class TestClipping:
    def test_box_polygon_area(self):
        polygon = box_polygon([0.0, 0.0], [2.0, 1.0])
        assert polygon_area(polygon) == pytest.approx(2.0)

    def test_clip_halves_the_box(self):
        polygon = box_polygon([0.0, 0.0], [1.0, 1.0])
        clipped = clip_polygon(polygon, Halfspace([1.0, 0.0], 0.5))
        assert polygon_area(clipped) == pytest.approx(0.5)

    def test_clip_to_nothing(self):
        polygon = box_polygon([0.0, 0.0], [1.0, 1.0])
        assert clip_polygon(polygon, Halfspace([1.0, 0.0], 2.0)) is None

    def test_centroid_of_clipped_region(self):
        polygon = box_polygon([0.0, 0.0], [1.0, 1.0])
        clipped = clip_polygon(polygon, Halfspace([1.0, 0.0], 0.5))
        centroid = polygon_centroid(clipped)
        assert centroid[0] == pytest.approx(0.75)
        assert centroid[1] == pytest.approx(0.5)

    def test_degenerate_centroid_rejected(self):
        with pytest.raises(GeometryError):
            polygon_centroid(np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]))

    def test_sequential_clipping_matches_intersection_area(self):
        polygon = box_polygon([0.0, 0.0], [1.0, 1.0])
        polygon = clip_polygon(polygon, Halfspace([1.0, 0.0], 0.25))    # x > 0.25
        polygon = clip_polygon(polygon, Halfspace([0.0, 1.0], 0.25))    # y > 0.25
        polygon = clip_polygon(polygon, Halfspace([-1.0, -1.0], -1.2))  # x + y < 1.2
        # Remaining region: {u + v < 0.7} within the 0.75-sided square anchored
        # at (0.25, 0.25), i.e. a right triangle of legs 0.7.
        assert polygon_area(polygon) == pytest.approx(0.245, abs=1e-6)
