"""Tests for the experiment harness, workload configs, reporting and drivers."""

from __future__ import annotations

import pytest

from repro import generate_independent
from repro.errors import ExperimentError
from repro.experiments import (
    CONFIGS,
    format_series,
    format_table,
    get_config,
    run_batch,
    run_fig11_two_dimensions,
    run_fig12_score_ratio,
    run_table3_dimensionality,
    select_focal_records,
)


class TestWorkloads:
    def test_every_paper_experiment_has_a_config(self):
        assert set(CONFIGS) == {"fig8", "fig9", "table3", "table4", "fig10", "fig11", "fig12"}

    def test_both_scales_defined(self):
        for config in CONFIGS.values():
            assert config.small.queries >= 1
            assert config.paper_shape.queries >= config.small.queries

    def test_get_config_lookup(self):
        assert get_config("FIG8").experiment_id == "fig8"
        with pytest.raises(KeyError):
            get_config("fig99")


class TestHarness:
    def test_select_focal_records_reproducible(self):
        data = generate_independent(200, 3, seed=1)
        a = select_focal_records(data, 5, seed=3)
        b = select_focal_records(data, 5, seed=3)
        assert a == b
        assert len(set(a)) == 5

    def test_select_focal_records_validation(self):
        data = generate_independent(20, 3, seed=1)
        with pytest.raises(ExperimentError):
            select_focal_records(data, 0)

    def test_run_batch_aggregates(self):
        data = generate_independent(60, 3, seed=2)
        batch = run_batch(data, algorithm="aa", queries=2, seed=0)
        assert batch.queries == 2
        assert batch.mean_k_star >= 1
        assert batch.mean_io > 0
        row = batch.as_row()
        assert row["n"] == 60 and row["d"] == 3
        assert row["algorithm"] == "aa"

    def test_run_batch_with_explicit_focal_records(self):
        data = generate_independent(50, 2, seed=3)
        batch = run_batch(data, algorithm="fca", focal_indices=[1, 2, 3])
        assert batch.queries == 3
        assert [m.focal_index for m in batch.measurements] == [1, 2, 3]

    def test_run_batch_tau_recorded(self):
        data = generate_independent(40, 3, seed=4)
        batch = run_batch(data, algorithm="aa", queries=1, tau=2)
        assert batch.tau == 2


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_series(self):
        text = format_series("n", [1, 2], {"cpu": [0.1, 0.2], "io": [5, 6]})
        assert "cpu" in text and "io" in text
        assert len(text.splitlines()) == 4


class TestDrivers:
    """Smoke-test the cheaper figure drivers end to end (tiny workloads)."""

    def test_fig12_rows_cover_dimensions(self):
        rows = run_fig12_score_ratio("small", quiet=True)
        dims = [row["d"] for row in rows]
        assert dims == sorted(dims)
        ratios = [row["ratio"] for row in rows]
        # Dimensionality curse: the ratio at the largest d is below the d=2 ratio.
        assert ratios[-1] < ratios[0]

    @pytest.mark.slow
    def test_fig11_driver_shapes(self):
        rows = run_fig11_two_dimensions("small", quiet=True)
        assert {row["algorithm"] for row in rows} == {"aa2d", "fca"}
        assert {row["distribution"] for row in rows} == {"IND", "COR", "ANTI"}

    @pytest.mark.slow
    def test_table3_driver_shapes(self):
        rows = run_table3_dimensionality("small", quiet=True)
        assert [row["d"] for row in rows] == list(get_config("table3").small.dimensionalities)
