"""Differential and behavioural tests for the MaxRank service layer.

The service's headline contract is *bit-identity*: every answer it computes
— cold, warm, cached, serial or on the whole-query process pool — must be
byte-for-byte the answer a standalone ``maxrank()`` call produces, with the
engine-invariant cost counters unchanged.  The matrix here pins that on
seeded IND/ANTI × d ∈ {3, 4} × τ ∈ {1, 4} workloads, plus the cache,
tau-monotone reuse, snapshot round-trips through the service and the CLI.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import CostCounters, MaxRankService, generate, maxrank
from repro.errors import AlgorithmError, SnapshotError
from repro.experiments.harness import select_focal_records
from repro.service import QueryCache, QueryTask, derive_lower_tau, query_key
from repro.service.core import result_fingerprint
from repro.topk.scoring import order_of

#: Counters that must not depend on where/how a query executed (the same
#: set the planar/generic differential harness pins, which is what makes
#: "service == standalone" a meaningful equality).
ENGINE_INVARIANT_COUNTERS = (
    "page_reads",
    "distinct_page_reads",
    "records_accessed",
    "halfspaces_inserted",
    "halfspaces_expanded",
    "skyline_updates",
    "iterations",
    "nonempty_cells",
    "leaves_processed",
    "leaves_pruned",
    "lp_calls",
    "cells_examined",
    "candidates_generated",
)

CASES = [
    ("IND", 3, 1, 300),
    ("IND", 3, 4, 300),
    ("ANTI", 3, 1, 200),
    ("ANTI", 3, 4, 200),
    ("IND", 4, 1, 200),
    ("IND", 4, 4, 200),
    ("ANTI", 4, 1, 90),
    ("ANTI", 4, 4, 90),
]


def canonical_cells(result):
    return {
        (region.cell_order, tuple(sorted(region.outscored_by)))
        for region in result.regions
    }


def invariant_dump(counters: CostCounters):
    dump = counters.as_dict()
    return {name: dump[name] for name in ENGINE_INVARIANT_COUNTERS}


class TestServiceDifferential:
    """Cold / warm / cached / jobs=2 service answers vs standalone maxrank."""

    @pytest.mark.parametrize("dist,d,tau,n", CASES)
    def test_batch_matches_standalone(self, dist, d, tau, n):
        dataset = generate(dist, n, d, seed=11)
        unique = select_focal_records(dataset, 3, seed=7)
        focals = unique + unique  # duplicates exercise the result cache

        # Standalone references: fresh tree, fresh everything, per query.
        references = {}
        reference_counters = {}
        for focal in unique:
            counters = CostCounters()
            references[focal] = maxrank(dataset, int(focal), tau=tau,
                                        counters=counters)
            reference_counters[focal] = counters

        # Cold serial batch (first half computes, second half hits).
        with MaxRankService(dataset) as service:
            cold = service.query_batch(focals, tau=tau)
            for focal, result in zip(focals, cold):
                assert result_fingerprint(result) == result_fingerprint(references[focal])
                assert invariant_dump(result.counters) == invariant_dump(
                    reference_counters[focal]
                )
            assert service.stats()["queries_computed"] == len(unique)
            assert service.stats()["cache_hits"] == len(unique)

            # Warm: the whole batch again is served from cache, bit-identically.
            warm = service.query_batch(focals, tau=tau)
            assert service.stats()["queries_computed"] == len(unique)
            for focal, result in zip(focals, warm):
                assert result_fingerprint(result) == result_fingerprint(references[focal])

        # Whole-query process pool on a fresh (cold) service.
        with MaxRankService(dataset) as service:
            pooled = service.query_batch(focals, tau=tau, jobs=2)
            for focal, result in zip(focals, pooled):
                assert result_fingerprint(result) == result_fingerprint(references[focal])
                assert invariant_dump(result.counters) == invariant_dump(
                    reference_counters[focal]
                )
            assert service.stats()["queries_computed"] == len(unique)

    def test_single_queries_and_warm_skyline_reuse(self):
        dataset = generate("IND", 300, 4, seed=2)
        with MaxRankService(dataset) as service:
            first = service.query(5, tau=1)
            assert first.counters.skyline_reused == 0  # nothing warm yet
            second = service.query(9, tau=1)
            assert second.counters.skyline_reused > 0  # warm expansion keys
            reference = maxrank(dataset, 9, tau=1)
            assert result_fingerprint(second) == result_fingerprint(reference)

    def test_what_if_vector_focal(self):
        dataset = generate("IND", 250, 3, seed=4)
        vector = np.asarray(dataset.records[7]) * 0.95
        with MaxRankService(dataset) as service:
            served = service.query_batch([vector, vector], tau=1, jobs=2)
            reference = maxrank(dataset, vector, tau=1)
            assert result_fingerprint(served[0]) == result_fingerprint(reference)
            assert served[0] is served[1]  # deduped within the batch


class TestQueryCache:
    def test_lru_eviction(self):
        dataset = generate("IND", 200, 3, seed=3)
        with MaxRankService(dataset, cache_size=2) as service:
            service.query(1)
            service.query(2)
            service.query(3)       # evicts focal 1
            assert service.cache.evictions == 1
            computed_before = service.queries_computed
            service.query(3)       # hit
            service.query(1)       # recomputed (was evicted)
            assert service.queries_computed == computed_before + 1

    def test_cache_disabled(self):
        dataset = generate("IND", 200, 3, seed=3)
        with MaxRankService(dataset, cache_size=0) as service:
            service.query(1)
            service.query(1)
            assert service.queries_computed == 2

    def test_use_cache_false_bypasses(self):
        dataset = generate("IND", 200, 3, seed=3)
        with MaxRankService(dataset) as service:
            service.query(1)
            service.query(1, use_cache=False)
            assert service.queries_computed == 2

    @pytest.mark.parametrize("jobs", [None, 2])
    def test_batch_dedup_without_cache(self, jobs):
        """Duplicates are computed once even with caching bypassed, on both
        the serial and the parallel path — and none of that dedup is
        attributed to the (never consulted) result cache."""
        dataset = generate("IND", 200, 3, seed=3)
        with MaxRankService(dataset) as service:
            results = service.query_batch([4, 4, 9, 4], use_cache=False, jobs=jobs)
            assert service.queries_computed == 2
            assert service.stats()["cache_hits"] == 0
            assert results[0] is results[1] is results[3]

    def test_key_separates_inputs(self):
        base = query_key(3, 1, "auto", "auto", {})
        assert query_key(4, 1, "auto", "auto", {}) != base
        assert query_key(3, 2, "auto", "auto", {}) != base
        assert query_key(3, 1, "aa", "auto", {}) != base
        assert query_key(3, 1, "auto", "generic", {}) != base
        assert query_key(3, 1, "auto", "auto", {"split_threshold": 9}) != base
        # An index and the same record's coordinates are distinct identities.
        assert query_key(np.array([0.1, 0.2, 0.7]), 1, "auto", "auto", {}) != base

    def test_cache_object_counts(self):
        cache = QueryCache(maxsize=1)
        key_a = query_key(1, 0, "auto", "auto", {})
        key_b = query_key(2, 0, "auto", "auto", {})
        assert cache.get(key_a) is None
        assert cache.misses == 1
        dataset = generate("IND", 80, 3, seed=0)
        result = maxrank(dataset, 1)
        cache.put(key_a, result)
        assert cache.get(key_a) is result
        assert cache.hits == 1
        cache.put(key_b, result)
        assert len(cache) == 1 and cache.evictions == 1

    def test_negative_maxsize_rejected(self):
        with pytest.raises(AlgorithmError):
            QueryCache(maxsize=-1)


class TestTauMonotone:
    def test_monotone_reuse_is_canonically_correct(self):
        dataset = generate("ANTI", 150, 3, seed=9)
        focal = select_focal_records(dataset, 1, seed=1)[0]
        reference = maxrank(dataset, int(focal), tau=2)
        with MaxRankService(dataset, tau_policy="monotone") as service:
            wide = service.query(focal, tau=4)
            derived = service.query(focal, tau=2)     # derived from tau=4
            assert service.cache.monotone_hits == 1
            assert service.queries_computed == 1
            assert derived.tau == 2
            assert derived.k_star == reference.k_star
            assert derived.dominator_count == reference.dominator_count
            assert canonical_cells(derived) == canonical_cells(reference)
            # Every derived region really attains its order (independent check).
            for region in derived.regions:
                query = region.representative_query()
                assert order_of(dataset, dataset.records[int(focal)], query) == region.order
            # The derivation narrowed the superset answer.
            assert {id(r) for r in derived.regions} <= {id(r) for r in wide.regions}
            # A repeat of the derived query is now an exact hit.
            again = service.query(focal, tau=2)
            assert again is derived

    def test_exact_policy_never_derives(self):
        dataset = generate("IND", 150, 3, seed=9)
        with MaxRankService(dataset) as service:   # tau_policy="exact"
            service.query(3, tau=4)
            service.query(3, tau=2)
            assert service.cache.monotone_hits == 0
            assert service.queries_computed == 2

    def test_derive_rejects_widening(self):
        dataset = generate("IND", 100, 3, seed=1)
        result = maxrank(dataset, 3, tau=1)
        with pytest.raises(AlgorithmError, match="narrow"):
            derive_lower_tau(result, 3)

    def test_unknown_policy_rejected(self):
        dataset = generate("IND", 50, 3, seed=1)
        with pytest.raises(AlgorithmError, match="tau_policy"):
            MaxRankService(dataset, tau_policy="sometimes")


class TestServiceSnapshots:
    def test_round_trip_through_service(self, tmp_path):
        dataset = generate("IND", 250, 3, seed=6)
        path = tmp_path / "service.rprs"
        with MaxRankService(dataset) as service:
            original = service.query(8, tau=1)
            service.save_snapshot(path)
        with MaxRankService.from_snapshot(path) as warm:
            assert warm.dataset.name == dataset.name
            assert warm.dataset.n == dataset.n
            reloaded = warm.query(8, tau=1)
            assert result_fingerprint(reloaded) == result_fingerprint(original)
            assert invariant_dump(reloaded.counters) == invariant_dump(original.counters)

    def test_from_snapshot_rejects_corruption(self, tmp_path):
        path = tmp_path / "corrupt.rprs"
        path.write_bytes(b"garbage that is not a snapshot")
        with pytest.raises(SnapshotError):
            MaxRankService.from_snapshot(path)


class TestServiceLifecycle:
    def test_closed_service_rejects_queries(self):
        dataset = generate("IND", 60, 3, seed=0)
        service = MaxRankService(dataset)
        service.close()
        with pytest.raises(AlgorithmError, match="closed"):
            service.query(1)
        with pytest.raises(AlgorithmError, match="closed"):
            service.query_batch([1])
        service.close()  # idempotent

    def test_orphan_query_task_fails_loudly(self):
        task = QueryTask(token=987654321, focal_index=0)
        with pytest.raises(AlgorithmError, match="registered"):
            task.run()

    def test_task_pickles_small(self):
        import pickle

        task = QueryTask(token=1, focal_index=3, tau=2)
        blob = pickle.dumps(task)
        assert len(blob) < 1024
        assert pickle.loads(blob).focal_index == 3


class TestServiceCliInProcess:
    """CLI handlers driven in-process (also keeps them inside coverage)."""

    def test_build_query_verify_roundtrip(self, tmp_path, capsys):
        from repro.service.cli import main

        snap = tmp_path / "cli.rprs"
        assert main(["build", "--dist", "IND", "--n", "120", "--d", "3",
                     "--out", str(snap)]) == 0
        assert main(["query", "--snapshot", str(snap), "--batch", "4",
                     "--tau", "1", "--verify-standalone"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out

    def test_query_json_and_explicit_focals(self, tmp_path, capsys):
        from repro.service.cli import main

        snap = tmp_path / "cli.rprs"
        main(["build", "--dist", "IND", "--n", "100", "--d", "3",
              "--out", str(snap)])
        capsys.readouterr()
        assert main(["query", "--snapshot", str(snap), "--focal", "3",
                     "--focal", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.splitlines()[0])
        assert [row["focal"] for row in payload["queries"]] == [3, 3]
        assert payload["queries"][0]["k_star"] == payload["queries"][1]["k_star"]
        assert payload["stats"]["cache_hits"] == 1

    def test_serve_loop(self, tmp_path, monkeypatch, capsys):
        import io

        from repro.service.cli import main

        snap = tmp_path / "cli.rprs"
        main(["build", "--dist", "IND", "--n", "100", "--d", "3",
              "--out", str(snap)])
        capsys.readouterr()
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO('{"focal": 5}\n\n{"bad": 1}\n[0.4, 0.3, 0.3]\n'
                        '{"cmd": "stats"}\n{"cmd": "quit"}\n'),
        )
        assert main(["serve", "--snapshot", str(snap)]) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert lines[0]["ready"] is True
        assert "k_star" in lines[1]
        assert "error" in lines[2]          # malformed request is answered, not fatal
        assert "error" in lines[3]          # valid JSON but not an object: same
        assert lines[4]["queries_served"] == 1

    def test_build_real_dataset(self, tmp_path, capsys):
        from repro.service.cli import main

        snap = tmp_path / "nba.rprs"
        assert main(["build", "--real", "NBA", "--sample", "60",
                     "--out", str(snap)]) == 0
        assert "NBA" in capsys.readouterr().out

    def test_snapshot_error_exit_code(self, tmp_path, capsys):
        from repro.service.cli import main

        assert main(["query", "--snapshot", str(tmp_path / "missing.rprs")]) == 2
        assert "error:" in capsys.readouterr().err


class TestServiceCli:
    """End-to-end CLI smoke: build → query (verify) → serve."""

    @pytest.fixture(scope="class")
    def snapshot(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "cli.rprs"
        run = self._run("build", "--dist", "IND", "--n", "150", "--d", "3",
                        "--out", str(path))
        assert run.returncode == 0, run.stderr
        return path

    @staticmethod
    def _run(*args, stdin=None):
        env = dict(os.environ)
        root = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(root / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.service", *args],
            capture_output=True, text=True, input=stdin, env=env, timeout=300,
        )

    def test_query_verifies_against_standalone(self, snapshot):
        run = self._run("query", "--snapshot", str(snapshot), "--batch", "8",
                        "--tau", "1", "--jobs", "2", "--json",
                        "--verify-standalone")
        assert run.returncode == 0, run.stderr + run.stdout
        payload = json.loads(run.stdout.splitlines()[0])
        assert len(payload["queries"]) == 8
        assert payload["stats"]["cache_hits"] == 4
        assert "bit-identical" in run.stdout

    def test_serve_answers_and_caches(self, snapshot):
        lines = '{"focal": 5}\n{"focal": 5}\n{"cmd": "stats"}\n{"cmd": "quit"}\n'
        run = self._run("serve", "--snapshot", str(snapshot), stdin=lines)
        assert run.returncode == 0, run.stderr
        ready, first, second, stats = [
            json.loads(line) for line in run.stdout.splitlines()[:4]
        ]
        assert ready["ready"] is True
        assert first["k_star"] == second["k_star"]
        assert first["cache_hit"] is False and second["cache_hit"] is True
        assert stats["queries_served"] == 2 and stats["queries_computed"] == 1

    def test_missing_snapshot_is_a_clean_error(self, tmp_path):
        run = self._run("query", "--snapshot", str(tmp_path / "none.rprs"))
        assert run.returncode == 2
        assert "error:" in run.stderr

    def test_serve_processes_unterminated_final_line(self, snapshot):
        """A valid final request whose newline never arrives (client closed
        mid-write) is still answered, never silently dropped."""
        lines = '{"focal": 5}\n{"focal": 5}'  # no trailing newline
        run = self._run("serve", "--snapshot", str(snapshot), stdin=lines)
        assert run.returncode == 0, run.stderr
        out = [json.loads(line) for line in run.stdout.splitlines()]
        assert out[1]["cache_hit"] is False
        assert out[2]["cache_hit"] is True       # the unterminated one
        assert out[2]["k_star"] == out[1]["k_star"]
        assert out[3]["shutdown"] is True
        assert out[3]["queries_answered"] == 2

    def test_serve_truncated_final_json_is_bad_request(self, snapshot):
        """An *invalid* unterminated tail (truncated mid-JSON) answers a
        structured bad_request error before the clean shutdown line."""
        lines = '{"focal": 5}\n{"focal"'
        run = self._run("serve", "--snapshot", str(snapshot), stdin=lines)
        assert run.returncode == 0, run.stderr
        out = [json.loads(line) for line in run.stdout.splitlines()]
        assert "k_star" in out[1]
        assert out[2]["error"]["code"] == "bad_request"
        assert out[3]["shutdown"] is True and out[3]["reason"] == "eof"

    def test_serve_listen_single_shard_and_sigterm(self, snapshot):
        """TCP mode subprocess smoke: kernel-picked port, a query without a
        "dataset" field (single shard is unambiguous), graceful SIGTERM."""
        import signal
        import socket

        env = dict(os.environ)
        root = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(root / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--listen", "127.0.0.1:0", "--snapshot", str(snapshot)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
        )
        try:
            meta = json.loads(proc.stdout.readline())
            host, port = meta["listening"]
            assert meta["datasets"] == [snapshot.stem]
            with socket.create_connection((host, port), timeout=30) as sock:
                f = sock.makefile("rwb")
                ready = json.loads(f.readline())
                assert ready["ready"] is True
                f.write(b'{"focal": 5}\n')
                f.flush()
                answer = json.loads(f.readline())
                assert answer["k_star"] >= 1
                proc.send_signal(signal.SIGTERM)
                farewell = json.loads(f.readline())
                assert farewell["shutdown"] is True
                assert farewell["reason"] == "SIGTERM"
            out, err = proc.communicate(timeout=60)
            assert proc.returncode == 0, err
            assert json.loads(out.splitlines()[-1])["reason"] == "SIGTERM"
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.communicate()


class TestScopedInvalidation:
    """Mutations evict exactly the cached answers they can affect."""

    def test_insert_outside_every_scope_evicts_nothing(self):
        """A record dominated by every cached focal cannot touch any cached
        answer: zero evictions, ``retained`` exact, same result objects."""
        dataset = generate("IND", 200, 3, seed=51)
        with MaxRankService(dataset) as service:
            focals = [10, 25, 40, 60]
            before = {f: service.query(f, tau=1) for f in focals}
            entries = len(service.cache)
            harmless = dataset.records[focals].min(axis=0) * 0.5
            service.insert(harmless)
            assert service.cache.invalidated == 0
            assert service.cache.retained == entries
            hits = service.cache.hits
            for f in focals:
                assert service.query(f, tau=1) is before[f]
            assert service.cache.hits == hits + len(focals)

    def test_dominating_insert_evicts_exactly_the_affected_keys(self):
        dataset = generate("IND", 200, 3, seed=52)
        low = np.array([0.15, 0.15, 0.15])
        high = np.array([0.85, 0.85, 0.85])
        with MaxRankService(dataset) as service:
            service.query(low, tau=1)
            service.query(high, tau=1)
            service.insert([0.4, 0.4, 0.4])  # dominates low, dominated by high
            assert service.cache.invalidated == 1
            assert service.cache.retained == 1
            hits = service.cache.hits
            service.query(high, tau=1)
            assert service.cache.hits == hits + 1      # retained entry serves
            computed = service.queries_computed
            retained = service.query(high, tau=1)
            service.query(low, tau=1)                  # must recompute
            assert service.queries_computed == computed + 1
            oracle_counters = CostCounters()
            oracle = maxrank(service.dataset, high, tau=1, counters=oracle_counters)
            assert result_fingerprint(retained) == result_fingerprint(oracle)

    def test_scopeless_answers_take_the_full_flush_fallback(self):
        """BA results carry no provenance scope, so any mutation — even one
        dominated by the focal — must evict them."""
        dataset = generate("IND", 120, 3, seed=53)
        with MaxRankService(dataset, algorithm="ba") as service:
            result = service.query(7, tau=1)
            assert result.materialised_ids is None
            service.insert(dataset.records[7] * 0.5)
            assert service.cache.invalidated == 1
            assert service.cache.retained == 0
            assert len(service.cache) == 0

    def test_monotone_derived_answers_are_flushed_with_their_scope(self):
        """tau-monotone derivations carry no scope (fresh counters, no
        provenance); the superset answer they came from keeps its own."""
        dataset = generate("IND", 150, 3, seed=54)
        with MaxRankService(dataset, tau_policy="monotone") as service:
            service.query(9, tau=4)
            derived = service.query(9, tau=1)   # derived from the tau=4 answer
            assert derived.materialised_ids is None
            assert len(service.cache) == 2
            service.insert(dataset.records[9] * 0.5)  # in no answer's scope
            assert service.cache.invalidated == 1     # only the derivation
            assert service.cache.retained == 1

    def test_delete_remaps_retained_keys_and_ids(self):
        """Deleting row j shifts cached idx keys (and region labels) above j
        down by one; the remapped entry serves bit-identically."""
        dataset = generate("IND", 200, 3, seed=55)
        with MaxRankService(dataset) as service:
            # Pick a (focal, victim) pair with victim < focal and the focal
            # weakly dominating the victim: the victim is outside the cached
            # answer's scope, so the entry must survive the delete.
            focal = victim = None
            for candidate in range(199, 0, -1):
                dominated = np.flatnonzero(
                    (dataset.records[:candidate]
                     <= dataset.records[candidate]).all(axis=1)
                )
                if dominated.size:
                    focal, victim = candidate, int(dominated[0])
                    break
            assert focal is not None, "seed must yield a dominated pair"
            service.query(focal, tau=1)
            service.delete(victim)
            assert service.cache.retained == 1 and service.cache.invalidated == 0
            hits = service.cache.hits
            served = service.query(focal - 1, tau=1)
            assert service.cache.hits == hits + 1
            oracle = maxrank(service.dataset, focal - 1, tau=1)
            assert result_fingerprint(served) == result_fingerprint(oracle)
            n = service.dataset.n
            for region in served.regions:
                assert all(0 <= rid < n for rid in region.outscored_by)

    def test_delete_of_cached_focal_evicts_its_entries(self):
        dataset = generate("IND", 150, 3, seed=56)
        with MaxRankService(dataset) as service:
            service.query(30, tau=0)
            service.query(30, tau=2)
            service.delete(30)
            assert len(service.cache) == 0
            assert service.cache.invalidated == 2

    def test_mutation_validation(self):
        dataset = generate("IND", 50, 3, seed=57)
        with MaxRankService(dataset) as service:
            with pytest.raises(AlgorithmError):
                service.insert([0.1, 0.2])              # wrong dimension
            with pytest.raises(AlgorithmError):
                service.insert([0.1, 0.2, float("nan")])
            with pytest.raises(AlgorithmError):
                service.delete(50)                      # out of range
            with pytest.raises(AlgorithmError):
                service.delete(-1)
            with pytest.raises(AlgorithmError):
                service.delete("7")                     # type: ignore[arg-type]
            assert service.dataset.n == 50
        with pytest.raises(AlgorithmError):
            service.insert([0.1, 0.2, 0.3])             # closed service
