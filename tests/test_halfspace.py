"""Tests for the half-space mapping into the reduced query space."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import random_permissible_vector
from repro.errors import GeometryError
from repro.geometry import (
    BoxRelation,
    Halfspace,
    halfspace_for_record,
    lift_query_vector,
    reduce_query_vector,
    reduced_space_constraints,
)

coords = st.lists(st.floats(0.01, 0.99), min_size=2, max_size=5)


class TestHalfspaceBasics:
    def test_evaluate_and_contains(self):
        h = Halfspace([1.0, -1.0], 0.2)
        assert h.evaluate([0.5, 0.1]) == pytest.approx(0.2)
        assert h.contains_point([0.5, 0.1])
        assert not h.contains_point([0.1, 0.5])

    def test_complement_flips_containment(self):
        h = Halfspace([1.0, 0.0], 0.5)
        c = h.complement()
        point_inside = [0.9, 0.0]
        point_outside = [0.1, 0.0]
        assert h.contains_point(point_inside) and not c.contains_point(point_inside)
        assert c.contains_point(point_outside) and not h.contains_point(point_outside)

    def test_zero_normal_rejected(self):
        with pytest.raises(GeometryError):
            Halfspace([0.0, 0.0], 0.5)

    def test_dimension_mismatch_rejected(self):
        h = Halfspace([1.0, 1.0], 0.5)
        with pytest.raises(GeometryError):
            h.evaluate([0.5])

    def test_with_flags(self):
        h = Halfspace([1.0], 0.2, record_id=7, augmented=True)
        s = h.with_flags(augmented=False)
        assert s.record_id == 7 and not s.augmented and h.augmented

    def test_coefficient_tuple_matches_array(self):
        h = Halfspace([0.25, -0.5, 1.0], 0.1)
        assert h.coefficients_t == (0.25, -0.5, 1.0)


class TestBoxRelation:
    def test_contains(self):
        h = Halfspace([1.0, 0.0], -1.0)   # x > -1 contains the unit box
        assert h.relation_to_box([0, 0], [1, 1]) is BoxRelation.CONTAINS

    def test_disjoint(self):
        h = Halfspace([1.0, 0.0], 2.0)    # x > 2 misses the unit box
        assert h.relation_to_box([0, 0], [1, 1]) is BoxRelation.DISJOINT

    def test_overlaps(self):
        h = Halfspace([1.0, 0.0], 0.5)
        assert h.relation_to_box([0, 0], [1, 1]) is BoxRelation.OVERLAPS

    def test_extremes_over_box(self):
        h = Halfspace([2.0, -1.0], 0.0)
        low, high = h.extremes_over_box([0, 0], [1, 1])
        assert low == pytest.approx(-1.0)
        assert high == pytest.approx(2.0)


class TestRecordMapping:
    @given(record=coords, focal=coords, seed=st.integers(0, 10_000))
    @settings(max_examples=120, deadline=None)
    def test_halfspace_membership_equals_score_comparison(self, record, focal, seed):
        """Core soundness property (paper, Section 5): S(r) > S(p) iff the
        reduced query vector lies inside the record's half-space."""
        size = min(len(record), len(focal))
        assume(size >= 2)
        r = np.array(record[:size])
        p = np.array(focal[:size])
        try:
            halfspace = halfspace_for_record(r, p)
        except GeometryError:
            assume(False)
            return
        q = random_permissible_vector(size, np.random.default_rng(seed))
        reduced = reduce_query_vector(q)
        score_r = float(r @ q)
        score_p = float(p @ q)
        assume(abs(score_r - score_p) > 1e-9)
        assert halfspace.contains_point(reduced) == (score_r > score_p)

    def test_dominating_record_is_degenerate_or_contains_space(self):
        """A record differing from the focal record by a constant shift in every
        attribute induces a degenerate (parallel-score) half-space."""
        with pytest.raises(GeometryError):
            halfspace_for_record([0.6, 0.6], [0.5, 0.5])

    def test_record_id_and_flags_carried(self):
        h = halfspace_for_record([0.9, 0.1, 0.5], [0.5, 0.5, 0.5], record_id=3, augmented=True)
        assert h.record_id == 3 and h.augmented

    def test_dimension_guard(self):
        with pytest.raises(GeometryError):
            halfspace_for_record([0.5], [0.4])
        with pytest.raises(GeometryError):
            halfspace_for_record([0.5, 0.5], [0.4, 0.4, 0.4])


class TestReducedSpace:
    def test_constraints_count(self):
        constraints = reduced_space_constraints(3)
        assert len(constraints) == 4

    def test_constraints_describe_open_simplex(self):
        constraints = reduced_space_constraints(2)
        inside = [0.3, 0.3]
        outside = [0.7, 0.5]
        assert all(c.contains_point(inside) for c in constraints)
        assert not all(c.contains_point(outside) for c in constraints)

    def test_invalid_dimension(self):
        with pytest.raises(GeometryError):
            reduced_space_constraints(0)

    @given(d=st.integers(2, 6), seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_reduce_then_lift_round_trip(self, d, seed):
        q = random_permissible_vector(d, np.random.default_rng(seed))
        reduced = reduce_query_vector(q)
        lifted = lift_query_vector(reduced)
        assert np.allclose(lifted, q / q.sum())

    def test_lift_rejects_non_permissible(self):
        with pytest.raises(GeometryError):
            lift_query_vector([0.7, 0.4])   # sums above 1
        with pytest.raises(GeometryError):
            lift_query_vector([0.0, 0.4])   # zero weight
