"""Equivalence tests for the batched feasibility engine.

The batched screens (:func:`repro.geometry.lp.screen_cells_batch`), the
LP-free pairwise analysis and the incremental scan cache are pure
optimisations: every decision they make must agree with the per-cell exact
path.  These tests pin that contract on random inputs.
"""

from __future__ import annotations

from itertools import combinations, product

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CostCounters, generate_independent
from repro.core import aa_maxrank
from repro.core.cells import collect_cells
from repro.geometry import Halfspace
from repro.geometry.lp import (
    find_interior_point,
    find_interior_point_arrays,
    screen_cells_batch,
)
from repro.quadtree import AugmentedQuadTree, WithinLeafProcessor
from repro.quadtree.withinleaf import PairwiseConstraints


def random_system(seed: int, m: int, k: int):
    """A random constraint system over a random sub-box of the unit cube."""
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(m, k))
    b = rng.normal(size=m) * 0.2
    lower = rng.uniform(0.0, 0.4, size=k)
    upper = lower + rng.uniform(0.2, 0.6, size=k)
    upper = np.minimum(upper, 1.0)
    return A, b, lower, upper


def random_halfspaces(count: int, dim: int, seed: int):
    rng = np.random.default_rng(seed)
    result = []
    for i in range(count):
        normal = rng.normal(size=dim)
        while np.allclose(normal, 0):
            normal = rng.normal(size=dim)
        result.append(Halfspace(normal, rng.uniform(-0.3, 0.6), record_id=i))
    return result


class TestScreenCellsBatch:
    @given(seed=st.integers(0, 300), m=st.integers(1, 8), k=st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_screen_decisions_match_per_cell_solver(self, seed, m, k):
        """Accepts and rejects must agree with the exact per-cell LP."""
        A, b, lower, upper = random_system(seed, m, k)
        # All 2^m orientation patterns of the system (bounded by m <= 8).
        signs = np.array(list(product((-1.0, 1.0), repeat=m)))
        centre = (lower + upper) / 2.0
        probes = np.vstack([centre[None, :],
                            lower[None, :] + 0.25 * (upper - lower),
                            lower[None, :] + 0.75 * (upper - lower)])
        norms = np.sqrt((A * A).sum(axis=1))
        norms = np.where(norms > 0, norms, 1.0)
        margins = (A @ probes.T - b[:, None]) / norms[:, None]
        valid = np.minimum(probes - lower, upper - probes).min(axis=1) > 1e-8
        status, witnesses = screen_cells_batch(
            A, b, signs, lower, upper,
            probes=probes, probe_margins=margins, probe_valid=valid,
        )
        for row in range(signs.shape[0]):
            oriented_A = A * signs[row][:, None]
            oriented_b = b * signs[row]
            exact = find_interior_point_arrays(oriented_A, oriented_b, lower, upper)
            if status[row] > 0:
                assert exact.feasible, "accept screen certified an empty cell"
                witness = witnesses[row]
                assert (oriented_A @ witness - oriented_b > 0).all()
            elif status[row] < 0:
                assert not exact.feasible, "reject screen killed a non-empty cell"

    def test_empty_batch(self):
        A = np.zeros((0, 3))
        status, witnesses = screen_cells_batch(
            A, np.zeros(0), np.zeros((0, 0)), np.zeros(3), np.ones(3)
        )
        assert status.shape == (0,)
        assert witnesses == []

    def test_degenerate_box_rejects_everything(self):
        A = np.array([[1.0, 0.0]])
        b = np.array([0.0])
        signs = np.array([[1.0], [-1.0]])
        status, _ = screen_cells_batch(
            A, b, signs, np.array([0.5, 0.5]), np.array([0.5, 0.4])
        )
        assert (status == -1).all()


class TestProcessorEquivalence:
    @given(seed=st.integers(0, 200), count=st.integers(2, 9), dim=st.integers(3, 4))
    @settings(max_examples=30, deadline=None)
    def test_batched_enumeration_matches_per_cell_oracle(self, seed, count, dim):
        """Every weight's cell set must equal brute-force per-cell testing."""
        halfspaces = [(i, h) for i, h in enumerate(random_halfspaces(count, dim, seed))]
        lower = [0.05] * dim
        upper = [0.45] * dim
        processor = WithinLeafProcessor(lower, upper, halfspaces, use_pairwise=True,
                                        pairwise_min_size=2)
        reference = WithinLeafProcessor(lower, upper, halfspaces, use_pairwise=False)
        for weight in range(count + 1):
            fast = {cell.bits for cell in processor.cells_at_weight(weight)}
            slow = set()
            for ones in combinations(range(count), weight):
                bits = tuple(1 if i in ones else 0 for i in range(count))
                if reference._test_cell_lp(bits) is not None:
                    slow.add(bits)
            assert fast == slow

    @given(seed=st.integers(0, 120), count=st.integers(2, 7))
    @settings(max_examples=25, deadline=None)
    def test_seed_probes_do_not_change_results(self, seed, count):
        """Witness seeding is a pure accept-screen accelerator."""
        halfspaces = [(i, h) for i, h in enumerate(random_halfspaces(count, 3, seed))]
        lower, upper = [0.0] * 3, [0.5] * 3
        plain = WithinLeafProcessor(lower, upper, halfspaces)
        _, cells = plain.minimal_cells(extra=1)
        seeds = [cell.interior_point for cell in cells]
        seeded = WithinLeafProcessor(lower, upper, halfspaces, seed_probes=seeds)
        minimum_plain, cells_plain = plain.minimal_cells(extra=1)
        minimum_seeded, cells_seeded = seeded.minimal_cells(extra=1)
        assert minimum_plain == minimum_seeded
        assert {c.bits for c in cells_plain} == {c.bits for c in cells_seeded}


class TestPairwiseSoundness:
    @given(seed=st.integers(0, 300), count=st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_forbidden_combinations_are_truly_infeasible(self, seed, count):
        """Every forbidden pair orientation must be exactly infeasible."""
        halfspaces = [(i, h) for i, h in enumerate(random_halfspaces(count, 3, seed))]
        rng = np.random.default_rng(seed + 1)
        lower = rng.uniform(0.0, 0.3, size=3)
        upper = lower + rng.uniform(0.2, 0.5, size=3)
        constraints = PairwiseConstraints.build(halfspaces, lower, upper)
        for (pos_i, pos_j), forbidden in constraints._forbidden.items():
            h_i = halfspaces[pos_i][1]
            h_j = halfspaces[pos_j][1]
            for bit_i, bit_j in forbidden:
                parts = [
                    h_i if bit_i else h_i.complement(),
                    h_j if bit_j else h_j.complement(),
                ]
                result = find_interior_point(parts, lower, upper)
                assert not result.feasible, (
                    f"combo {(bit_i, bit_j)} of pair {(pos_i, pos_j)} was "
                    "forbidden but is feasible"
                )


class TestBulkInsertEquivalence:
    @given(seed=st.integers(0, 80), count=st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_bulk_insert_builds_identical_tree(self, seed, count):
        """insert_bulk must produce the same structure as one-by-one inserts."""
        halfspaces = random_halfspaces(count, 2, seed)
        sequential = AugmentedQuadTree(2, split_threshold=4)
        for h in halfspaces:
            sequential.insert(h)
        bulk = AugmentedQuadTree(2, split_threshold=4)
        bulk.insert_bulk(halfspaces)

        def signature(tree):
            return sorted(
                (
                    tuple(np.round(leaf.lower, 12)),
                    tuple(np.round(leaf.upper, 12)),
                    tuple(sorted(leaf.full_ids())),
                    tuple(sorted(leaf.partial)),
                )
                for leaf in tree.leaves()
            )

        assert signature(sequential) == signature(bulk)


def _region_fingerprint(result):
    return sorted(
        (region.cell_order, region.order, region.outscored_by)
        for region in result.regions
    )


class TestIncrementalScanEquivalence:
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_warm_cache_scan_matches_fresh_scan(self, seed):
        """Scans with a reused cache across tree growth match cold scans."""
        halfspaces = random_halfspaces(14, 2, seed)
        tree = AugmentedQuadTree(2, split_threshold=4)
        cache: dict = {}
        tree.insert_bulk(halfspaces[:8])
        collect_cells(tree, cache=cache)
        tree.insert_bulk(halfspaces[8:])
        best_warm, cells_warm = collect_cells(tree, tau=1, cache=cache)

        fresh_tree = AugmentedQuadTree(2, split_threshold=4)
        fresh_tree.insert_bulk(halfspaces[:8])
        collect_cells(fresh_tree)
        fresh_tree.insert_bulk(halfspaces[8:])
        best_cold, cells_cold = collect_cells(fresh_tree, tau=1)

        assert best_warm == best_cold
        warm = {(record.order, record.cell.bits, tuple(record.containing_ids))
                for record in cells_warm}
        cold = {(record.order, record.cell.bits, tuple(record.containing_ids))
                for record in cells_cold}
        assert warm == cold

    @pytest.mark.parametrize("seed,n,d", [(1, 70, 3), (6, 60, 4)])
    def test_aa_is_deterministic_and_cache_neutral(self, seed, n, d):
        """Two AA runs (each exercising the incremental cache) agree exactly."""
        data = generate_independent(n, d, seed=seed)
        first = aa_maxrank(data, 4, tau=1, counters=CostCounters())
        second = aa_maxrank(data, 4, tau=1, counters=CostCounters())
        assert first.k_star == second.k_star
        assert first.minimum_cell_order == second.minimum_cell_order
        assert _region_fingerprint(first) == _region_fingerprint(second)
