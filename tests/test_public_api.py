"""Tests for the package-level public API surface and the runnable quickstart."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version_exposed(self):
        assert repro.__version__

    def test_all_names_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_error_hierarchy(self):
        from repro.errors import (
            AlgorithmError,
            DimensionalityError,
            GeometryError,
            InvalidDatasetError,
            InvalidQueryVectorError,
            InvalidRecordError,
            ReproError,
        )

        for exc in (AlgorithmError, DimensionalityError, GeometryError,
                    InvalidDatasetError, InvalidQueryVectorError, InvalidRecordError):
            assert issubclass(exc, ReproError)

    def test_subpackages_importable(self):
        for module in ("repro.core", "repro.data", "repro.geometry", "repro.index",
                       "repro.quadtree", "repro.skyline", "repro.topk",
                       "repro.experiments"):
            importlib.import_module(module)

    def test_algorithm_registry(self):
        assert set(repro.ALGORITHMS) == {
            "auto", "aa", "aa2d", "aa3d", "ba", "fca", "exact",
        }

    def test_engine_registry(self):
        from repro.core import ENGINES

        assert set(ENGINES) == {"auto", "planar", "planar-global", "generic"}


class TestQuickstartExample:
    def test_quickstart_runs_and_verifies(self):
        """The quickstart script is the documented entry point; it must run
        end to end (it asserts its own verification internally)."""
        import runpy
        import sys
        from pathlib import Path

        script = Path(__file__).resolve().parents[1] / "examples" / "quickstart.py"
        assert script.exists()
        runpy.run_path(str(script), run_name="__main__")
