"""Contract tests for the prefix-pruned DFS candidate generator.

The DFS (:meth:`repro.quadtree.withinleaf.WithinLeafProcessor._dfs_chunks`)
is a pure enumeration optimisation: it must emit exactly the candidate
bit-strings that the old enumerate-then-filter pipeline would have passed to
the screens — all ``C(m, w)`` combinations minus those violating a pairwise
constraint or a per-row corner-extreme bound — in the same lexicographic
order, while never materialising a forbidden subtree.  Reuse of conflict
masks and of the surviving-prefix frontier across simulated AA re-scans must
not change any result.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CostCounters
from repro.geometry import Halfspace
from repro.geometry.lp import MIN_INTERIOR_RADIUS, box_row_extremes
from repro.quadtree import WithinLeafProcessor
from repro.quadtree.withinleaf import PairwiseConstraints


def random_halfspaces(count: int, dim: int, seed: int):
    rng = np.random.default_rng(seed)
    result = []
    for i in range(count):
        normal = rng.normal(size=dim)
        while np.allclose(normal, 0):
            normal = rng.normal(size=dim)
        result.append(Halfspace(normal, rng.uniform(-0.3, 0.6), record_id=i))
    return result


def oracle_survivors(processor: WithinLeafProcessor, weight: int):
    """Combinations surviving pairwise + per-row pruning, by brute force."""
    m = len(processor.partial)
    A = processor._partial_A
    b = processor._partial_b
    norms = processor._partial_norms
    row_min, row_max = box_row_extremes(A, processor.lower, processor.upper)
    margin = MIN_INTERIOR_RADIUS * norms
    allowed0 = row_min < b - margin
    allowed1 = row_max > b + margin
    pairwise = processor._pairwise
    survivors = []
    for ones in combinations(range(m), weight):
        bits = processor._bits_for(ones)
        if any(not (allowed1[p] if v else allowed0[p]) for p, v in enumerate(bits)):
            continue
        if pairwise is not None and pairwise.violates(bits):
            continue
        survivors.append(ones)
    return survivors


class TestDfsGeneration:
    @given(seed=st.integers(0, 200), count=st.integers(2, 9), dim=st.integers(3, 4))
    @settings(max_examples=40, deadline=None)
    def test_dfs_emits_exactly_the_filter_survivors_in_order(self, seed, count, dim):
        """DFS output == (combinations minus filtered), lexicographically."""
        halfspaces = [(i, h) for i, h in enumerate(random_halfspaces(count, dim, seed))]
        rng = np.random.default_rng(seed + 17)
        lower = rng.uniform(0.0, 0.3, size=dim)
        upper = lower + rng.uniform(0.2, 0.5, size=dim)
        processor = WithinLeafProcessor(lower, upper, halfspaces,
                                        use_pairwise=True, pairwise_min_size=2)
        for weight in range(count + 1):
            emitted = [ones for chunk in processor._dfs_chunks(weight) for ones in chunk]
            assert emitted == oracle_survivors(processor, weight)

    @given(seed=st.integers(0, 120), count=st.integers(3, 9))
    @settings(max_examples=30, deadline=None)
    def test_generated_candidates_counter_matches_emission(self, seed, count):
        """candidates_generated counts emitted candidates; cuts are branches."""
        halfspaces = [(i, h) for i, h in enumerate(random_halfspaces(count, 3, seed))]
        counters = CostCounters()
        processor = WithinLeafProcessor([0.05] * 3, [0.45] * 3, halfspaces,
                                        use_pairwise=True, pairwise_min_size=2,
                                        counters=counters)
        total = 0
        for weight in range(count + 1):
            total += len(oracle_survivors(processor, weight))
            processor.cells_at_weight(weight)
        assert counters.candidates_generated == total
        assert counters.cells_examined == total
        # The post-hoc pairwise filter is gone on this path.
        assert counters.pairwise_pruned == 0

    def test_weight_zero_and_full_weight(self):
        halfspaces = [(i, h) for i, h in enumerate(random_halfspaces(5, 3, 3))]
        processor = WithinLeafProcessor([0.0] * 3, [0.5] * 3, halfspaces,
                                        use_pairwise=True, pairwise_min_size=2)
        for weight in (0, 5):
            emitted = [ones for chunk in processor._dfs_chunks(weight) for ones in chunk]
            assert emitted == oracle_survivors(processor, weight)


class TestConflictMasks:
    @given(seed=st.integers(0, 200), count=st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_masks_agree_with_violates(self, seed, count):
        """The bitmask check must equal the per-pair violates() predicate."""
        halfspaces = [(i, h) for i, h in enumerate(random_halfspaces(count, 3, seed))]
        rng = np.random.default_rng(seed + 5)
        lower = rng.uniform(0.0, 0.3, size=3)
        upper = lower + rng.uniform(0.2, 0.5, size=3)
        constraints = PairwiseConstraints.build(halfspaces, lower, upper)
        one_masks, zero_masks = constraints.conflict_masks(count)
        for _ in range(24):
            bits = tuple(int(v) for v in rng.integers(0, 2, size=count))
            ones_mask = zeros_mask = 0
            masked = False
            for pos, value in enumerate(bits):
                if (ones_mask & one_masks[pos][value]) or (
                    zeros_mask & zero_masks[pos][value]
                ):
                    masked = True
                    break
                if value:
                    ones_mask |= 1 << pos
                else:
                    zeros_mask |= 1 << pos
            assert masked == constraints.violates(bits)

    @given(seed=st.integers(0, 100), count=st.integers(4, 10), split=st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_incremental_build_equals_full_build(self, seed, count, split):
        """Reusing prefix pair verdicts must reproduce the scratch analysis."""
        split = min(split, count)
        halfspaces = [(i, h) for i, h in enumerate(random_halfspaces(count, 3, seed))]
        rng = np.random.default_rng(seed + 9)
        lower = rng.uniform(0.0, 0.3, size=3)
        upper = lower + rng.uniform(0.2, 0.5, size=3)
        prefix = PairwiseConstraints.build(halfspaces[:split], lower, upper)
        incremental = PairwiseConstraints.build(halfspaces, lower, upper, reuse=prefix)
        scratch = PairwiseConstraints.build(halfspaces, lower, upper)
        assert incremental._forbidden == scratch._forbidden

    def test_reuse_rejected_on_id_mismatch(self):
        halfspaces = [(i, h) for i, h in enumerate(random_halfspaces(5, 3, 11))]
        lower, upper = np.zeros(3), np.full(3, 0.5)
        prefix = PairwiseConstraints.build(halfspaces[:3], lower, upper)
        reordered = [halfspaces[1], halfspaces[0]] + halfspaces[2:]
        incremental = PairwiseConstraints.build(reordered, lower, upper, reuse=prefix)
        scratch = PairwiseConstraints.build(reordered, lower, upper)
        assert incremental._forbidden == scratch._forbidden


class TestFrontierReuse:
    @given(seed=st.integers(0, 120), count=st.integers(4, 9), old=st.integers(2, 7))
    @settings(max_examples=30, deadline=None)
    def test_seeded_processor_matches_fresh_processor(self, seed, count, old):
        """A grown leaf re-enumerated from the frontier finds the same cells."""
        old = min(old, count - 1)
        halfspaces = [(i, h) for i, h in enumerate(random_halfspaces(count, 3, seed))]
        lower, upper = [0.0] * 3, [0.5] * 3
        previous = WithinLeafProcessor(lower, upper, halfspaces[:old],
                                       use_pairwise=True, pairwise_min_size=2,
                                       track_frontier=True)
        previous.minimal_cells(extra=old)  # populate the frontier for all weights
        seeded = WithinLeafProcessor(lower, upper, halfspaces,
                                     use_pairwise=True, pairwise_min_size=2,
                                     seed_state=previous.reuse_state())
        fresh = WithinLeafProcessor(lower, upper, halfspaces,
                                    use_pairwise=True, pairwise_min_size=2)
        for weight in range(count + 1):
            seeded_cells = {cell.bits for cell in seeded.cells_at_weight(weight)}
            fresh_cells = {cell.bits for cell in fresh.cells_at_weight(weight)}
            assert seeded_cells == fresh_cells

    def test_frontier_fallback_when_weight_missing(self):
        """Weights the old processor never enumerated fall back to full DFS."""
        halfspaces = [(i, h) for i, h in enumerate(random_halfspaces(7, 3, 21))]
        lower, upper = [0.0] * 3, [0.5] * 3
        previous = WithinLeafProcessor(lower, upper, halfspaces[:4],
                                       use_pairwise=True, pairwise_min_size=2,
                                       track_frontier=True)
        previous.cells_at_weight(0)  # frontier only has weight 0
        seeded = WithinLeafProcessor(lower, upper, halfspaces,
                                     use_pairwise=True, pairwise_min_size=2,
                                     seed_state=previous.reuse_state())
        fresh = WithinLeafProcessor(lower, upper, halfspaces,
                                    use_pairwise=True, pairwise_min_size=2)
        for weight in range(8):
            assert {c.bits for c in seeded.cells_at_weight(weight)} == {
                c.bits for c in fresh.cells_at_weight(weight)
            }

    def test_minimal_cells_unchanged_by_seeding(self):
        halfspaces = [(i, h) for i, h in enumerate(random_halfspaces(8, 4, 5))]
        lower, upper = [0.05] * 4, [0.45] * 4
        previous = WithinLeafProcessor(lower, upper, halfspaces[:5],
                                       use_pairwise=True, pairwise_min_size=2,
                                       track_frontier=True)
        previous.minimal_cells(extra=2)
        seeded = WithinLeafProcessor(lower, upper, halfspaces,
                                     use_pairwise=True, pairwise_min_size=2,
                                     seed_state=previous.reuse_state())
        fresh = WithinLeafProcessor(lower, upper, halfspaces,
                                    use_pairwise=True, pairwise_min_size=2)
        assert seeded.minimal_cells(extra=1)[0] == fresh.minimal_cells(extra=1)[0]
        assert {c.bits for c in seeded.minimal_cells(extra=1)[1]} == {
            c.bits for c in fresh.minimal_cells(extra=1)[1]
        }
