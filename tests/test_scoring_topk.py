"""Tests for the top-k substrate: scoring, ranking, top-k queries and onion layers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset, generate_independent, random_permissible_vector
from repro.topk import (
    convex_hull_layers,
    layer_of,
    order_of,
    rank_histogram,
    score,
    score_all,
    score_ratio,
    top_k,
    top_k_indices,
)


class TestScoring:
    def test_score_dot_product(self):
        assert score([0.5, 0.5], [0.6, 0.4]) == pytest.approx(0.5)

    def test_score_all_matches_manual(self):
        data = Dataset([[1.0, 0.0], [0.25, 0.75]])
        assert np.allclose(score_all(data, [0.4, 0.6]), [0.4, 0.55])

    def test_order_of_paper_example(self, paper_example):
        """Figure 1(a): p has order 4 w.r.t. q1=(0.7,0.3) and order 3 w.r.t. q2=(0.1,0.9)."""
        focal = paper_example.record(5)
        assert order_of(paper_example, focal, [0.7, 0.3]) == 4
        assert order_of(paper_example, focal, [0.1, 0.9]) == 3

    def test_order_of_top_record_is_one(self):
        data = Dataset([[0.9, 0.9], [0.1, 0.1]])
        assert order_of(data, 0, [0.5, 0.5]) == 1

    def test_order_ignores_self_and_ties(self):
        data = Dataset([[0.5, 0.5], [0.5, 0.5], [0.9, 0.9]])
        # The duplicate ties with the focal record and must not increase its order.
        assert order_of(data, 0, [0.5, 0.5]) == 2

    @given(seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_order_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        data = generate_independent(50, 3, seed=seed)
        q = random_permissible_vector(3, rng)
        focal = data.record(0)
        scores = data.records @ q
        expected = int((scores > float(focal @ q)).sum()) + 1
        assert order_of(data, 0, q) == expected


class TestTopK:
    def test_top_k_returns_best_records(self):
        data = Dataset([[0.9, 0.9], [0.1, 0.1], [0.5, 0.5]])
        result = top_k(data, [0.5, 0.5], 2)
        assert list(result.indices) == [0, 2]
        assert len(result) == 2

    def test_top_k_deterministic_tie_break(self):
        data = Dataset([[0.5, 0.5], [0.5, 0.5], [0.4, 0.4]])
        assert list(top_k_indices(data, [0.5, 0.5], 2)) == [0, 1]

    def test_top_k_k_larger_than_n(self):
        data = Dataset([[0.5, 0.5], [0.4, 0.4]])
        assert len(top_k(data, [0.5, 0.5], 10)) == 2

    def test_top_k_invalid_k(self):
        data = Dataset([[0.5, 0.5]])
        with pytest.raises(ValueError):
            top_k(data, [0.5, 0.5], 0)

    def test_scores_sorted_descending(self):
        data = generate_independent(30, 3, seed=7)
        result = top_k(data, [0.2, 0.3, 0.5], 10)
        assert np.all(np.diff(result.scores) <= 1e-12)

    def test_rank_histogram(self, paper_example):
        focal = paper_example.record(5)
        orders = rank_histogram(paper_example, focal, [[0.7, 0.3], [0.1, 0.9]])
        assert orders == [4, 3]


class TestScoreRatio:
    def test_ratio_at_least_one(self):
        data = generate_independent(100, 3, seed=1)
        assert score_ratio(data, [0.3, 0.3, 0.4]) >= 1.0

    def test_ratio_decreases_with_dimensionality(self):
        """The appendix's dimensionality-curse effect: the ratio shrinks as d grows."""
        rng = np.random.default_rng(0)
        low_d = score_ratio(generate_independent(2000, 2, seed=2),
                            random_permissible_vector(2, rng))
        high_d = score_ratio(generate_independent(2000, 12, seed=2),
                             random_permissible_vector(12, rng))
        assert low_d > high_d


class TestOnionLayers:
    def test_layers_partition_all_records(self):
        data = generate_independent(60, 2, seed=3)
        layers = convex_hull_layers(data)
        assigned = np.concatenate(layers)
        assert sorted(assigned.tolist()) == list(range(data.n))

    def test_first_layer_contains_best_record_for_any_query(self, rng):
        data = generate_independent(80, 2, seed=4)
        layers = convex_hull_layers(data, max_layers=1)
        first_layer = set(layers[0].tolist())
        for _ in range(10):
            q = random_permissible_vector(2, rng)
            best = int(np.argmax(data.records @ q))
            assert best in first_layer

    def test_layer_of_returns_positive_index(self):
        data = generate_independent(40, 2, seed=5)
        assert layer_of(data, 0) >= 1

    def test_tiny_dataset_single_layer(self):
        data = Dataset([[0.1, 0.2], [0.3, 0.4]])
        layers = convex_hull_layers(data)
        assert len(layers) == 1 and len(layers[0]) == 2
