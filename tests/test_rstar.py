"""Tests for the R*-tree: construction, range queries, aggregate counts, I/O accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CostCounters, generate_independent
from repro.errors import IndexError_
from repro.index import RStarTree


def brute_force_range(points: np.ndarray, lower, upper) -> set:
    lower = np.asarray(lower)
    upper = np.asarray(upper)
    mask = np.all(points >= lower, axis=1) & np.all(points <= upper, axis=1)
    return set(np.flatnonzero(mask).tolist())


class TestConstruction:
    @pytest.mark.parametrize("method", ["bulk", "insert"])
    def test_all_records_present(self, method):
        data = generate_independent(200, 3, seed=1)
        tree = RStarTree.build(data.records, method=method, max_entries=16)
        stored = sorted(entry.record_id for entry in tree.all_entries())
        assert stored == list(range(200))

    @pytest.mark.parametrize("method", ["bulk", "insert"])
    def test_node_capacity_respected(self, method):
        data = generate_independent(300, 2, seed=2)
        tree = RStarTree.build(data.records, method=method, max_entries=8)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            assert len(node.entries) <= 8
            if not node.is_leaf:
                stack.extend(node.entries)

    def test_str_leaf_packing_fill_and_mbr_consistency(self):
        """STR packs leaves near capacity; precomputed leaf MBRs/counts are exact."""
        data = generate_independent(1000, 4, seed=9)
        tree = RStarTree.build(data.records, max_entries=16)
        leaves = []
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves.append(node)
            else:
                stack.extend(node.entries)
        fills = [len(leaf.entries) for leaf in leaves]
        assert sum(fills) == 1000
        assert np.mean(fills) >= 0.5 * 16  # STR leaves are densely packed
        for leaf in leaves:
            points = np.vstack([entry.point for entry in leaf.entries])
            assert np.array_equal(leaf.mbr.lower, points.min(axis=0))
            assert np.array_equal(leaf.mbr.upper, points.max(axis=0))
            assert leaf.count == len(leaf.entries)

    def test_bulk_and_insert_trees_give_identical_bbs_skylines(self):
        """The STR-packed tree must not change what BBS computes (only how
        fast): the skyline of the bulk-loaded and the insertion-built tree
        over the same records must be the same record set."""
        from repro.skyline.bbs import IncrementalSkyline

        data = generate_independent(400, 3, seed=11)
        bulk = RStarTree.build(data.records, max_entries=10)
        inserted = RStarTree.build(data.records, method="insert", max_entries=10)
        bulk_skyline = {m.record_id for m in IncrementalSkyline(bulk).compute()}
        insert_skyline = {m.record_id for m in IncrementalSkyline(inserted).compute()}
        assert bulk_skyline == insert_skyline

    def test_mbrs_contain_children(self):
        data = generate_independent(400, 3, seed=3)
        tree = RStarTree.build(data.records, max_entries=12)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    assert node.mbr.contains_point(entry.point)
            else:
                for child in node.entries:
                    assert node.mbr.contains_box(child.mbr)
                    stack.append(child)

    def test_aggregate_counts_consistent(self):
        data = generate_independent(250, 3, seed=4)
        tree = RStarTree.build(data.records, max_entries=10)
        assert tree.root.count == 250
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if not node.is_leaf:
                assert node.count == sum(child.count for child in node.entries)
                stack.extend(node.entries)

    def test_invalid_inputs(self):
        with pytest.raises(IndexError_):
            RStarTree(0)
        with pytest.raises(IndexError_):
            RStarTree.build(np.zeros((0, 2)))
        with pytest.raises(IndexError_):
            RStarTree.build(np.zeros((5, 2)), method="mystery")
        with pytest.raises(IndexError_):
            RStarTree(2, max_entries=2)

    def test_insert_wrong_dimension(self):
        tree = RStarTree(3)
        with pytest.raises(IndexError_):
            tree.insert([0.1, 0.2], 0)

    def test_fanout_derived_from_page_size(self):
        small_pages = RStarTree(4, page_size=512)
        large_pages = RStarTree(4, page_size=8192)
        assert small_pages._leaf_capacity < large_pages._leaf_capacity


class TestQueries:
    @pytest.mark.parametrize("method", ["bulk", "insert"])
    def test_range_query_matches_brute_force(self, method):
        data = generate_independent(300, 3, seed=5)
        tree = RStarTree.build(data.records, method=method, max_entries=10)
        rng = np.random.default_rng(0)
        for _ in range(15):
            lower = rng.uniform(0.0, 0.6, size=3)
            upper = lower + rng.uniform(0.1, 0.4, size=3)
            expected = brute_force_range(data.records, lower, upper)
            got = {record_id for record_id, _ in tree.range_query(lower, upper)}
            assert got == expected

    def test_range_count_matches_query(self):
        data = generate_independent(400, 4, seed=6)
        tree = RStarTree.build(data.records, max_entries=12)
        rng = np.random.default_rng(1)
        for _ in range(15):
            lower = rng.uniform(0.0, 0.5, size=4)
            upper = lower + rng.uniform(0.1, 0.5, size=4)
            count = tree.range_count(lower, upper)
            assert count == len(tree.range_query(lower, upper))

    def test_range_count_uses_fewer_pages_than_query(self):
        """Aggregate counting must not read the leaves of fully covered subtrees."""
        data = generate_independent(2000, 2, seed=7)
        tree = RStarTree.build(data.records, max_entries=16)
        count_counters = CostCounters()
        query_counters = CostCounters()
        lower, upper = [0.1, 0.1], [0.9, 0.9]
        tree.range_count(lower, upper, count_counters)
        tree.range_query(lower, upper, query_counters)
        assert count_counters.page_reads < query_counters.page_reads

    def test_io_accounting(self):
        data = generate_independent(500, 3, seed=8)
        tree = RStarTree.build(data.records, max_entries=10)
        counters = CostCounters()
        tree.range_query(np.zeros(3), np.ones(3), counters)
        assert counters.page_reads == tree.node_count()
        assert counters.records_accessed == 500

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_whole_space_query_returns_everything(self, seed):
        data = generate_independent(120, 2, seed=seed)
        tree = RStarTree.build(data.records, max_entries=8)
        results = tree.range_query([0.0, 0.0], [1.0, 1.0])
        assert len(results) == 120


def walk_nodes(tree):
    stack = [tree.root]
    while stack:
        node = stack.pop()
        yield node
        if not node.is_leaf:
            stack.extend(node.entries)


def assert_structural_invariants(tree, max_entries):
    """MBR containment/tightness, fill bounds and aggregate counts."""
    for node in walk_nodes(tree):
        assert len(node.entries) <= max_entries
        if node is not tree.root:
            assert node.entries, "condensation must never leave an empty node"
            # Condensation eliminates under-full nodes unless they are the
            # sole child of their parent (which deletion cannot empty).
            assert (
                len(node.entries) >= tree._min_entries(node)
                or len(node.parent.entries) == 1
            )
        if node.is_leaf:
            points = np.vstack([entry.point for entry in node.entries]) \
                if node.entries else None
            if points is not None:
                assert np.array_equal(node.mbr.lower, points.min(axis=0))
                assert np.array_equal(node.mbr.upper, points.max(axis=0))
            assert node.count == len(node.entries)
        else:
            for child in node.entries:
                assert child.parent is node
                assert node.mbr.contains_box(child.mbr)
            assert node.count == sum(child.count for child in node.entries)


class TestDeletion:
    @pytest.mark.parametrize("method", ["bulk", "insert"])
    def test_delete_half_keeps_queries_exact(self, method):
        data = generate_independent(300, 3, seed=21)
        tree = RStarTree.build(data.records, method=method, max_entries=10)
        rng = np.random.default_rng(21)
        removed = rng.choice(300, size=150, replace=False)
        for record_id in removed:
            tree.delete(data.records[record_id], int(record_id))
        assert tree.size == 150
        assert_structural_invariants(tree, 10)
        remaining = sorted(set(range(300)) - set(removed.tolist()))
        assert sorted(e.record_id for e in tree.all_entries()) == remaining
        for _ in range(10):
            lower = rng.uniform(0.0, 0.6, size=3)
            upper = lower + rng.uniform(0.1, 0.4, size=3)
            expected = brute_force_range(data.records, lower, upper) - set(
                removed.tolist()
            )
            got = {record_id for record_id, _ in tree.range_query(lower, upper)}
            assert got == expected

    def test_delete_and_renumber_matches_bulk_build_on_remaining(self):
        """delete + renumber must be observationally equal to rebuilding."""
        from repro.skyline.bbs import IncrementalSkyline

        rng = np.random.default_rng(5)
        for seed in range(4):
            data = generate_independent(120, 3, seed=seed)
            tree = RStarTree.build(data.records, max_entries=8)
            victim = int(rng.integers(0, 120))
            tree.delete(data.records[victim], victim)
            tree.renumber_after_delete(victim)
            remaining = np.delete(data.records, victim, axis=0)
            rebuilt = RStarTree.build(remaining, max_entries=8)
            entries = sorted(
                (e.record_id, e.point.tobytes()) for e in tree.all_entries()
            )
            expected = sorted(
                (e.record_id, e.point.tobytes()) for e in rebuilt.all_entries()
            )
            assert entries == expected
            incremental = {m.record_id for m in IncrementalSkyline(tree).compute()}
            reference = {m.record_id for m in IncrementalSkyline(rebuilt).compute()}
            assert incremental == reference

    def test_delete_down_to_one_record_shrinks_root(self):
        data = generate_independent(90, 2, seed=13)
        tree = RStarTree.build(data.records, method="insert", max_entries=8)
        assert tree.height > 1
        for record_id in range(89):
            tree.delete(data.records[record_id], record_id)
        assert tree.size == 1
        assert tree.root.is_leaf and tree.height == 1
        (entry,) = list(tree.all_entries())
        assert entry.record_id == 89

    def test_delete_unknown_record_raises(self):
        data = generate_independent(50, 3, seed=14)
        tree = RStarTree.build(data.records, max_entries=8)
        with pytest.raises(IndexError_):
            tree.delete(data.records[7], 49)  # point/id mismatch
        with pytest.raises(IndexError_):
            tree.delete(np.full(3, 2.0), 7)  # point outside every MBR
        tree.delete(data.records[7], 7)
        with pytest.raises(IndexError_):
            tree.delete(data.records[7], 7)  # already gone
        assert tree.size == 49

    def test_delete_wrong_dimension(self):
        data = generate_independent(20, 3, seed=15)
        tree = RStarTree.build(data.records, max_entries=8)
        with pytest.raises(IndexError_):
            tree.delete([0.5, 0.5], 0)

    def test_delete_tracks_dirty_pages(self):
        data = generate_independent(200, 3, seed=16)
        tree = RStarTree.build(data.records, max_entries=8)
        tree.drain_dirty_pages()  # discard construction dirt
        tree.delete(data.records[3], 3)
        dirty = tree.drain_dirty_pages()
        assert tree.root.page_id in dirty  # ancestors are always included
        assert tree.drain_dirty_pages() == set()

    @given(seed=st.integers(0, 40))
    @settings(max_examples=10, deadline=None)
    def test_random_delete_sequences_preserve_invariants(self, seed):
        data = generate_independent(80, 2, seed=seed)
        tree = RStarTree.build(data.records, method="insert", max_entries=8)
        rng = np.random.default_rng(seed)
        removed = rng.choice(80, size=40, replace=False)
        for record_id in removed:
            tree.delete(data.records[record_id], int(record_id))
        assert_structural_invariants(tree, 8)
        survivors = brute_force_range(data.records, [0.0, 0.0], [1.0, 1.0]) - set(
            removed.tolist()
        )
        got = {record_id for record_id, _ in tree.range_query([0, 0], [1, 1])}
        assert got == survivors
