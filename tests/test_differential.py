"""Seeded randomized differential harness for the MaxRank engines.

Dimension-specialised fast paths are where query processors silently
diverge, so every specialised engine in this repo is pinned against two
independent references on a seeded random matrix:

* at ``d = 3``: the planar-sweep engine (``aa3d`` / ``engine="planar"``)
  versus the generic quad-tree path (``engine="generic"``) versus the
  brute-force arrangement oracle (:func:`repro.core.maxrank_exact_small`),
  over IND/ANTI/COR × τ ∈ {1, 4} × several seeds (42 cases), plus a τ = 0
  sanity slice;
* at ``d = 2``: the sorted-list arrangement (``aa2d``) versus the same
  brute-force oracle.

Three levels of agreement are asserted per case:

1. **k\\*** — identical across all engines and the oracle.
2. **Region sets** — *bit-identical* between the planar and the generic
   engine (same orders, same outscored sets, same representative points,
   byte for byte); *canonically identical* against the oracle (the
   quad-tree engines report cells fragmented by leaf, so fragments are
   collapsed by their ``(cell_order, outscored_by)`` identity, which
   uniquely determines an arrangement cell).
3. **Counters and semantics** — the engine-invariant cost counters (I/O,
   records accessed, half-space inserts/expansions, iterations, non-empty
   cells, leaf accounting) are equal between the two engines, and every
   reported region's representative query really gives the focal record
   the region's order (checked with the independent scoring layer).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CostCounters, generate, maxrank
from repro.obs import Tracer
from repro.skyline.dominance import partition_by_dominance
from repro.topk.scoring import order_of

#: Counters that must not depend on the within-leaf engine: everything
#: outside candidate discovery.  (Discovery-side counters — candidates
#: generated, cells examined, pairwise pruned, faces enumerated — legitimately
#: differ between the combinatorial generator and the planar sweep.)
ENGINE_INVARIANT_COUNTERS = (
    "page_reads",
    "distinct_page_reads",
    "records_accessed",
    "halfspaces_inserted",
    "halfspaces_expanded",
    "skyline_updates",
    "iterations",
    "nonempty_cells",
    "leaves_processed",
    "leaves_pruned",
)

#: Brute-force oracle budget: cases are selected so the focal record has at
#: most this many incomparable records.
_MAX_INCOMPARABLE = 12

#: Cardinalities tried per distribution when selecting a case.  The
#: incomparable-set size distribution differs wildly between them (almost
#: everything is incomparable on an anticorrelated shell; almost nothing on
#: a correlated one), so each distribution gets oracle-sized cases from a
#: different n range.
_CASE_CARDINALITIES = {
    "IND": (24, 20, 30),
    "ANTI": (12, 10, 14),
    "COR": (48, 36, 60),
}


def pick_focal(dataset, *, lo=4, hi=_MAX_INCOMPARABLE):
    """First focal index with an oracle-sized, non-trivial incomparable set."""
    for index in range(dataset.n):
        partition = partition_by_dominance(
            dataset, dataset.records[index], exclude_index=index
        )
        count = partition.incomparable.shape[0]
        if lo <= count <= hi:
            return index
    return None


def make_case(dist, d, seed):
    """A seeded ``(dataset, focal)`` pair with an oracle-sized focal record."""
    for n in _CASE_CARDINALITIES[dist]:
        dataset = generate(dist, n, d, seed=seed)
        focal = pick_focal(dataset)
        if focal is not None:
            return dataset, focal
    raise AssertionError(
        f"no oracle-sized focal record for {dist}/d={d}/seed={seed}"
    )


def region_fingerprint(result):
    """Bit-exact region identity: order, outscored set, representative bytes."""
    return sorted(
        (
            region.cell_order,
            region.outscored_by,
            region.representative_query().tobytes(),
        )
        for region in result.regions
    )


def canonical_cells(result):
    """Collapse leaf fragments: the set of (cell_order, outscored_by) pairs.

    An arrangement cell is uniquely identified by the records outscoring the
    focal inside it, so this canonicalisation makes quad-tree results (which
    report cells fragmented by leaf, with outscored ids in half-space-id
    order) comparable with whole-space oracles (record-id order).
    """
    return {
        (region.cell_order, tuple(sorted(region.outscored_by)))
        for region in result.regions
    }


def assert_rank_semantics(dataset, focal, result):
    """Every region's representative query must realise the region's order."""
    for region in result.regions:
        query = region.representative_query()
        assert order_of(dataset, focal, query) == region.order


CASES_3D = [
    (dist, tau, seed)
    for dist in ("IND", "ANTI", "COR")
    for tau in (1, 4)
    for seed in range(7)
]


class TestPlanarVsGenericVsBruteforce3D:
    """The full d = 3 differential matrix (42 seeded cases)."""

    @pytest.mark.parametrize("dist,tau,seed", CASES_3D)
    def test_differential_case(self, dist, tau, seed):
        dataset, focal = make_case(dist, 3, 100 + seed)

        planar_counters = CostCounters()
        planar = maxrank(
            dataset, focal, engine="planar", tau=tau, counters=planar_counters
        )
        generic_counters = CostCounters()
        generic = maxrank(
            dataset,
            focal,
            algorithm="aa",
            engine="generic",
            tau=tau,
            counters=generic_counters,
        )
        oracle = maxrank(dataset, focal, algorithm="exact", tau=tau)

        # 1. k* agreement everywhere.
        assert planar.algorithm == "AA-3D" and generic.algorithm == "AA"
        assert planar.k_star == generic.k_star == oracle.k_star
        assert planar.dominator_count == generic.dominator_count == oracle.dominator_count
        assert planar.minimum_cell_order == generic.minimum_cell_order

        # 2. Bit-identical regions between the two engines; canonical
        #    identity against the oracle.
        assert region_fingerprint(planar) == region_fingerprint(generic)
        assert canonical_cells(planar) == canonical_cells(oracle)

        # 3. Engine-invariant counters and independent rank semantics.
        planar_dump = planar_counters.as_dict()
        generic_dump = generic_counters.as_dict()
        for name in ENGINE_INVARIANT_COUNTERS:
            assert planar_dump[name] == generic_dump[name], name
        assert_rank_semantics(dataset, focal, planar)
        assert_rank_semantics(dataset, focal, oracle)

    @pytest.mark.parametrize("dist,seed", [
        ("IND", 0), ("ANTI", 1), ("COR", 2), ("IND", 3), ("ANTI", 4),
    ])
    def test_tau_zero_sanity(self, dist, seed):
        """Plain MaxRank slice: minimum-order cells only."""
        dataset, focal = make_case(dist, 3, 200 + seed)
        planar = maxrank(dataset, focal, engine="planar")
        generic = maxrank(dataset, focal, algorithm="aa", engine="generic")
        oracle = maxrank(dataset, focal, algorithm="exact")
        assert planar.k_star == generic.k_star == oracle.k_star
        assert region_fingerprint(planar) == region_fingerprint(generic)
        assert canonical_cells(planar) == canonical_cells(oracle)

    def test_planar_engine_is_deterministic(self):
        dataset, focal = make_case("IND", 3, 300)
        first = maxrank(dataset, focal, engine="planar", tau=2)
        second = maxrank(dataset, focal, engine="planar", tau=2)
        assert region_fingerprint(first) == region_fingerprint(second)


class TestWholeSpaceAndCostPolicy3D:
    """engine='planar-global' and split_policy='cost' over the same matrix.

    Both knobs change only *where* the arrangement work happens (one
    whole-space arrangement vs per-leaf ones; cost-driven vs static splits),
    so ``k*``, the dominator count and the canonical cell set must match the
    default engine and the brute-force oracle on every case — only the
    leaf-fragment granularity of the reported regions may differ.
    """

    @pytest.mark.parametrize("dist,tau,seed", CASES_3D)
    def test_planar_global_matches_planar_and_oracle(self, dist, tau, seed):
        dataset, focal = make_case(dist, 3, 100 + seed)
        planar = maxrank(dataset, focal, engine="planar", tau=tau)
        whole = maxrank(dataset, focal, engine="planar-global", tau=tau)
        oracle = maxrank(dataset, focal, algorithm="exact", tau=tau)
        assert whole.algorithm == "AA-3D/global"
        assert whole.k_star == planar.k_star == oracle.k_star
        assert whole.dominator_count == planar.dominator_count
        assert whole.minimum_cell_order == planar.minimum_cell_order
        assert canonical_cells(whole) == canonical_cells(oracle)
        assert_rank_semantics(dataset, focal, whole)

    @pytest.mark.parametrize("dist,tau,seed", CASES_3D)
    def test_cost_policy_matches_static_and_oracle(self, dist, tau, seed):
        dataset, focal = make_case(dist, 3, 100 + seed)
        static = maxrank(dataset, focal, engine="planar", tau=tau)
        cost = maxrank(
            dataset, focal, engine="planar", tau=tau, split_policy="cost"
        )
        oracle = maxrank(dataset, focal, algorithm="exact", tau=tau)
        assert cost.k_star == static.k_star == oracle.k_star
        assert cost.dominator_count == static.dominator_count
        assert canonical_cells(cost) == canonical_cells(oracle)
        assert_rank_semantics(dataset, focal, cost)


class TestTracedBitIdentity3D:
    """Tracing must be bit-identity neutral over the full 42-case matrix.

    The span side channels (``CostCounters._spans`` / ``_tracer``) ride
    outside the counter dicts, so an instrumented run must produce the
    same regions and the same non-time counters as an untraced one.
    Wall-clock timer accumulations (``time_*`` keys) legitimately differ
    between any two runs and are stripped before comparison.
    """

    @staticmethod
    def _strip_times(dump):
        return {k: v for k, v in dump.items() if not k.startswith("time_")}

    @pytest.mark.parametrize("dist,tau,seed", CASES_3D)
    def test_traced_run_is_bit_identical(self, dist, tau, seed):
        dataset, focal = make_case(dist, 3, 100 + seed)

        plain_counters = CostCounters()
        plain = maxrank(
            dataset, focal, engine="planar", tau=tau, counters=plain_counters
        )

        tracer = Tracer()
        traced_counters = CostCounters()
        traced_counters._tracer = tracer
        with tracer.span("request"):
            traced = maxrank(
                dataset, focal, engine="planar", tau=tau,
                counters=traced_counters,
            )
        traced_counters._tracer = None
        tracer.absorb(traced_counters.drain_spans())

        assert traced.k_star == plain.k_star
        assert traced.dominator_count == plain.dominator_count
        assert traced.minimum_cell_order == plain.minimum_cell_order
        assert region_fingerprint(traced) == region_fingerprint(plain)
        assert self._strip_times(traced_counters.as_dict()) == \
            self._strip_times(plain_counters.as_dict())

        records = tracer.records()
        assert records, "traced run recorded no spans"
        names = {record.name for record in records}
        assert "request" in names and "skyline" in names


class TestAa2dVsBruteforce2D:
    """The same harness pinning the d = 2 sorted-list arrangement."""

    @pytest.mark.parametrize("dist,tau,seed", [
        (dist, tau, seed)
        for dist in ("IND", "ANTI", "COR")
        for tau in (0, 1, 4)
        for seed in range(2)
    ])
    def test_aa2d_matches_bruteforce(self, dist, tau, seed):
        dataset, focal = make_case(dist, 2, 400 + seed)
        aa2d = maxrank(dataset, focal, algorithm="aa2d", tau=tau)
        oracle = maxrank(dataset, focal, algorithm="exact", tau=tau)
        assert aa2d.k_star == oracle.k_star
        assert canonical_cells(aa2d) == canonical_cells(oracle)
        assert_rank_semantics(dataset, focal, aa2d)
