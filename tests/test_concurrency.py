"""Clock- and thread-safety regressions for the serving stack.

Two bug classes pinned here:

* ``Deadline`` used to be built on ``time.time()``: an NTP step (or any
  wall-clock adjustment) while a query ran would grow or shrink its
  budget.  The regression tests simulate a wall-clock step and require the
  budget to be immune; the basis must be ``time.monotonic()``.
* The caches and the service façade are mutated from transport threads.
  The hammer tests drive them from many threads and assert *exact*
  bookkeeping — no lost LRU entries, no double-eviction, hit/miss totals
  that add up — not merely "no crash".
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import MaxRankService, generate
from repro.engine.deadline import Deadline
from repro.errors import AlgorithmError
from repro.service import QueryCache
from repro.service.core import result_fingerprint


class TestDeadlineMonotonic:
    """The deadline budget must not move with the wall clock."""

    def test_based_on_monotonic_clock(self):
        deadline = Deadline.after(60.0)
        # The expiry is an absolute point on the *monotonic* clock.
        assert deadline.expires_at == pytest.approx(
            time.monotonic() + 60.0, abs=1.0
        )

    def test_wall_clock_step_does_not_move_the_budget(self, monkeypatch):
        """Simulate an NTP step: time.time() jumps ±1h mid-query.

        The remaining budget and expiry decision must be unchanged — the
        failure mode of the old ``time.time()`` basis, where a backward
        step granted extra budget and a forward step expired queries that
        had barely started.
        """
        deadline = Deadline.after(30.0)
        before = deadline.remaining()

        real_time = time.time
        for step in (3600.0, -3600.0):
            monkeypatch.setattr(time, "time", lambda: real_time() + step)
            assert deadline.remaining() == pytest.approx(before, abs=0.5)
            assert not deadline.expired()
            deadline.check()  # must not raise either
            monkeypatch.setattr(time, "time", real_time)

    def test_monotonic_step_does_move_it(self, monkeypatch):
        """Sanity check of the test itself: the monotonic clock is the basis."""
        deadline = Deadline.after(30.0)
        real_monotonic = time.monotonic
        monkeypatch.setattr(time, "monotonic", lambda: real_monotonic() + 31.0)
        assert deadline.expired()

    def test_still_expires_by_sleeping(self):
        deadline = Deadline.after(0.02)
        time.sleep(0.03)
        assert deadline.expired()
        assert deadline.remaining() <= 0.0


class TestQueryCacheHammer:
    """Concurrent put/get with exact LRU bookkeeping."""

    THREADS = 8
    KEYS_PER_THREAD = 120
    CAPACITY = 64

    def _key(self, thread: int, i: int):
        # Disjoint per-thread key ranges: every put inserts a *new* key, so
        # each put either grows the cache or evicts exactly one entry.
        return ("idx", thread * 10_000 + i), 0, "auto", "auto", ()

    def test_no_lost_entries_no_double_eviction(self):
        cache = QueryCache(self.CAPACITY)
        errors = []
        barrier = threading.Barrier(self.THREADS)

        def worker(tid: int):
            try:
                barrier.wait()
                for i in range(self.KEYS_PER_THREAD):
                    key = self._key(tid, i)
                    cache.put(key, ("value", tid, i))
                    got = cache.get(key)  # may already be evicted by others
                    if got is not None and got != ("value", tid, i):
                        errors.append((tid, i, got))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        puts = self.THREADS * self.KEYS_PER_THREAD
        # Exact totals: the cache is full, every insert beyond capacity
        # evicted exactly one entry (no double-eviction, no lost entry),
        # and every get() was either a hit or a miss.
        assert len(cache) == self.CAPACITY
        assert cache.evictions == puts - self.CAPACITY
        assert cache.hits + cache.misses == puts

    def test_concurrent_get_totals_are_exact(self):
        cache = QueryCache(32)
        present = [self._key(0, i) for i in range(16)]
        absent = [self._key(1, i) for i in range(16)]
        for key in present:
            cache.put(key, key)
        rounds = 200
        barrier = threading.Barrier(4)

        def reader():
            barrier.wait()
            for _ in range(rounds):
                for key in present:
                    assert cache.get(key) == key
                for key in absent:
                    assert cache.get(key) is None

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.hits == 4 * rounds * len(present)
        assert cache.misses == 4 * rounds * len(absent)
        assert cache.evictions == 0 and len(cache) == 16


class TestServiceThreadSafety:
    """The façade's aggregates stay exact under concurrent queries."""

    def test_stats_add_up_under_concurrent_queries(self):
        dataset = generate("IND", 150, 3, seed=3)
        focals = [3, 17, 40, 99]
        threads_n, per_thread = 6, 8
        with MaxRankService(dataset) as service:
            references = {
                f: result_fingerprint(service.query(f, use_cache=False))
                for f in focals
            }
            mismatches = []
            barrier = threading.Barrier(threads_n)

            def worker(tid: int):
                barrier.wait()
                for i in range(per_thread):
                    focal = focals[(tid + i) % len(focals)]
                    result = service.query(focal)
                    if result_fingerprint(result) != references[focal]:
                        mismatches.append((tid, focal))

            workers = [
                threading.Thread(target=worker, args=(tid,))
                for tid in range(threads_n)
            ]
            for t in workers:
                t.start()
            for t in workers:
                t.join()

            assert not mismatches
            stats = service.stats()
            total = threads_n * per_thread + len(focals)  # + the references
            assert stats["queries_served"] == total
            # Every query either hit the cache or computed — nothing lost,
            # nothing counted twice (computes may exceed the unique count
            # when duplicates race past the cache probe; admission-level
            # single-flight, tested separately, removes those).
            assert stats["cache_hits"] + stats["queries_computed"] == total
            assert stats["queries_computed"] >= len(focals)

    def test_mutation_excludes_inflight_queries(self):
        """insert() waits out running queries and queries see a consistent
        dataset: post-mutation answers match a fresh service built on the
        mutated records."""
        dataset = generate("IND", 120, 3, seed=5)
        record = np.asarray([0.9, 0.8, 0.7])
        stop = threading.Event()
        failures = []

        with MaxRankService(dataset) as service:
            def churn():
                i = 0
                while not stop.is_set():
                    try:
                        service.query(5 + (i % 3), tau=1)
                    except Exception as exc:  # pragma: no cover
                        failures.append(exc)
                    i += 1

            workers = [threading.Thread(target=churn) for _ in range(4)]
            for t in workers:
                t.start()
            time.sleep(0.05)
            new_id = service.insert(record)
            stop.set()
            for t in workers:
                t.join()

            assert not failures
            assert new_id == dataset.n  # appended at the end
            service.cache.clear()
            after = service.query(5, tau=1)
            with MaxRankService(service.dataset) as fresh:
                assert result_fingerprint(after) == result_fingerprint(
                    fresh.query(5, tau=1)
                )

    def test_writer_is_not_starved_by_a_tight_reader_loop(self):
        """Writer preference: continuously overlapping readers (the shape of
        a cache-hit query loop on several transport threads) must not keep
        the reader count nonzero forever — a mutation has to get in."""
        dataset = generate("IND", 80, 3, seed=11)
        with MaxRankService(dataset) as service:
            gate = service._gate
            stop = threading.Event()

            def spin():
                while not stop.is_set():
                    with gate.read():
                        pass  # fast reader: release and immediately re-enter

            readers = [threading.Thread(target=spin) for _ in range(4)]
            for t in readers:
                t.start()
            try:
                time.sleep(0.05)  # let the reader loops overlap
                acquired = threading.Event()

                def write():
                    with gate.write():
                        acquired.set()

                writer = threading.Thread(target=write)
                writer.start()
                assert acquired.wait(timeout=5.0), "writer starved"
                writer.join()
            finally:
                stop.set()
                for t in readers:
                    t.join()

    def test_mutating_from_inside_a_query_is_rejected(self):
        """The reader-writer gate refuses re-entrant mutation (deadlock
        guard): a thread holding a read lease cannot take the write side."""
        dataset = generate("IND", 80, 3, seed=9)
        with MaxRankService(dataset) as service:
            gate = service._gate
            with gate.read():
                with pytest.raises(AlgorithmError, match="cannot mutate"):
                    with gate.write():
                        pass  # pragma: no cover
