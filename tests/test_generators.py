"""Tests for the IND / COR / ANTI synthetic data generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import generate, generate_anticorrelated, generate_correlated, generate_independent
from repro.errors import InvalidDatasetError


class TestShapes:
    @pytest.mark.parametrize("factory", [
        generate_independent, generate_correlated, generate_anticorrelated,
    ])
    def test_shape_and_range(self, factory):
        data = factory(500, 4, seed=1)
        assert data.n == 500
        assert data.d == 4
        assert data.records.min() >= 0.0
        assert data.records.max() <= 1.0

    @pytest.mark.parametrize("factory", [
        generate_independent, generate_correlated, generate_anticorrelated,
    ])
    def test_reproducible_with_seed(self, factory):
        a = factory(100, 3, seed=42)
        b = factory(100, 3, seed=42)
        assert np.array_equal(a.records, b.records)

    @pytest.mark.parametrize("factory", [
        generate_independent, generate_correlated, generate_anticorrelated,
    ])
    def test_different_seeds_differ(self, factory):
        a = factory(100, 3, seed=1)
        b = factory(100, 3, seed=2)
        assert not np.array_equal(a.records, b.records)

    def test_invalid_cardinality(self):
        with pytest.raises(InvalidDatasetError):
            generate_independent(0, 3)

    def test_invalid_dimensionality(self):
        with pytest.raises(InvalidDatasetError):
            generate_independent(10, 1)


class TestCorrelationStructure:
    """The distributions must show the correlation signs the paper relies on."""

    @staticmethod
    def _mean_pairwise_correlation(records: np.ndarray) -> float:
        corr = np.corrcoef(records, rowvar=False)
        d = corr.shape[0]
        off_diagonal = corr[~np.eye(d, dtype=bool)]
        return float(off_diagonal.mean())

    def test_independent_correlation_near_zero(self):
        data = generate_independent(4000, 4, seed=3)
        assert abs(self._mean_pairwise_correlation(data.records)) < 0.08

    def test_correlated_attributes_positively_correlated(self):
        data = generate_correlated(4000, 4, seed=3)
        assert self._mean_pairwise_correlation(data.records) > 0.5

    def test_anticorrelated_attributes_negatively_correlated(self):
        data = generate_anticorrelated(4000, 4, seed=3)
        assert self._mean_pairwise_correlation(data.records) < -0.1

    def test_anticorrelated_skyline_larger_than_correlated(self):
        """ANTI must have many more skyline records than COR (the standard benchmark fact)."""
        from repro.skyline import naive_skyline

        cor = generate_correlated(400, 3, seed=5)
        anti = generate_anticorrelated(400, 3, seed=5)
        assert len(naive_skyline(anti.records)) > 2 * len(naive_skyline(cor.records))


class TestDispatch:
    def test_generate_by_name(self):
        for name in ("IND", "COR", "ANTI", "ind", "cor", "anti"):
            data = generate(name, 50, 3, seed=0)
            assert data.n == 50

    def test_generate_unknown_name(self):
        with pytest.raises(InvalidDatasetError):
            generate("ZIPF", 50, 3)

    def test_dataset_names_describe_parameters(self):
        data = generate("IND", 50, 3, seed=0)
        assert "50" in data.name and "3" in data.name
