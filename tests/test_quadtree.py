"""Tests for the augmented quad-tree and the within-leaf processing module."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CostCounters
from repro.errors import GeometryError
from repro.geometry import BoxRelation, Halfspace, reduced_space_constraints
from repro.geometry.lp import find_interior_point
from repro.quadtree import AugmentedQuadTree, WithinLeafProcessor
from repro.quadtree.withinleaf import PairwiseConstraints


def random_halfspaces(count: int, dim: int, seed: int) -> list:
    rng = np.random.default_rng(seed)
    result = []
    for i in range(count):
        normal = rng.normal(size=dim)
        while np.allclose(normal, 0):
            normal = rng.normal(size=dim)
        result.append(Halfspace(normal, rng.uniform(-0.3, 0.6), record_id=i))
    return result


class TestQuadTreeStructure:
    def test_requires_dim_at_least_two(self):
        with pytest.raises(GeometryError):
            AugmentedQuadTree(1)

    def test_requires_sane_threshold(self):
        with pytest.raises(GeometryError):
            AugmentedQuadTree(2, split_threshold=1)

    def test_dimension_mismatch_rejected(self):
        tree = AugmentedQuadTree(2)
        with pytest.raises(GeometryError):
            tree.insert(Halfspace([1.0, 0.0, 0.0], 0.1))

    def test_insert_counts(self):
        counters = CostCounters()
        tree = AugmentedQuadTree(2, counters=counters)
        for h in random_halfspaces(5, 2, seed=1):
            tree.insert(h)
        assert len(tree) == 5
        assert counters.halfspaces_inserted == 5

    def test_split_triggered_by_threshold(self):
        tree = AugmentedQuadTree(2, split_threshold=3)
        for h in random_halfspaces(12, 2, seed=2):
            tree.insert(h)
        assert tree.leaf_count() > 1
        assert all(leaf.depth <= tree.max_depth for leaf in tree.leaves())

    def test_leaves_tile_the_box(self):
        """Leaf boxes must not overlap and must cover the permissible simplex."""
        tree = AugmentedQuadTree(2, split_threshold=3)
        for h in random_halfspaces(15, 2, seed=3):
            tree.insert(h)
        leaves = list(tree.leaves())
        rng = np.random.default_rng(0)
        for _ in range(200):
            point = rng.uniform(0, 1, size=2)
            if point.sum() >= 1.0:
                continue
            containing = [
                leaf for leaf in leaves
                if np.all(point >= leaf.lower) and np.all(point <= leaf.upper)
            ]
            assert len(containing) >= 1

    def test_replace_requires_identical_geometry(self):
        tree = AugmentedQuadTree(2)
        h = Halfspace([1.0, 0.2], 0.1, augmented=True)
        hid = tree.insert(h)
        tree.replace(hid, h.with_flags(augmented=False))
        assert not tree.halfspace(hid).augmented
        with pytest.raises(GeometryError):
            tree.replace(hid, Halfspace([0.5, 0.2], 0.1))

    def test_statistics_keys(self):
        tree = AugmentedQuadTree(3)
        for h in random_halfspaces(6, 3, seed=4):
            tree.insert(h)
        stats = tree.statistics()
        assert stats["halfspaces"] == 6
        assert stats["leaves"] >= 1


class TestConstructionValidation:
    """Impossible construction parameters fail fast with GeometryError."""

    @pytest.mark.parametrize("threshold", [True, 2.5, "10", 1, 0, -3])
    def test_bad_split_threshold_rejected(self, threshold):
        with pytest.raises(GeometryError):
            AugmentedQuadTree(2, split_threshold=threshold)

    @pytest.mark.parametrize("max_depth", [True, 1.5, "2", -1])
    def test_bad_max_depth_rejected(self, max_depth):
        with pytest.raises(GeometryError):
            AugmentedQuadTree(2, max_depth=max_depth)

    def test_unknown_split_policy_rejected(self):
        with pytest.raises(GeometryError):
            AugmentedQuadTree(2, split_policy="greedy")

    def test_minimum_threshold_terminates(self):
        """split_threshold=2 is the tightest legal value: splits cascade hard
        but must still terminate at max_depth with exact sets."""
        tree = AugmentedQuadTree(2, split_threshold=2, max_depth=4)
        tree.insert_bulk(random_halfspaces(25, 2, seed=6))
        assert len(tree) == 25
        assert tree.leaf_count() > 1
        assert all(leaf.depth <= 4 for leaf in tree.leaves())

    def test_max_depth_zero_keeps_one_fat_leaf(self):
        """max_depth=0 is legal (the planar-global mode relies on it): the
        root never splits and holds every overlapping half-space."""
        halfspaces = random_halfspaces(30, 2, seed=7)
        tree = AugmentedQuadTree(2, max_depth=0)
        tree.insert_bulk(halfspaces)
        assert tree.leaf_count() == 1
        assert tree.root.is_leaf
        covered = set(tree.root.containment) | set(tree.root.partial)
        expected = {
            hid for hid, h in tree.halfspaces.items()
            if h.relation_to_box(tree.root.lower, tree.root.upper)
            is not BoxRelation.DISJOINT
        }
        assert covered == expected


class TestQuadTreeBookkeeping:
    @given(seed=st.integers(0, 60), count=st.integers(1, 18))
    @settings(max_examples=25, deadline=None)
    def test_containment_and_partial_sets_are_exact(self, seed, count):
        """For every leaf, F_l must contain exactly the half-spaces that fully
        contain the leaf box, and P_l exactly those that straddle it."""
        tree = AugmentedQuadTree(2, split_threshold=4)
        halfspaces = random_halfspaces(count, 2, seed=seed)
        for h in halfspaces:
            tree.insert(h)
        for leaf in tree.leaves():
            full = leaf.full_ids()
            partial = set(leaf.partial)
            for hid, h in tree.halfspaces.items():
                relation = h.relation_to_box(leaf.lower, leaf.upper)
                if relation is BoxRelation.CONTAINS:
                    assert hid in full
                    assert hid not in partial
                elif relation is BoxRelation.OVERLAPS:
                    assert hid in partial
                    assert hid not in full
                else:
                    assert hid not in full and hid not in partial

    @given(seed=st.integers(0, 60))
    @settings(max_examples=20, deadline=None)
    def test_full_count_matches_full_ids(self, seed):
        tree = AugmentedQuadTree(3, split_threshold=4)
        for h in random_halfspaces(10, 3, seed=seed):
            tree.insert(h)
        for leaf, count in tree.leaves_by_containment():
            assert count == len(leaf.full_ids())
            assert count == leaf.full_count()

    def test_leaves_sorted_by_containment(self):
        tree = AugmentedQuadTree(2, split_threshold=3)
        for h in random_halfspaces(14, 2, seed=9):
            tree.insert(h)
        counts = [count for _, count in tree.leaves_by_containment()]
        assert counts == sorted(counts)


class TestWithinLeaf:
    def test_empty_partial_set_returns_whole_leaf(self):
        processor = WithinLeafProcessor([0.0, 0.0], [0.4, 0.4], [])
        minimum, cells = processor.minimal_cells()
        assert minimum == 0
        assert len(cells) == 1

    def test_single_halfspace_minimum_zero(self):
        h = Halfspace([1.0, 0.0], 0.2)
        processor = WithinLeafProcessor([0.0, 0.0], [0.4, 0.4], [(0, h)])
        minimum, cells = processor.minimal_cells()
        assert minimum == 0
        assert all(cell.p_order == 0 for cell in cells)

    def test_halfspace_covering_leaf_forces_order_one(self):
        # Inside the leaf [0.1,0.3]^2 the half-space x + y > 0.05 always holds,
        # but it is registered as partial; the minimum p-order is then 1.
        h = Halfspace([1.0, 1.0], 0.05)
        processor = WithinLeafProcessor([0.1, 0.1], [0.3, 0.3], [(0, h)])
        minimum, cells = processor.minimal_cells()
        assert minimum == 1

    def test_cells_report_inside_ids(self):
        a = Halfspace([1.0, 0.0], -1.0)    # contains everything
        b = Halfspace([0.0, 1.0], 0.2)
        processor = WithinLeafProcessor([0.0, 0.0], [0.4, 0.4], [(7, a), (9, b)])
        minimum, cells = processor.minimal_cells()
        assert minimum == 1
        assert all(cell.inside_ids == (7,) for cell in cells)

    def test_max_weight_truncates_search(self):
        a = Halfspace([1.0, 0.0], -1.0)
        b = Halfspace([0.0, 1.0], -1.0)
        processor = WithinLeafProcessor([0.0, 0.0], [0.4, 0.4], [(0, a), (1, b)])
        minimum, cells = processor.minimal_cells(max_weight=1)
        assert minimum is None and cells == []

    def test_extra_collects_higher_orders(self):
        a = Halfspace([1.0, 0.0], 0.2)
        b = Halfspace([0.0, 1.0], 0.2)
        processor = WithinLeafProcessor([0.0, 0.0], [0.4, 0.4], [(0, a), (1, b)])
        _, tight = processor.minimal_cells(extra=0)
        _, loose = processor.minimal_cells(extra=2)
        assert len(loose) > len(tight)

    @given(seed=st.integers(0, 80), count=st.integers(1, 7))
    @settings(max_examples=25, deadline=None)
    def test_lp_and_clipping_paths_agree_in_2d(self, seed, count):
        """The exact polygon-clipping fast path must agree with the LP path."""
        halfspaces = [(i, h) for i, h in enumerate(random_halfspaces(count, 2, seed=seed))]
        lower, upper = [0.0, 0.0], [0.5, 0.5]
        clip = WithinLeafProcessor(lower, upper, halfspaces)
        min_clip, cells_clip = clip.minimal_cells()
        # Force the LP path by evaluating feasibility directly per bit-string.
        base = reduced_space_constraints(2)
        for cell in cells_clip:
            constraints = list(base)
            for (_, h), bit in zip(halfspaces, cell.bits):
                constraints.append(h if bit else h.complement())
            assert find_interior_point(constraints, lower, upper).feasible

    @given(seed=st.integers(0, 50), count=st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_3d_witness_points_match_bits(self, seed, count):
        halfspaces = [(i, h) for i, h in enumerate(random_halfspaces(count, 3, seed=seed))]
        processor = WithinLeafProcessor([0.0] * 3, [0.5] * 3, halfspaces)
        _, cells = processor.minimal_cells(extra=1)
        for cell in cells:
            for (_, h), bit in zip(halfspaces, cell.bits):
                assert h.contains_point(cell.interior_point) == bool(bit)


class TestPairwiseConstraints:
    def test_disjoint_pair_forbids_both_ones(self):
        a = Halfspace([1.0, 0.0], 0.8)     # x > 0.8
        b = Halfspace([-1.0, 0.0], -0.2)   # x < 0.2
        constraints = PairwiseConstraints.build(
            [(0, a), (1, b)], np.zeros(2), np.ones(2), [])
        assert constraints.violates([1, 1])
        assert not constraints.violates([0, 1])

    def test_covering_pair_forbids_both_zeros(self):
        a = Halfspace([1.0, 0.0], 0.3)     # x > 0.3
        b = Halfspace([-1.0, 0.0], -0.7)   # x < 0.7
        constraints = PairwiseConstraints.build(
            [(0, a), (1, b)], np.zeros(2), np.ones(2), [])
        assert constraints.violates([0, 0])
        assert not constraints.violates([1, 1])

    def test_pruning_does_not_change_results(self):
        halfspaces = [(i, h) for i, h in enumerate(random_halfspaces(6, 2, seed=13))]
        with_pruning = WithinLeafProcessor(
            [0.0, 0.0], [0.6, 0.6], halfspaces, use_pairwise=True, pairwise_min_size=2)
        without_pruning = WithinLeafProcessor(
            [0.0, 0.0], [0.6, 0.6], halfspaces, use_pairwise=False)
        min_a, cells_a = with_pruning.minimal_cells(extra=1)
        min_b, cells_b = without_pruning.minimal_cells(extra=1)
        assert min_a == min_b
        assert {cell.bits for cell in cells_a} == {cell.bits for cell in cells_b}
