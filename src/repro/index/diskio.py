"""Simulated disk-page layer for the spatial index.

The paper's experiments store data and index on disk with a 4 KB page size
and report I/O cost as the number of page accesses.  This reproduction keeps
everything in memory but preserves the metric: every R*-tree node is assigned
one simulated page, and reading a node during a query charges one page access
to the query's :class:`~repro.stats.CostCounters`.

:class:`DiskSimulator` also derives node fan-out from the page size and entry
size, so trees built here have the same branching factors a disk-resident
R*-tree would have — which is what makes the simulated I/O counts comparable
in shape to the paper's.

The module also owns **snapshot persistence** (:func:`save_snapshot` /
:func:`load_snapshot`): a versioned on-disk format for a built R*-tree plus
its dataset record matrix, so a long-lived query service
(:mod:`repro.service`) can cold-start from a file instead of re-running the
STR bulk load.  The format stores the exact node structure (levels, page
ids, child layout, leaf record ids), so a loaded tree is node-for-node
identical to the saved one — same pages, same MBRs, same aggregate counts,
and therefore byte-identical query results and simulated I/O charges.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ..errors import SnapshotError
from ..stats import CostCounters
from ..testing import faults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (rstar imports us)
    from .rstar import RStarTree

__all__ = [
    "DiskSimulator",
    "DEFAULT_PAGE_SIZE",
    "SnapshotPayload",
    "save_snapshot",
    "load_snapshot",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
]

#: Default disk page size, matching the paper's experimental setup.
DEFAULT_PAGE_SIZE = 4096

#: Bytes per coordinate (double precision) and per identifier/pointer.
_COORD_BYTES = 8
_POINTER_BYTES = 4


@dataclass
class DiskSimulator:
    """Page-size bookkeeping and access counting.

    Parameters
    ----------
    page_size:
        Simulated page size in bytes (default 4096, as in the paper).
    """

    page_size: int = DEFAULT_PAGE_SIZE
    _next_page_id: int = field(default=0, repr=False)
    total_reads: int = field(default=0, repr=False)

    def allocate_page(self) -> int:
        """Allocate a fresh page id for a newly created node."""
        page_id = self._next_page_id
        self._next_page_id += 1
        return page_id

    @property
    def pages_allocated(self) -> int:
        """Number of pages allocated so far (index size in pages)."""
        return self._next_page_id

    def leaf_capacity(self, dim: int) -> int:
        """Maximum number of point entries per leaf page.

        A leaf entry stores one ``dim``-dimensional point plus a record id.
        """
        entry_bytes = dim * _COORD_BYTES + _POINTER_BYTES
        return max(4, self.page_size // entry_bytes)

    def internal_capacity(self, dim: int) -> int:
        """Maximum number of child entries per internal page.

        An internal entry stores a ``dim``-dimensional MBR (two corners), a
        child pointer and the aggregate record count used by the aggregate
        R*-tree optimisation.
        """
        entry_bytes = 2 * dim * _COORD_BYTES + 2 * _POINTER_BYTES
        return max(4, self.page_size // entry_bytes)

    def read_page(self, page_id: int, counters: Optional[CostCounters] = None) -> None:
        """Charge one page access (optionally to a per-query counter)."""
        self.total_reads += 1
        if counters is not None:
            counters.count_page_read(page_id)


# --------------------------------------------------------------------------
# Snapshot persistence
# --------------------------------------------------------------------------

#: 8-byte magic prefix of every snapshot file.
SNAPSHOT_MAGIC = b"RPROSNAP"
#: Current snapshot format version.  Bump on any layout change; readers
#: refuse other versions with a clear error instead of mis-parsing.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class SnapshotPayload:
    """What :func:`load_snapshot` returns.

    Attributes
    ----------
    tree:
        The reconstructed :class:`~repro.index.rstar.RStarTree` —
        node-for-node identical to the saved one (levels, page ids, entry
        order, MBRs, aggregate counts, disk-simulator allocation state).
    records:
        The ``(n, d)`` float64 record matrix the tree indexes (leaf entry
        record ids are row indices into it).
    metadata:
        The caller-supplied metadata dictionary saved alongside (e.g. the
        dataset name and attribute names), ``{}`` when none was given.
    """

    tree: "RStarTree"
    records: np.ndarray
    metadata: Dict[str, object]


def _write_array(handle, array: np.ndarray) -> None:
    np.lib.format.write_array(handle, np.ascontiguousarray(array), allow_pickle=False)


def _read_array(handle) -> np.ndarray:
    return np.lib.format.read_array(handle, allow_pickle=False)


def save_snapshot(
    path: str | Path,
    tree: "RStarTree",
    records: np.ndarray,
    *,
    metadata: Optional[Dict[str, object]] = None,
) -> None:
    """Persist a built R*-tree and its record matrix to ``path``.

    The layout is: the 8-byte magic, a little-endian ``uint32`` format
    version, a length-prefixed JSON header (geometry, disk state, a CRC-32
    of the record bytes, caller metadata), then five ``.npy``-encoded
    arrays — the records, the preorder node levels / page ids / child
    counts, and the concatenated leaf record ids.  Everything needed to
    rebuild the tree bit-identically is structural; MBRs and aggregate
    counts are *not* stored because they are recomputed lazily to the same
    values (exact min/max/sum reductions over the same floats).

    The write is *crash-safe*: the payload is written to a temp file in the
    target directory, fsynced, and atomically renamed into place
    (``os.replace``), so a crash mid-save can never leave a torn snapshot —
    the previous file (if any) survives intact.

    Raises
    ------
    SnapshotError
        When the tree's leaf entries are not rows of ``records`` (the
        snapshot would not round-trip) or the file cannot be written.
    """
    matrix = np.ascontiguousarray(np.asarray(records, dtype=float))
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise SnapshotError(
            f"records must form a non-empty (n, d) matrix, got shape {matrix.shape}"
        )
    if matrix.shape[1] != tree.dim:
        raise SnapshotError(
            f"record matrix is {matrix.shape[1]}-dimensional but the tree "
            f"indexes {tree.dim} dimensions"
        )

    levels: List[int] = []
    pages: List[int] = []
    child_counts: List[int] = []
    leaf_ids: List[int] = []

    def visit(node) -> None:
        levels.append(node.level)
        pages.append(node.page_id)
        child_counts.append(len(node.entries))
        if node.is_leaf:
            for entry in node.entries:
                record_id = entry.record_id
                if not 0 <= record_id < matrix.shape[0] or not np.array_equal(
                    matrix[record_id], entry.point
                ):
                    raise SnapshotError(
                        f"leaf entry {record_id} is not a row of the record "
                        f"matrix; only trees built over the matrix (record "
                        f"ids = row indices) can be snapshotted"
                    )
                leaf_ids.append(record_id)
        else:
            for child in node.entries:
                visit(child)

    visit(tree.root)

    level_arr = np.asarray(levels, dtype=np.int32)
    page_arr = np.asarray(pages, dtype=np.int64)
    count_arr = np.asarray(child_counts, dtype=np.int32)
    leaf_arr = np.asarray(leaf_ids, dtype=np.int64)
    structure_crc = zlib.crc32(
        level_arr.tobytes() + page_arr.tobytes() + count_arr.tobytes() + leaf_arr.tobytes()
    )

    header = {
        "dim": tree.dim,
        "size": tree.size,
        "page_size": tree.disk.page_size,
        "next_page_id": tree.disk.pages_allocated,
        "leaf_capacity": tree._leaf_capacity,
        "internal_capacity": tree._internal_capacity,
        "node_count": len(levels),
        "entry_count": len(leaf_ids),
        "records_shape": list(matrix.shape),
        "records_crc32": zlib.crc32(matrix.tobytes()),
        "structure_crc32": structure_crc,
        "metadata": metadata or {},
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")

    # Crash-safe write: the payload goes to a sibling temp file, is fsynced,
    # and only then atomically renamed over the target.  A crash (or an
    # injected failure) at any point leaves either the old snapshot or no
    # snapshot — never a torn file that fails its own CRC on the next load.
    target = Path(path)
    tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
    try:
        with tmp.open("wb") as handle:
            handle.write(SNAPSHOT_MAGIC)
            handle.write(struct.pack("<I", SNAPSHOT_VERSION))
            handle.write(struct.pack("<I", len(header_bytes)))
            handle.write(header_bytes)
            _write_array(handle, matrix)
            _write_array(handle, level_arr)
            _write_array(handle, page_arr)
            _write_array(handle, count_arr)
            _write_array(handle, leaf_arr)
            handle.flush()
            os.fsync(handle.fileno())
        faults.maybe_fail_replace(target)  # chaos-test hook, no-op otherwise
        os.replace(tmp, target)
    except OSError as exc:
        raise SnapshotError(f"cannot write snapshot to {target}: {exc}") from exc
    finally:
        tmp.unlink(missing_ok=True)
    faults.maybe_flip_snapshot_byte(target)  # chaos-test hook, no-op otherwise


def load_snapshot(path: str | Path) -> SnapshotPayload:
    """Load a snapshot written by :func:`save_snapshot`.

    Returns the reconstructed tree, the record matrix and the saved
    metadata.  The tree is node-for-node identical to the saved one; in
    particular its simulated-disk allocation state is restored, so page-read
    accounting continues exactly where the original tree's would.

    Raises
    ------
    SnapshotError
        For a missing/unreadable file, wrong magic, unsupported version,
        truncated payload, corrupted arrays, or a checksum mismatch — never
        a partially constructed tree.
    """
    from .rstar import MIN_FILL_FRACTION, RStarTree  # local: rstar imports us

    source = Path(path)
    try:
        handle = source.open("rb")
    except OSError as exc:
        raise SnapshotError(f"cannot open snapshot {source}: {exc}") from exc

    with handle:
        magic = handle.read(len(SNAPSHOT_MAGIC))
        if magic != SNAPSHOT_MAGIC:
            raise SnapshotError(
                f"{source} is not a repro snapshot (bad magic {magic!r})"
            )
        version_bytes = handle.read(4)
        if len(version_bytes) != 4:
            raise SnapshotError(f"{source} is truncated (no version field)")
        (version,) = struct.unpack("<I", version_bytes)
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{source} uses snapshot format version {version}; this "
                f"build reads version {SNAPSHOT_VERSION} — rebuild the "
                f"snapshot with `python -m repro.service build`"
            )
        try:
            (header_len,) = struct.unpack("<I", handle.read(4))
            header = json.loads(handle.read(header_len).decode("utf-8"))
            matrix = _read_array(handle)
            levels = _read_array(handle)
            pages = _read_array(handle)
            child_counts = _read_array(handle)
            leaf_ids = _read_array(handle)
        except (ValueError, KeyError, EOFError, OSError, struct.error) as exc:
            raise SnapshotError(f"{source} is truncated or corrupted: {exc}") from exc

    try:
        dim = int(header["dim"])
        node_count = int(header["node_count"])
        entry_count = int(header["entry_count"])
        expected_shape = tuple(header["records_shape"])
        expected_crc = int(header["records_crc32"])
        page_size = int(header["page_size"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"{source} has a malformed header: {exc}") from exc

    matrix = np.ascontiguousarray(np.asarray(matrix, dtype=float))
    if matrix.shape != expected_shape or matrix.ndim != 2:
        raise SnapshotError(
            f"{source}: record matrix shape {matrix.shape} does not match "
            f"the header ({expected_shape})"
        )
    if zlib.crc32(matrix.tobytes()) != expected_crc:
        raise SnapshotError(
            f"{source}: record matrix checksum mismatch — the snapshot is "
            f"corrupted"
        )
    structure_crc = zlib.crc32(
        np.ascontiguousarray(levels, dtype=np.int32).tobytes()
        + np.ascontiguousarray(pages, dtype=np.int64).tobytes()
        + np.ascontiguousarray(child_counts, dtype=np.int32).tobytes()
        + np.ascontiguousarray(leaf_ids, dtype=np.int64).tobytes()
    )
    if structure_crc != int(header.get("structure_crc32", -1)):
        raise SnapshotError(
            f"{source}: node-table checksum mismatch — the snapshot is corrupted"
        )
    if (
        levels.shape[0] != node_count
        or pages.shape[0] != node_count
        or child_counts.shape[0] != node_count
        or leaf_ids.shape[0] != entry_count
        or node_count == 0
    ):
        raise SnapshotError(
            f"{source}: node tables are inconsistent with the header"
        )
    if entry_count and (leaf_ids.min() < 0 or leaf_ids.max() >= matrix.shape[0]):
        raise SnapshotError(
            f"{source}: leaf record ids fall outside the record matrix"
        )

    from .node import LeafEntry, RStarNode  # deferred with RStarTree

    tree = RStarTree(dim, page_size=page_size)
    tree._leaf_capacity = int(header["leaf_capacity"])
    tree._internal_capacity = int(header["internal_capacity"])
    tree._min_leaf = max(2, int(MIN_FILL_FRACTION * tree._leaf_capacity))
    tree._min_internal = max(2, int(MIN_FILL_FRACTION * tree._internal_capacity))
    tree.size = int(header["size"])
    tree.disk = DiskSimulator(page_size=page_size)
    tree.disk._next_page_id = int(header["next_page_id"])

    cursor = {"node": 0, "entry": 0}

    def build() -> RStarNode:
        index = cursor["node"]
        if index >= node_count:
            raise SnapshotError(f"{source}: node tables end mid-structure")
        cursor["node"] = index + 1
        node = RStarNode(level=int(levels[index]), page_id=int(pages[index]))
        count = int(child_counts[index])
        if node.is_leaf:
            start = cursor["entry"]
            if start + count > entry_count:
                raise SnapshotError(f"{source}: leaf entry table is truncated")
            cursor["entry"] = start + count
            node.replace_entries(
                [LeafEntry(int(rid), matrix[int(rid)]) for rid in leaf_ids[start:start + count]]
            )
        else:
            children = []
            for _ in range(count):
                children.append(build())
            node.replace_entries(children)
        return node

    try:
        tree.root = build()
    except RecursionError as exc:  # pragma: no cover - absurd heights only
        raise SnapshotError(f"{source}: node structure is cyclic or malformed") from exc
    if cursor["node"] != node_count or cursor["entry"] != entry_count:
        raise SnapshotError(
            f"{source}: node tables describe more nodes/entries than the "
            f"tree structure consumes"
        )
    metadata = header.get("metadata") or {}
    if not isinstance(metadata, dict):
        raise SnapshotError(f"{source}: snapshot metadata must be a mapping")
    return SnapshotPayload(tree=tree, records=matrix, metadata=metadata)
