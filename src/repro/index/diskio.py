"""Simulated disk-page layer for the spatial index.

The paper's experiments store data and index on disk with a 4 KB page size
and report I/O cost as the number of page accesses.  This reproduction keeps
everything in memory but preserves the metric: every R*-tree node is assigned
one simulated page, and reading a node during a query charges one page access
to the query's :class:`~repro.stats.CostCounters`.

:class:`DiskSimulator` also derives node fan-out from the page size and entry
size, so trees built here have the same branching factors a disk-resident
R*-tree would have — which is what makes the simulated I/O counts comparable
in shape to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..stats import CostCounters

__all__ = ["DiskSimulator", "DEFAULT_PAGE_SIZE"]

#: Default disk page size, matching the paper's experimental setup.
DEFAULT_PAGE_SIZE = 4096

#: Bytes per coordinate (double precision) and per identifier/pointer.
_COORD_BYTES = 8
_POINTER_BYTES = 4


@dataclass
class DiskSimulator:
    """Page-size bookkeeping and access counting.

    Parameters
    ----------
    page_size:
        Simulated page size in bytes (default 4096, as in the paper).
    """

    page_size: int = DEFAULT_PAGE_SIZE
    _next_page_id: int = field(default=0, repr=False)
    total_reads: int = field(default=0, repr=False)

    def allocate_page(self) -> int:
        """Allocate a fresh page id for a newly created node."""
        page_id = self._next_page_id
        self._next_page_id += 1
        return page_id

    @property
    def pages_allocated(self) -> int:
        """Number of pages allocated so far (index size in pages)."""
        return self._next_page_id

    def leaf_capacity(self, dim: int) -> int:
        """Maximum number of point entries per leaf page.

        A leaf entry stores one ``dim``-dimensional point plus a record id.
        """
        entry_bytes = dim * _COORD_BYTES + _POINTER_BYTES
        return max(4, self.page_size // entry_bytes)

    def internal_capacity(self, dim: int) -> int:
        """Maximum number of child entries per internal page.

        An internal entry stores a ``dim``-dimensional MBR (two corners), a
        child pointer and the aggregate record count used by the aggregate
        R*-tree optimisation.
        """
        entry_bytes = 2 * dim * _COORD_BYTES + 2 * _POINTER_BYTES
        return max(4, self.page_size // entry_bytes)

    def read_page(self, page_id: int, counters: Optional[CostCounters] = None) -> None:
        """Charge one page access (optionally to a per-query counter)."""
        self.total_reads += 1
        if counters is not None:
            counters.count_page_read(page_id)
