"""Nodes and entries of the R*-tree.

The tree follows the classic two-level entry structure:

* a **leaf node** stores :class:`LeafEntry` objects — one per data record —
  holding the record id and its point coordinates;
* an **internal node** stores child :class:`RStarNode` objects directly; the
  child's MBR and aggregate record count play the role of the internal entry.

Every node carries a simulated disk-page id (assigned by
:class:`~repro.index.diskio.DiskSimulator`) and an aggregate ``count`` of the
records stored in its subtree, which turns the structure into the *aggregate
R*-tree* the paper uses to count dominators without visiting leaf pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from ..errors import IndexError_
from .mbr import MBR

__all__ = ["LeafEntry", "RStarNode"]


@dataclass(frozen=True)
class LeafEntry:
    """A data record stored in a leaf: ``(record_id, point)``."""

    record_id: int
    point: np.ndarray

    def __init__(self, record_id: int, point: np.ndarray) -> None:
        object.__setattr__(self, "record_id", int(record_id))
        p = np.asarray(point, dtype=float).ravel().copy()
        p.setflags(write=False)
        object.__setattr__(self, "point", p)

    @property
    def mbr(self) -> MBR:
        """Degenerate MBR of the stored point."""
        return MBR.from_point(self.point)

    @property
    def count(self) -> int:
        """A leaf entry always represents exactly one record."""
        return 1


class RStarNode:
    """One node (page) of the R*-tree."""

    __slots__ = ("level", "entries", "parent", "page_id", "_mbr", "_count")

    def __init__(self, level: int, page_id: int) -> None:
        self.level = int(level)          #: 0 for leaves, >0 for internal nodes
        self.page_id = int(page_id)      #: simulated disk page id
        self.entries: List[Union[LeafEntry, "RStarNode"]] = []
        self.parent: Optional["RStarNode"] = None
        self._mbr: Optional[MBR] = None
        self._count: Optional[int] = None

    # --------------------------------------------------------------- queries
    @property
    def is_leaf(self) -> bool:
        """True for level-0 nodes, which store data records."""
        return self.level == 0

    @property
    def mbr(self) -> MBR:
        """Minimum bounding rectangle of everything stored below this node."""
        if self._mbr is None:
            if not self.entries:
                raise IndexError_("an empty node has no MBR")
            self._mbr = MBR.union_of([entry.mbr for entry in self.entries])
        return self._mbr

    @property
    def count(self) -> int:
        """Aggregate number of data records in the subtree rooted here."""
        if self._count is None:
            self._count = sum(entry.count for entry in self.entries)
        return self._count

    # ------------------------------------------------------------- mutation
    def add(self, entry: Union[LeafEntry, "RStarNode"]) -> None:
        """Append an entry and invalidate cached aggregates."""
        if self.is_leaf and not isinstance(entry, LeafEntry):
            raise IndexError_("leaf nodes only store LeafEntry objects")
        if not self.is_leaf and not isinstance(entry, RStarNode):
            raise IndexError_("internal nodes only store child nodes")
        if isinstance(entry, RStarNode):
            entry.parent = self
        self.entries.append(entry)
        self.invalidate()

    def remove(self, entry: Union[LeafEntry, "RStarNode"]) -> None:
        """Remove an entry and invalidate cached aggregates."""
        self.entries.remove(entry)
        if isinstance(entry, RStarNode):
            entry.parent = None
        self.invalidate()

    def replace_entries(self, entries: List[Union[LeafEntry, "RStarNode"]]) -> None:
        """Replace all entries (used by node splits and reinsertions)."""
        self.entries = list(entries)
        for entry in self.entries:
            if isinstance(entry, RStarNode):
                entry.parent = self
        self.invalidate()

    def invalidate(self) -> None:
        """Drop cached MBR/count here and in every ancestor."""
        node: Optional[RStarNode] = self
        while node is not None:
            node._mbr = None
            node._count = None
            node = node.parent

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else f"internal(level={self.level})"
        return f"RStarNode({kind}, page={self.page_id}, entries={len(self.entries)})"
