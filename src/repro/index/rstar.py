"""R*-tree spatial index with aggregate counts and simulated page I/O.

The paper assumes the dataset is indexed by an R*-tree [Beckmann et al. 1990]
residing on disk, and relies on two of its capabilities:

* *aggregate range counting* — each entry carries the number of records in
  its subtree, so the number of dominators of the focal record can be counted
  without reading the leaf pages they live in (Section 5);
* *best-first traversal* for the BBS skyline algorithm (Section 6.2), which
  the :mod:`repro.skyline.bbs` module implements on top of this tree.

The implementation covers the full R*-tree insertion algorithm (ChooseSubtree
with minimum-overlap enlargement at the leaf level, forced reinsertion on the
first overflow of a level, and the topological split with axis selection by
margin and distribution selection by overlap/area), plus an STR bulk-loading
constructor used by the benchmark harness to build larger trees quickly.
Every node occupies one simulated disk page; queries charge page reads to a
:class:`~repro.stats.CostCounters` object.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import IndexError_
from ..stats import CostCounters
from .diskio import DEFAULT_PAGE_SIZE, DiskSimulator
from .mbr import MBR
from .node import LeafEntry, RStarNode

__all__ = ["RStarTree"]

#: Fraction of entries reinserted by the forced-reinsertion heuristic.
REINSERT_FRACTION = 0.3
#: Minimum node fill as a fraction of capacity.
MIN_FILL_FRACTION = 0.4


class RStarTree:
    """A main-memory R*-tree with simulated disk paging.

    Parameters
    ----------
    dim:
        Data dimensionality.
    page_size:
        Simulated page size in bytes (default 4 KB, as in the paper).
    max_entries:
        Optional fan-out override; by default it is derived from the page
        size and entry size via :class:`DiskSimulator`.
    """

    def __init__(
        self,
        dim: int,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        max_entries: Optional[int] = None,
    ) -> None:
        if dim < 1:
            raise IndexError_("the R*-tree needs at least one dimension")
        self.dim = int(dim)
        self.disk = DiskSimulator(page_size=page_size)
        if max_entries is not None:
            if max_entries < 4:
                raise IndexError_("max_entries must be at least 4")
            self._leaf_capacity = int(max_entries)
            self._internal_capacity = int(max_entries)
        else:
            self._leaf_capacity = self.disk.leaf_capacity(dim)
            self._internal_capacity = self.disk.internal_capacity(dim)
        self._min_leaf = max(2, int(MIN_FILL_FRACTION * self._leaf_capacity))
        self._min_internal = max(2, int(MIN_FILL_FRACTION * self._internal_capacity))
        self.root = RStarNode(level=0, page_id=self.disk.allocate_page())
        self.size = 0
        #: Pages whose entries (or whose subtree MBRs) changed since the
        #: last :meth:`drain_dirty_pages` call.  Mutating operations mark a
        #: touched node *and all its ancestors* — a child's MBR change makes
        #: the parent's cached per-child state (e.g. BBS expansion keys in
        #: :class:`~repro.skyline.bbs.SkylineCache`) stale too.  Pages of
        #: nodes removed from the tree are marked as well, so a consumer can
        #: scope cache invalidation to exactly the pages a mutation touched.
        self._dirty_pages: Set[int] = set()

    # ------------------------------------------------------------ constructors
    @classmethod
    def build(
        cls,
        points: np.ndarray | Sequence[Sequence[float]],
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        max_entries: Optional[int] = None,
        method: str = "bulk",
    ) -> "RStarTree":
        """Build a tree over ``points`` (record ids are row indices).

        ``method`` is ``"bulk"`` (Sort-Tile-Recursive packing; fast, good
        quality, the benchmark default) or ``"insert"`` (one-by-one R*
        insertion exercising the full insertion algorithm).
        """
        array = np.asarray(points, dtype=float)
        if array.ndim != 2 or array.shape[0] == 0:
            raise IndexError_("points must form a non-empty (n, d) array")
        tree = cls(array.shape[1], page_size=page_size, max_entries=max_entries)
        if method == "insert":
            for record_id, point in enumerate(array):
                tree.insert(point, record_id)
        elif method == "bulk":
            tree._bulk_load(array)
        else:
            raise IndexError_(f"unknown build method {method!r}")
        return tree

    # ------------------------------------------------------------------ stats
    @property
    def height(self) -> int:
        """Tree height (1 for a root-only tree)."""
        return self.root.level + 1

    def node_count(self) -> int:
        """Total number of nodes (pages) in the tree."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += 1
            if not node.is_leaf:
                stack.extend(node.entries)
        return total

    def _read(self, node: RStarNode, counters: Optional[CostCounters]) -> None:
        self.disk.read_page(node.page_id, counters)

    # ---------------------------------------------------------- dirty pages
    def _mark_dirty(self, node: Optional[RStarNode]) -> None:
        """Mark ``node`` and every ancestor as structurally changed."""
        while node is not None:
            self._dirty_pages.add(node.page_id)
            node = node.parent

    def drain_dirty_pages(self) -> Set[int]:
        """Return and reset the pages touched by mutations since the last drain."""
        dirty = self._dirty_pages
        self._dirty_pages = set()
        return dirty

    # -------------------------------------------------------------- insertion
    def insert(self, point: Sequence[float] | np.ndarray, record_id: int) -> None:
        """Insert one data point using the R*-tree insertion algorithm."""
        p = np.asarray(point, dtype=float).ravel()
        if p.shape[0] != self.dim:
            raise IndexError_(f"point has {p.shape[0]} dimensions, tree expects {self.dim}")
        self._insert_entry(LeafEntry(record_id, p), level=0, reinserted_levels=set())
        self.size += 1

    def _insert_entry(self, entry, level: int, reinserted_levels: set) -> None:
        node = self._choose_subtree(entry.mbr, level)
        node.add(entry)
        self._mark_dirty(node)
        self._overflow_treatment(node, reinserted_levels)

    def _choose_subtree(self, mbr: MBR, level: int) -> RStarNode:
        node = self.root
        while node.level > level:
            children: List[RStarNode] = node.entries  # type: ignore[assignment]
            if node.level == level + 1 and node.level == 1:
                # Children are leaves: choose by minimum overlap enlargement.
                best = self._least_overlap_enlargement(children, mbr)
            else:
                best = self._least_area_enlargement(children, mbr)
            node = best
        return node

    @staticmethod
    def _least_area_enlargement(children: List[RStarNode], mbr: MBR) -> RStarNode:
        def key(child: RStarNode) -> Tuple[float, float]:
            return (child.mbr.enlargement(mbr), child.mbr.area)

        return min(children, key=key)

    @staticmethod
    def _least_overlap_enlargement(children: List[RStarNode], mbr: MBR) -> RStarNode:
        def overlap_sum(box: MBR, child: RStarNode) -> float:
            return sum(box.overlap(other.mbr) for other in children if other is not child)

        def key(child: RStarNode) -> Tuple[float, float, float]:
            enlarged = child.mbr.union(mbr)
            overlap_increase = overlap_sum(enlarged, child) - overlap_sum(child.mbr, child)
            return (overlap_increase, child.mbr.enlargement(mbr), child.mbr.area)

        return min(children, key=key)

    def _capacity(self, node: RStarNode) -> int:
        return self._leaf_capacity if node.is_leaf else self._internal_capacity

    def _min_entries(self, node: RStarNode) -> int:
        return self._min_leaf if node.is_leaf else self._min_internal

    def _overflow_treatment(self, node: RStarNode, reinserted_levels: set) -> None:
        while node is not None and len(node.entries) > self._capacity(node):
            if node is not self.root and node.level not in reinserted_levels:
                reinserted_levels.add(node.level)
                self._reinsert(node, reinserted_levels)
            else:
                self._split(node)
            node = node.parent if node is not None else None
            # After a split the parent may now overflow; loop continues from it.
            if node is None:
                break

    def _reinsert(self, node: RStarNode, reinserted_levels: set) -> None:
        centre = node.mbr.centre
        entries = list(node.entries)
        entries.sort(key=lambda e: float(np.linalg.norm(e.mbr.centre - centre)), reverse=True)
        reinsert_count = max(1, int(REINSERT_FRACTION * len(entries)))
        to_reinsert = entries[:reinsert_count]
        node.replace_entries(entries[reinsert_count:])
        self._mark_dirty(node)
        for entry in reversed(to_reinsert):  # close reinsertion order
            self._insert_entry(entry, level=node.level, reinserted_levels=reinserted_levels)

    def _split(self, node: RStarNode) -> None:
        entries = list(node.entries)
        min_entries = self._min_entries(node)
        axis = self._choose_split_axis(entries, min_entries)
        first, second = self._choose_split_index(entries, axis, min_entries)

        new_node = RStarNode(level=node.level, page_id=self.disk.allocate_page())
        node.replace_entries(first)
        new_node.replace_entries(second)

        if node is self.root:
            new_root = RStarNode(level=node.level + 1, page_id=self.disk.allocate_page())
            new_root.add(node)
            new_root.add(new_node)
            self.root = new_root
        else:
            node.parent.add(new_node)
        self._mark_dirty(node)
        self._mark_dirty(new_node)

    @staticmethod
    def _sorted_by_axis(entries: List, axis: int, use_upper: bool) -> List:
        def key(entry) -> float:
            box = entry.mbr
            return float(box.upper[axis] if use_upper else box.lower[axis])

        return sorted(entries, key=key)

    def _distributions(self, entries: List, axis: int, min_entries: int):
        for use_upper in (False, True):
            ordered = self._sorted_by_axis(entries, axis, use_upper)
            for split_at in range(min_entries, len(entries) - min_entries + 1):
                yield ordered[:split_at], ordered[split_at:]

    def _choose_split_axis(self, entries: List, min_entries: int) -> int:
        best_axis, best_margin = 0, math.inf
        for axis in range(self.dim):
            margin = 0.0
            for first, second in self._distributions(entries, axis, min_entries):
                margin += MBR.union_of([e.mbr for e in first]).margin
                margin += MBR.union_of([e.mbr for e in second]).margin
            if margin < best_margin:
                best_margin, best_axis = margin, axis
        return best_axis

    def _choose_split_index(self, entries: List, axis: int, min_entries: int):
        best = None
        best_key = (math.inf, math.inf)
        for first, second in self._distributions(entries, axis, min_entries):
            box1 = MBR.union_of([e.mbr for e in first])
            box2 = MBR.union_of([e.mbr for e in second])
            key = (box1.overlap(box2), box1.area + box2.area)
            if key < best_key:
                best_key = key
                best = (list(first), list(second))
        assert best is not None
        return best

    # --------------------------------------------------------------- deletion
    def delete(self, point: Sequence[float] | np.ndarray, record_id: int) -> None:
        """Delete one data record, condensing under-full nodes.

        Follows the classic R-tree deletion algorithm [Guttman 1984], which
        the R*-tree adopts unchanged: locate the leaf holding the entry,
        remove it, then *condense* the path — every ancestor that falls
        under the minimum fill is removed from its parent and the entries of
        the removed nodes are re-inserted at their original level, so the
        fill invariant is restored by the same ChooseSubtree / forced
        reinsertion / split machinery that built the tree.  The root is
        exempt from the fill minimum; an internal root left with a single
        child is shrunk (the child becomes the new root), reversing the
        root split of the insertion path.

        Raises
        ------
        IndexError_
            When no leaf stores ``record_id`` at ``point``.
        """
        p = np.asarray(point, dtype=float).ravel()
        if p.shape[0] != self.dim:
            raise IndexError_(f"point has {p.shape[0]} dimensions, tree expects {self.dim}")
        found = self._find_leaf(p, record_id)
        if found is None:
            raise IndexError_(f"record {record_id} not found in the tree at {p}")
        leaf, entry = found
        leaf.remove(entry)
        self._mark_dirty(leaf)
        self.size -= 1

        # Condense the path: collect under-full ancestors bottom-up.
        eliminated: List[RStarNode] = []
        node = leaf
        while node is not self.root:
            parent = node.parent
            if len(node.entries) < self._min_entries(node) and len(parent.entries) > 1:
                parent.remove(node)
                self._mark_dirty(parent)
                self._dirty_pages.add(node.page_id)
                eliminated.append(node)
            node = parent

        # Re-insert the entries of every eliminated node at its own level —
        # leaf entries re-enter leaves, orphaned subtrees re-attach at their
        # original height, exactly as in CondenseTree.
        for dead in eliminated:
            for orphan in dead.entries:
                if isinstance(orphan, RStarNode):
                    orphan.parent = None
                self._insert_entry(orphan, level=dead.level, reinserted_levels=set())

        # Shrink an internal root left with one child (undo the root split).
        while not self.root.is_leaf and len(self.root.entries) == 1:
            self._dirty_pages.add(self.root.page_id)
            child = self.root.entries[0]
            child.parent = None
            self.root = child
            self._dirty_pages.add(child.page_id)

    def _find_leaf(
        self, point: np.ndarray, record_id: int
    ) -> Optional[Tuple[RStarNode, LeafEntry]]:
        """Locate the leaf (and entry) storing ``record_id`` at ``point``."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    if entry.record_id == record_id and np.array_equal(entry.point, point):
                        return node, entry
                continue
            for child in node.entries:
                if child.mbr.intersects_box(point, point):
                    stack.append(child)
        return None

    def renumber_after_delete(self, removed_id: int) -> None:
        """Shift every record id above ``removed_id`` down by one.

        Record ids are dataset row indices throughout the library, and
        removing row ``j`` with ``np.delete`` shifts every later row up by
        one; this re-labels the leaf entries to match.  Points (and hence
        every MBR and BBS expansion key) are untouched, so no cached
        geometry is invalidated by the renumbering itself.
        """
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.is_leaf:
                stack.extend(node.entries)
                continue
            entries = node.entries
            for position, entry in enumerate(entries):
                if entry.record_id > removed_id:
                    entries[position] = LeafEntry(entry.record_id - 1, entry.point)

    # ------------------------------------------------------------- bulk load
    def _bulk_load(self, points: np.ndarray) -> None:
        """Sort-Tile-Recursive packing of ``points`` into leaf and internal levels.

        The leaf level — the ``O(n log n)`` bulk of the work — runs on numpy
        index arrays: each tiling step stable-sorts the indices of one slab
        by the next coordinate with ``np.argsort`` instead of sorting Python
        entry objects through a key lambda, and every leaf's MBR and
        aggregate count are set with one ``min``/``max`` reduction over its
        point block.  The tiling (slab sizes, tie order, page numbering) is
        identical to the object-based packing it replaced, so tree structure
        and all query results are unchanged; only the constant factor is.
        The sparse internal levels still use the object-based packer.
        """
        self.size = int(points.shape[0])
        nodes = self._pack_leaf_level(points)
        level = 0
        while len(nodes) > 1:
            level += 1
            nodes = self._pack_level(nodes, level, self._internal_capacity)
        self.root = nodes[0]

    def _pack_leaf_level(self, points: np.ndarray) -> List[RStarNode]:
        """STR-tile ``points`` into leaf nodes via stable index argsorts."""
        count = int(points.shape[0])
        capacity = self._leaf_capacity

        def tile(order: np.ndarray, dims_left: int) -> List[np.ndarray]:
            if dims_left <= 1 or order.shape[0] <= capacity:
                return [
                    order[start: start + capacity]
                    for start in range(0, order.shape[0], capacity)
                ]
            axis = self.dim - dims_left
            order = order[np.argsort(points[order, axis], kind="stable")]
            slabs = math.ceil(order.shape[0] ** (1.0 / dims_left))
            slab_size = math.ceil(order.shape[0] / slabs) if slabs else order.shape[0]
            slab_size = max(slab_size, capacity)
            groups: List[np.ndarray] = []
            for start in range(0, order.shape[0], slab_size):
                groups.extend(tile(order[start: start + slab_size], dims_left - 1))
            return groups

        if count <= capacity:
            groups = [np.arange(count, dtype=np.intp)]
        else:
            groups = tile(np.arange(count, dtype=np.intp), self.dim)
        nodes: List[RStarNode] = []
        for group in groups:
            if group.shape[0] == 0:
                continue
            node = RStarNode(level=0, page_id=self.disk.allocate_page())
            node.replace_entries([LeafEntry(int(i), points[i]) for i in group])
            block = points[group]
            node._mbr = MBR(block.min(axis=0), block.max(axis=0))
            node._count = int(group.shape[0])
            nodes.append(node)
        return nodes

    def _pack_level(self, entries: List, level: int, capacity: int) -> List[RStarNode]:
        """Pack ``entries`` into nodes of ``capacity`` using STR tiling."""
        count = len(entries)
        node_count = math.ceil(count / capacity)
        if node_count == 1:
            node = RStarNode(level=level, page_id=self.disk.allocate_page())
            node.replace_entries(entries)
            return [node]

        def centre(entry) -> np.ndarray:
            return entry.mbr.centre

        # Recursive tiling across dimensions.
        def tile(items: List, dims_left: int) -> List[List]:
            if dims_left <= 1 or len(items) <= capacity:
                return [items[i:i + capacity] for i in range(0, len(items), capacity)]
            axis = self.dim - dims_left
            items = sorted(items, key=lambda e: float(centre(e)[axis]))
            slabs = math.ceil(len(items) ** (1.0 / dims_left))
            slab_size = math.ceil(len(items) / slabs) if slabs else len(items)
            slab_size = max(slab_size, capacity)
            groups: List[List] = []
            for start in range(0, len(items), slab_size):
                groups.extend(tile(items[start:start + slab_size], dims_left - 1))
            return groups

        groups = tile(list(entries), self.dim)
        nodes: List[RStarNode] = []
        for group in groups:
            if not group:
                continue
            node = RStarNode(level=level, page_id=self.disk.allocate_page())
            node.replace_entries(group)
            nodes.append(node)
        return nodes

    # ---------------------------------------------------------------- queries
    def range_query(
        self,
        lower: Sequence[float] | np.ndarray,
        upper: Sequence[float] | np.ndarray,
        counters: Optional[CostCounters] = None,
    ) -> List[Tuple[int, np.ndarray]]:
        """Return ``(record_id, point)`` pairs inside the closed box ``[lower, upper]``."""
        lo = np.asarray(lower, dtype=float).ravel()
        hi = np.asarray(upper, dtype=float).ravel()
        results: List[Tuple[int, np.ndarray]] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            self._read(node, counters)
            if node.is_leaf:
                for entry in node.entries:
                    point = entry.point
                    if np.all(point >= lo) and np.all(point <= hi):
                        if counters is not None:
                            counters.records_accessed += 1
                        results.append((entry.record_id, point))
            else:
                for child in node.entries:
                    if child.mbr.intersects_box(lo, hi):
                        stack.append(child)
        return results

    def range_count(
        self,
        lower: Sequence[float] | np.ndarray,
        upper: Sequence[float] | np.ndarray,
        counters: Optional[CostCounters] = None,
    ) -> int:
        """Count records in the closed box using aggregate subtree counts.

        Sub-trees whose MBR lies entirely inside the box contribute their
        aggregate count without being read — the aggregate R*-tree behaviour
        the paper uses to count dominators cheaply.
        """
        lo = np.asarray(lower, dtype=float).ravel()
        hi = np.asarray(upper, dtype=float).ravel()
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            self._read(node, counters)
            if node.is_leaf:
                for entry in node.entries:
                    point = entry.point
                    if np.all(point >= lo) and np.all(point <= hi):
                        total += 1
                continue
            for child in node.entries:
                if not child.mbr.intersects_box(lo, hi):
                    continue
                if child.mbr.within_box(lo, hi):
                    total += child.count
                else:
                    stack.append(child)
        return total

    def all_entries(self) -> Iterable[LeafEntry]:
        """Iterate over every leaf entry (no I/O accounting; used by tests)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RStarTree(dim={self.dim}, size={self.size}, height={self.height}, "
            f"nodes={self.node_count()})"
        )
