"""Minimum bounding rectangles (MBRs) for the R*-tree.

An MBR is the axis-aligned bounding box of a set of points or child boxes.
The R*-tree insertion heuristics reason about MBR area, margin (perimeter),
overlap and enlargement; the query algorithms (range counting, BBS skyline)
reason about containment, intersection and dominance-oriented lower bounds.
All of that geometry is collected here so the node and tree modules stay
focused on structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import IndexError_

__all__ = ["MBR"]


@dataclass(frozen=True)
class MBR:
    """An axis-aligned box ``[lower, upper]`` (closed on both sides)."""

    lower: np.ndarray
    upper: np.ndarray

    def __init__(self, lower: Sequence[float] | np.ndarray, upper: Sequence[float] | np.ndarray):
        lo = np.asarray(lower, dtype=float).ravel().copy()
        hi = np.asarray(upper, dtype=float).ravel().copy()
        if lo.shape != hi.shape:
            raise IndexError_("MBR bounds must have identical shapes")
        if np.any(hi < lo):
            raise IndexError_("MBR upper bound must not be below the lower bound")
        lo.setflags(write=False)
        hi.setflags(write=False)
        object.__setattr__(self, "lower", lo)
        object.__setattr__(self, "upper", hi)

    # ---------------------------------------------------------- constructors
    @classmethod
    def from_point(cls, point: Sequence[float] | np.ndarray) -> "MBR":
        """Degenerate MBR covering a single point."""
        p = np.asarray(point, dtype=float).ravel()
        return cls(p, p)

    @classmethod
    def union_of(cls, boxes: Iterable["MBR"]) -> "MBR":
        """Smallest MBR enclosing all ``boxes``."""
        boxes = list(boxes)
        if not boxes:
            raise IndexError_("cannot take the union of zero MBRs")
        lower = np.min(np.vstack([b.lower for b in boxes]), axis=0)
        upper = np.max(np.vstack([b.upper for b in boxes]), axis=0)
        return cls(lower, upper)

    # -------------------------------------------------------------- measures
    @property
    def dim(self) -> int:
        """Dimensionality of the box."""
        return int(self.lower.shape[0])

    @property
    def area(self) -> float:
        """Hyper-volume of the box."""
        return float(np.prod(self.upper - self.lower))

    @property
    def margin(self) -> float:
        """Sum of edge lengths (the R*-tree 'margin' criterion)."""
        return float(np.sum(self.upper - self.lower))

    @property
    def centre(self) -> np.ndarray:
        """Centre point of the box."""
        return (self.lower + self.upper) / 2.0

    def union(self, other: "MBR") -> "MBR":
        """Smallest MBR enclosing this box and ``other``."""
        return MBR(np.minimum(self.lower, other.lower), np.maximum(self.upper, other.upper))

    def enlargement(self, other: "MBR") -> float:
        """Area increase needed to also cover ``other``."""
        return self.union(other).area - self.area

    def overlap(self, other: "MBR") -> float:
        """Volume of the intersection with ``other`` (0 when disjoint)."""
        lower = np.maximum(self.lower, other.lower)
        upper = np.minimum(self.upper, other.upper)
        extent = upper - lower
        if np.any(extent < 0):
            return 0.0
        return float(np.prod(extent))

    # ------------------------------------------------------------ predicates
    def contains_point(self, point: Sequence[float] | np.ndarray) -> bool:
        """Closed containment test for a point."""
        p = np.asarray(point, dtype=float).ravel()
        return bool(np.all(p >= self.lower) and np.all(p <= self.upper))

    def contains_box(self, other: "MBR") -> bool:
        """True when ``other`` lies entirely inside this box."""
        return bool(np.all(other.lower >= self.lower) and np.all(other.upper <= self.upper))

    def intersects_box(
        self, lower: Sequence[float] | np.ndarray, upper: Sequence[float] | np.ndarray
    ) -> bool:
        """True when this box intersects the closed box ``[lower, upper]``."""
        lo = np.asarray(lower, dtype=float).ravel()
        hi = np.asarray(upper, dtype=float).ravel()
        return bool(np.all(self.upper >= lo) and np.all(self.lower <= hi))

    def within_box(
        self, lower: Sequence[float] | np.ndarray, upper: Sequence[float] | np.ndarray
    ) -> bool:
        """True when this box lies entirely inside the closed box ``[lower, upper]``."""
        lo = np.asarray(lower, dtype=float).ravel()
        hi = np.asarray(upper, dtype=float).ravel()
        return bool(np.all(self.lower >= lo) and np.all(self.upper <= hi))

    # ------------------------------------------------- dominance-oriented keys
    def max_corner_sum(self) -> float:
        """Sum of upper-corner coordinates.

        For maximisation-oriented dominance (larger attribute values are
        better), ``-max_corner_sum`` is a lower bound on the BBS priority key
        of every point inside the box: no contained point can have a larger
        coordinate sum than the upper corner.
        """
        return float(np.sum(self.upper))

    def upper_dominates_point(self, point: Sequence[float] | np.ndarray) -> bool:
        """True when the box's upper corner dominates ``point`` (>= everywhere, > somewhere)."""
        p = np.asarray(point, dtype=float).ravel()
        return bool(np.all(self.upper >= p) and np.any(self.upper > p))

    def dominated_by_point(self, point: Sequence[float] | np.ndarray) -> bool:
        """True when ``point`` dominates the entire box (i.e. its upper corner)."""
        p = np.asarray(point, dtype=float).ravel()
        return bool(np.all(p >= self.upper) and np.any(p > self.upper))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MBR({np.array2string(self.lower, precision=3)}, {np.array2string(self.upper, precision=3)})"
