"""Spatial index substrate: MBRs, R*-tree nodes, the R*-tree and disk simulation."""

from .diskio import DEFAULT_PAGE_SIZE, DiskSimulator
from .mbr import MBR
from .node import LeafEntry, RStarNode
from .rstar import RStarTree

__all__ = [
    "MBR",
    "LeafEntry",
    "RStarNode",
    "RStarTree",
    "DiskSimulator",
    "DEFAULT_PAGE_SIZE",
]
