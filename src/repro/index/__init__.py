"""Spatial index substrate: MBRs, R*-tree nodes, the R*-tree, disk simulation
and snapshot persistence."""

from .diskio import (
    DEFAULT_PAGE_SIZE,
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    DiskSimulator,
    SnapshotPayload,
    load_snapshot,
    save_snapshot,
)
from .mbr import MBR
from .node import LeafEntry, RStarNode
from .rstar import RStarTree

__all__ = [
    "MBR",
    "LeafEntry",
    "RStarNode",
    "RStarTree",
    "DiskSimulator",
    "DEFAULT_PAGE_SIZE",
    "SnapshotPayload",
    "save_snapshot",
    "load_snapshot",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
]
