"""Linear scoring primitives for top-k processing.

The score of a record ``r`` under a preference vector ``q`` is the dot
product ``S(r) = r · q`` (paper, Section 3).  These helpers centralise the
computation of scores, ranks and orders so the core algorithms, the tests and
the benchmark harness all agree on tie handling: the paper ignores ties, and
we resolve them conservatively — when computing the *order* of a focal
record, records with a strictly higher score count, and ties do not.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from ..data.dataset import Dataset, validate_query_vector

__all__ = ["score", "score_all", "order_of", "rank_of", "score_ratio"]

ArrayLike = Union[Sequence[float], np.ndarray]


def score(record: ArrayLike, query: ArrayLike) -> float:
    """Return the linear score of a single record under ``query``."""
    r = np.asarray(record, dtype=float).ravel()
    q = validate_query_vector(query, r.shape[0])
    return float(r @ q)


def score_all(dataset: Dataset, query: ArrayLike) -> np.ndarray:
    """Return the score of every record of ``dataset`` under ``query``."""
    return dataset.scores(query)


def order_of(dataset: Dataset, focal: ArrayLike, query: ArrayLike) -> int:
    """Return the order (1-based rank) of ``focal`` w.r.t. ``query``.

    The order equals one plus the number of dataset records whose score is
    strictly greater than the focal record's score.  The comparison is strict,
    matching the open half-space convention of the geometry layer (``r`` only
    counts against ``p`` where ``r · q > p · q``); exact ties — including the
    focal record itself when it belongs to the dataset — do not count.
    """
    focal_vec = dataset.validate_focal(focal)
    q = validate_query_vector(query, dataset.d)
    focal_score = float(focal_vec @ q)
    better = int(np.count_nonzero(dataset.records @ q > focal_score))
    return better + 1


def rank_of(dataset: Dataset, focal: ArrayLike, query: ArrayLike) -> int:
    """Alias of :func:`order_of` (the paper uses "rank" and "order" interchangeably)."""
    return order_of(dataset, focal, query)


def score_ratio(dataset: Dataset, query: ArrayLike) -> float:
    """Return ``MaxScore / MinScore`` over the dataset for ``query``.

    This is the dimensionality-curse statistic plotted in the paper's
    appendix (Figure 12).  A ratio close to 1 means scores no longer
    discriminate between records.
    """
    scores = dataset.scores(query)
    min_score = float(scores.min())
    max_score = float(scores.max())
    if min_score <= 0:
        # Guard against degenerate all-zero records; use a tiny floor so the
        # ratio stays finite, mirroring the paper's positive-valued data.
        min_score = max(min_score, 1e-12)
    return max_score / min_score
