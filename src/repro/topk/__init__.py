"""Top-k substrate: linear scoring, top-k queries and onion layers."""

from .onion import convex_hull_layers, layer_of
from .queries import TopKResult, rank_histogram, top_k, top_k_indices
from .scoring import order_of, rank_of, score, score_all, score_ratio

__all__ = [
    "score",
    "score_all",
    "order_of",
    "rank_of",
    "score_ratio",
    "top_k",
    "top_k_indices",
    "TopKResult",
    "rank_histogram",
    "convex_hull_layers",
    "layer_of",
]
