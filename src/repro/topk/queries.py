"""Top-k query evaluation over a :class:`~repro.data.dataset.Dataset`.

These routines provide the classic linear top-k query that MaxRank is defined
against.  They serve three purposes in this repository:

* ground truth for validating MaxRank results (a query vector sampled inside
  a reported region must rank the focal record exactly ``k*``-th);
* the user-facing companion API (an option provider will typically inspect
  concrete top-k lists for representative vectors of each MaxRank region);
* the substrate for the appendix experiment on score distinguishability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from ..data.dataset import Dataset, validate_query_vector
from .scoring import order_of

__all__ = ["TopKResult", "top_k", "top_k_indices", "rank_histogram"]

ArrayLike = Union[Sequence[float], np.ndarray]


@dataclass(frozen=True)
class TopKResult:
    """Result of a top-k query.

    Attributes
    ----------
    indices:
        Record indices ordered by descending score (ties broken by index).
    scores:
        Scores aligned with ``indices``.
    query:
        The query vector used.
    """

    indices: np.ndarray
    scores: np.ndarray
    query: np.ndarray

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    def __iter__(self):
        return iter(zip(self.indices.tolist(), self.scores.tolist()))


def top_k_indices(dataset: Dataset, query: ArrayLike, k: int) -> np.ndarray:
    """Return the indices of the ``k`` highest-scoring records.

    Ties in score are broken by record index (smaller index first) so the
    result is deterministic.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    q = validate_query_vector(query, dataset.d)
    scores = dataset.records @ q
    k = min(k, dataset.n)
    # argsort on (-score, index) gives deterministic descending order.
    order = np.lexsort((np.arange(dataset.n), -scores))
    return order[:k]


def top_k(dataset: Dataset, query: ArrayLike, k: int) -> TopKResult:
    """Evaluate a top-k query and return indices, scores and the vector used."""
    q = validate_query_vector(query, dataset.d)
    idx = top_k_indices(dataset, q, k)
    scores = dataset.records[idx] @ q
    return TopKResult(indices=idx, scores=scores, query=q)


def rank_histogram(
    dataset: Dataset,
    focal: ArrayLike,
    queries: Sequence[ArrayLike],
) -> List[int]:
    """Return the order of ``focal`` for each vector in ``queries``.

    Used by the brute-force MaxRank oracle and by examples to visualise how a
    record's rank fluctuates across the preference space.
    """
    return [order_of(dataset, focal, q) for q in queries]
