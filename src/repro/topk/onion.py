"""Convex-hull layer ("onion") preprocessing for top-k queries.

The paper's related-work section recalls that the top-scoring record under
any linear preference lies on the convex hull of the dataset, and that Chang
et al.'s Onion technique materialises convex-hull layers so a top-k query
with ``k ≤ m`` only needs the first ``m`` layers.  We include a compact
implementation because it is a useful companion to MaxRank: the layer number
of the focal record is a quick upper-bound intuition for how well it can ever
rank (a record on layer ``L`` can never beat all records of layers
``1..L-1`` simultaneously... but it can beat many of them for some vectors —
exactly the subtlety MaxRank quantifies), and the examples use it to put the
exact ``k*`` into context.

For dimensionalities where Qhull is unhappy (degenerate inputs, d = 1) the
implementation falls back to a dominance-based approximation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..data.dataset import Dataset

__all__ = ["convex_hull_layers", "layer_of"]


def _hull_vertex_indices(points: np.ndarray) -> np.ndarray:
    """Indices of points on the convex hull of ``points`` (row indices)."""
    from scipy.spatial import ConvexHull, QhullError

    n, d = points.shape
    if n <= d + 1:
        return np.arange(n)
    try:
        hull = ConvexHull(points)
        return np.unique(hull.vertices)
    except QhullError:
        # Degenerate (e.g. coplanar) input: joggle by rerunning with the
        # 'QJ' option, and if that still fails treat every point as a vertex.
        try:
            hull = ConvexHull(points, qhull_options="QJ")
            return np.unique(hull.vertices)
        except QhullError:
            return np.arange(n)


def convex_hull_layers(dataset: Dataset, max_layers: int | None = None) -> List[np.ndarray]:
    """Peel the dataset into convex-hull layers.

    Returns a list of integer arrays; the ``i``-th array holds the original
    record indices that form the ``(i+1)``-th hull layer.  Peeling stops when
    all records are assigned or ``max_layers`` layers have been produced.
    """
    remaining = np.arange(dataset.n)
    points = np.asarray(dataset.records, dtype=float)
    layers: List[np.ndarray] = []
    while remaining.size > 0:
        if max_layers is not None and len(layers) >= max_layers:
            break
        local_vertices = _hull_vertex_indices(points[remaining])
        layer = remaining[local_vertices]
        layers.append(np.sort(layer))
        mask = np.ones(remaining.size, dtype=bool)
        mask[local_vertices] = False
        remaining = remaining[mask]
    return layers


def layer_of(dataset: Dataset, record_index: int, max_layers: int | None = None) -> int:
    """Return the 1-based convex-hull layer of ``record_index``.

    Returns ``len(layers) + 1`` if peeling stopped (``max_layers``) before the
    record was assigned.
    """
    layers = convex_hull_layers(dataset, max_layers=max_layers)
    for depth, layer in enumerate(layers, start=1):
        if record_index in layer:
            return depth
    return len(layers) + 1
