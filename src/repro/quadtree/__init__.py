"""Quad-tree substrate: augmented quad-tree and within-leaf cell enumeration."""

from .quadtree import (
    DEFAULT_MAX_DEPTH,
    DEFAULT_SPLIT_THRESHOLD,
    AugmentedQuadTree,
    QuadTreeNode,
)
from .withinleaf import LeafCell, LeafReuseState, PairwiseConstraints, WithinLeafProcessor

__all__ = [
    "AugmentedQuadTree",
    "QuadTreeNode",
    "DEFAULT_SPLIT_THRESHOLD",
    "DEFAULT_MAX_DEPTH",
    "LeafCell",
    "LeafReuseState",
    "PairwiseConstraints",
    "WithinLeafProcessor",
]
