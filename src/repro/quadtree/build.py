"""Parallel quad-tree construction tasks and the cost-model split policy.

Two construction-time concerns of :class:`repro.quadtree.quadtree.AugmentedQuadTree`
live here because both must run *outside* the tree object:

* :class:`SubtreeBuildTask` — a picklable, self-contained unit of tree
  construction: one frontier leaf's box, its pending half-space rows
  (coefficients and tolerance-shifted offsets sliced from the tree's
  coefficient matrix) and the split policy.  ``run()`` executes the full
  split cascade below that leaf in a worker process and returns a
  :class:`SubtreeBuildResult` of flat arrays — no tree objects cross the
  process boundary.  The tasks ride the generic whole-task path of the
  execution engine (:func:`repro.engine.tasks.execute_task` dispatches any
  task with a ``run()`` method), so the same ``SerialExecutor`` /
  ``ProcessPoolExecutor`` that schedules within-leaf probes schedules
  subtree builds.

* the **cost-model split policy** (``split_policy="cost"``) — instead of
  splitting a leaf whenever its partial set exceeds a static ``~5·dim``
  threshold, dry-run the child classification (the same two matrix products
  the split itself would perform) and split only when the modelled
  within-leaf funnel work of the fat leaf exceeds the modelled cost of the
  split cascade plus the (pruning-discounted) work of the children.  The
  decision depends only on the leaf box and the pending rows' coefficients,
  so the serial cascade and the worker-side cascade reach bit-identical
  decisions and the built trees are node-for-node identical.

Determinism contract: every quantity computed here (child boxes, corner
extremes, classifications, cost decisions) uses exactly the arithmetic of
the serial split cascade on exactly the same float values, so a parallel
build reproduces the serial tree node for node; only the creation *order*
differs, and :meth:`AugmentedQuadTree._renumber_and_refile` restores the
serial numbering afterwards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..obs.trace import TraceContext, worker_span

__all__ = [
    "SPLIT_POLICIES",
    "SubtreeBuildTask",
    "SubtreeBuildResult",
    "build_subtree",
    "corner_masks",
    "leaf_work",
    "cost_should_split",
]

#: Selectable leaf-split policies of :class:`AugmentedQuadTree`.
SPLIT_POLICIES = ("static", "cost")

#: Tolerance of the containment / disjointness classification.  Single
#: source of truth shared with the tree (imported there as
#: ``_CLASSIFY_TOL``); it matches :data:`repro.geometry.halfspace.EPSILON`.
CLASSIFY_TOL = 1e-9

# --------------------------------------------------------------- cost model
#
# Relative costs calibrated with tools/profile_build.py against the
# committed workload matrix (see PERFORMANCE.md, "Construction").  The units
# are arbitrary — only the ratios matter:
#
# * a leaf with m partial half-spaces costs roughly one candidate unit per
#   potential cell up to Hamming weight 2 (1 + m + m(m-1)/2) — the screen→LP
#   funnel's volume is quadratic in m for the small weights that decide k*;
# * materialising one child node costs COST_CHILD_NODE candidate units
#   (allocation, bookkeeping, scan-index filing);
# * classifying the pending rows against the children costs
#   COST_ROW_CLASSIFY per (row, child) pair (two matrix products);
# * a child leaf's own funnel work is discounted by COST_CHILD_DISCOUNT,
#   because the |F_l| bound prunes most children outright (rows that become
#   *containment* in a child raise its scan priority) and surviving
#   children may split further.
COST_CHILD_NODE = 4.0
COST_ROW_CLASSIFY = 0.05
COST_CHILD_DISCOUNT = 0.25
#: The cost model is never consulted below this partial-set size: splitting
#: micro-leaves cannot pay off and the dry-run itself would dominate.
COST_EVAL_FLOOR = 8


def leaf_work(m: int) -> float:
    """Modelled within-leaf funnel work for a leaf with ``m`` partial rows."""
    return 1.0 + m + 0.5 * m * (m - 1)


def corner_masks(dim: int) -> np.ndarray:
    """Corner selection masks deriving the ``2^dim`` children of a box."""
    corners = np.arange(2 ** dim)
    return ((corners[:, None] >> np.arange(dim)[None, :]) & 1).astype(bool)


def cost_should_split(
    lower: np.ndarray,
    upper: np.ndarray,
    Apos: np.ndarray,
    Aneg: np.ndarray,
    btol: np.ndarray,
    masks: np.ndarray,
) -> bool:
    """Cost-model decision: split this leaf or keep it fat?

    Dry-runs the child classification (the identical two matrix products the
    split cascade would perform) to obtain each inside-simplex child's
    overlap count, then compares the fat leaf's modelled funnel work against
    the split overhead plus the discounted child work.  Purely a function of
    the box and the rows' coefficients — bit-identical wherever evaluated.
    """
    centre = (lower + upper) / 2.0
    child_lowers = np.where(masks, centre, lower)
    child_uppers = np.where(masks, upper, centre)
    inside = child_lowers.sum(axis=1) < 1.0
    child_lowers = child_lowers[inside]
    child_uppers = child_uppers[inside]
    k = child_lowers.shape[0]
    if k == 0:  # pragma: no cover - a live leaf always keeps its lower corner
        return False
    min_vals = Apos @ child_lowers.T + Aneg @ child_uppers.T
    max_vals = Apos @ child_uppers.T + Aneg @ child_lowers.T
    b = btol[:, None]
    overlap_counts = (~((min_vals > b) | (max_vals <= b))).sum(axis=0)
    m = Apos.shape[0]
    split_cost = COST_CHILD_NODE * k + COST_ROW_CLASSIFY * m * k
    split_cost += COST_CHILD_DISCOUNT * float(
        sum(leaf_work(int(count)) for count in overlap_counts)
    )
    return leaf_work(m) > split_cost


@dataclass
class SubtreeBuildTask:
    """One frontier leaf's independent split cascade, shipped to a worker.

    ``pending_ids`` are the leaf's partial half-space ids in insertion
    order; ``coefficients`` / ``offsets_tol`` are the matching rows of the
    tree's coefficient matrix (offsets already tolerance-shifted), so the
    worker never needs the tree or the half-space objects.
    """

    lower: np.ndarray
    upper: np.ndarray
    depth: int
    pending_ids: np.ndarray
    coefficients: np.ndarray
    offsets_tol: np.ndarray
    split_threshold: int
    max_depth: int
    split_policy: str
    #: optional tracing: parent context plus this task's deterministic
    #: span-id suffix (frontier position, not completion order)
    trace: Optional[TraceContext] = None
    trace_tag: str = ""

    def run(self) -> "SubtreeBuildResult":
        """Execute the cascade (executor whole-task entry point)."""
        if self.trace is None:
            return build_subtree(self)
        start = time.perf_counter()
        result = build_subtree(self)
        result.span = worker_span(
            self.trace,
            self.trace_tag,
            "subtree_build",
            start,
            time.perf_counter(),
            meta={"nodes": result.nodes_created},
        )
        return result


@dataclass
class SubtreeBuildResult:
    """Flat-array description of one built subtree (cheap to pickle).

    ``events`` replays the cascade: each row ``(parent, start, count)``
    creates ``count`` children (local node indices ``start .. start+count``)
    under local parent index ``parent`` (``-1`` is the task's own leaf).
    Containment / partial id lists are concatenated per node with CSR-style
    offset arrays; the ids are the tree's original half-space ids.
    """

    nodes_created: int
    splits_performed: int
    lowers: np.ndarray
    uppers: np.ndarray
    events: np.ndarray
    containment_flat: np.ndarray
    containment_offsets: np.ndarray
    partial_flat: np.ndarray
    partial_offsets: np.ndarray
    #: span recorded by a traced build (rides the result like the counters)
    span: Optional[object] = None


def _should_split(
    policy: str,
    threshold: int,
    max_depth: int,
    m: int,
    depth: int,
    lower: np.ndarray,
    upper: np.ndarray,
    rows: np.ndarray,
    Apos: np.ndarray,
    Aneg: np.ndarray,
    btol: np.ndarray,
    masks: np.ndarray,
) -> bool:
    """Worker-side split decision, identical to the tree's serial one."""
    if depth >= max_depth:
        return False
    if policy == "static":
        return m > threshold
    if m <= COST_EVAL_FLOOR:
        return False
    return cost_should_split(
        lower, upper, Apos[rows], Aneg[rows], btol[rows], masks
    )


def build_subtree(task: SubtreeBuildTask) -> SubtreeBuildResult:
    """Run one frontier leaf's full split cascade and flatten the subtree.

    The cascade mirrors ``AugmentedQuadTree._split_one`` exactly — same
    child-box derivation, same corner-extreme classification, same LIFO
    processing order, same split decisions — but works on task-local row
    indices and emits flat arrays instead of node objects.
    """
    A = np.asarray(task.coefficients, dtype=float)
    Apos = np.where(A > 0, A, 0.0)
    Aneg = A - Apos
    btol = np.asarray(task.offsets_tol, dtype=float)
    ids = np.asarray(task.pending_ids, dtype=np.intp)
    dim = int(A.shape[1])
    masks = corner_masks(dim)
    threshold = int(task.split_threshold)
    max_depth = int(task.max_depth)
    policy = task.split_policy

    lowers: List[np.ndarray] = []
    uppers: List[np.ndarray] = []
    cont: List[np.ndarray] = []
    part: List[np.ndarray] = []
    events: List[Tuple[int, int, int]] = []
    empty = np.empty(0, dtype=np.intp)

    # (parent local index, lower, upper, depth, local row indices)
    stack: List[Tuple[int, np.ndarray, np.ndarray, int, np.ndarray]] = [
        (
            -1,
            np.asarray(task.lower, dtype=float),
            np.asarray(task.upper, dtype=float),
            int(task.depth),
            np.arange(ids.shape[0], dtype=np.intp),
        )
    ]
    while stack:
        parent_idx, lo, up, depth, rows = stack.pop()
        centre = (lo + up) / 2.0
        child_lowers = np.where(masks, centre, lo)
        child_uppers = np.where(masks, up, centre)
        inside_idx = np.nonzero(child_lowers.sum(axis=1) < 1.0)[0]
        child_lowers = child_lowers[inside_idx]
        child_uppers = child_uppers[inside_idx]
        k = int(child_lowers.shape[0])
        start = len(lowers)
        events.append((parent_idx, start, k))
        if k == 0:
            continue
        child_depth = depth + 1
        Rp = Apos[rows]
        Rn = Aneg[rows]
        b_rows = btol[rows][:, None]
        min_vals = Rp @ child_lowers.T + Rn @ child_uppers.T
        max_vals = Rp @ child_uppers.T + Rn @ child_lowers.T
        contains = min_vals > b_rows
        disjoint = max_vals <= b_rows
        overlaps = ~(contains | disjoint)
        child_idx, row_idx = np.nonzero(contains.T)
        contained_rows = rows[row_idx]
        c_counts = np.bincount(child_idx, minlength=k)
        child_idx, row_idx = np.nonzero(overlaps.T)
        overlap_rows = rows[row_idx]
        o_counts = np.bincount(child_idx, minlength=k)
        c_off = o_off = 0
        for j in range(k):
            lowers.append(child_lowers[j])
            uppers.append(child_uppers[j])
            c_end = c_off + int(c_counts[j])
            cont.append(contained_rows[c_off:c_end])
            c_off = c_end
            o_end = o_off + int(o_counts[j])
            child_rows = overlap_rows[o_off:o_end]
            o_off = o_end
            if _should_split(
                policy, threshold, max_depth, child_rows.shape[0], child_depth,
                child_lowers[j], child_uppers[j], child_rows,
                Apos, Aneg, btol, masks,
            ):
                part.append(empty)
                stack.append(
                    (start + j, child_lowers[j], child_uppers[j], child_depth, child_rows)
                )
            else:
                part.append(child_rows)

    n = len(lowers)
    if n:
        node_lowers = np.vstack(lowers)
        node_uppers = np.vstack(uppers)
    else:  # pragma: no cover - the task root always produces children
        node_lowers = np.zeros((0, dim))
        node_uppers = np.zeros((0, dim))
    cont_offsets = np.zeros(n + 1, dtype=np.intp)
    part_offsets = np.zeros(n + 1, dtype=np.intp)
    if n:
        np.cumsum([len(c) for c in cont], out=cont_offsets[1:])
        np.cumsum([len(p) for p in part], out=part_offsets[1:])
    cont_flat = ids[np.concatenate(cont)] if n and cont_offsets[-1] else empty
    part_flat = ids[np.concatenate(part)] if n and part_offsets[-1] else empty
    return SubtreeBuildResult(
        nodes_created=n,
        splits_performed=len(events),
        lowers=node_lowers,
        uppers=node_uppers,
        events=np.asarray(events, dtype=np.intp).reshape(len(events), 3),
        containment_flat=cont_flat,
        containment_offsets=cont_offsets,
        partial_flat=part_flat,
        partial_offsets=part_offsets,
    )
