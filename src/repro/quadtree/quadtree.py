"""Augmented Quad-tree over the reduced query space (paper, Section 5.1).

The half-spaces induced by incomparable records are organised by a space
partitioning quad-tree whose leaves tile the reduced query space.  For every
node the tree records the half-spaces that *fully contain* it — excluding
those already recorded at an ancestor, to avoid redundancy — and for every
leaf additionally the half-spaces that *partially overlap* it.  A leaf is
split when its partial-overlap set exceeds a threshold.

Two sets are derived per leaf ``l``:

* ``F_l`` — half-spaces fully containing ``l`` (own set plus all ancestors');
  ``|F_l|`` lower-bounds the order of every arrangement cell inside ``l`` and
  drives the leaf pruning of BA and AA;
* ``P_l`` — half-spaces partially overlapping ``l``; they define the
  within-leaf arrangement processed by :mod:`repro.quadtree.withinleaf`.

Nodes that lie entirely outside the permissible simplex
(``Σ q_i < 1``) are discarded, as prescribed by the paper.

Performance notes
-----------------
The tree is the dominant cost of a MaxRank query at ``d ≥ 4`` (hundreds of
thousands of nodes for a few hundred half-spaces), so the hot paths are
array-level:

* splitting a leaf classifies **all** pending half-spaces against **all**
  children with two matrix products (the corner extremes of a linear
  function over a box decompose into a positive-part and a negative-part
  product);
* inserting a half-space classifies it against all children of a node at
  once instead of one scalar test per child;
* the tree maintains an incremental *scan index* — leaves bucketed by their
  last-known ``|F_l|``, re-validated lazily when popped — so the per-query
  (and, for AA, per-iteration) best-first leaf scan touches only the leaves
  that are actually competitive instead of traversing and sorting the whole
  tree.  See :func:`repro.core.cells.collect_cells`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import GeometryError
from ..geometry.halfspace import BoxRelation, Halfspace
from ..stats import CostCounters
from .build import (
    CLASSIFY_TOL as _CLASSIFY_TOL,
    COST_EVAL_FLOOR,
    SPLIT_POLICIES,
    SubtreeBuildResult,
    SubtreeBuildTask,
    cost_should_split,
)

if TYPE_CHECKING:  # pragma: no cover - annotation only (avoids an engine import cycle)
    from ..engine.executors import LeafTaskExecutor

__all__ = [
    "QuadTreeNode",
    "AugmentedQuadTree",
    "DEFAULT_SPLIT_THRESHOLD",
    "DEFAULT_MAX_DEPTH",
    "PARALLEL_MIN_ROWS",
]

#: A leaf splits when its partial-overlap set grows beyond this many half-spaces.
DEFAULT_SPLIT_THRESHOLD = 10
#: Hard depth cap: at this depth leaves absorb overflow instead of splitting.
DEFAULT_MAX_DEPTH = 8

#: A bulk insert only fans construction out to an executor when at least
#: this many half-spaces overlap the root — below that the task/merge
#: overhead exceeds the whole serial cascade.  Instance attribute
#: ``parallel_min_rows`` (initialised from this) lets tests lower the gate.
PARALLEL_MIN_ROWS = 256

#: Frontier expansion depth of a parallel build: at most this many split
#: levels are performed in-process before the remaining over-threshold
#: leaves are shipped as subtree tasks.
_FANOUT_LEVELS = 3


class QuadTreeNode:
    """One node of the augmented quad-tree."""

    __slots__ = (
        "lower",
        "upper",
        "depth",
        "parent",
        "children",
        "children_lower",
        "children_upper",
        "containment",
        "partial",
        "seq",
    )

    def __init__(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        depth: int,
        parent: Optional["QuadTreeNode"],
        seq: int = 0,
    ) -> None:
        self.lower = lower                      #: lower corner of the node's box
        self.upper = upper                      #: upper corner of the node's box
        self.depth = depth                      #: root has depth 0
        self.parent = parent
        self.children: Optional[List["QuadTreeNode"]] = None
        #: stacked children bounds, kept from the split so insertion can
        #: classify a half-space against every child with two products
        self.children_lower: Optional[np.ndarray] = None
        self.children_upper: Optional[np.ndarray] = None
        #: ids of half-spaces fully containing this node but not its parent
        self.containment: List[int] = []
        #: ids of half-spaces partially overlapping this node (leaves only)
        self.partial: List[int] = []
        #: creation sequence number (deterministic tie-break in scans)
        self.seq = seq

    @property
    def is_leaf(self) -> bool:
        """True while the node has not been split."""
        return self.children is None

    def full_ids(self) -> Set[int]:
        """``F_l``: own containment ids plus those of every ancestor."""
        ids: Set[int] = set()
        node: Optional[QuadTreeNode] = self
        while node is not None:
            ids.update(node.containment)
            node = node.parent
        return ids

    def full_count(self) -> int:
        """``|F_l|`` without materialising the id set."""
        total = 0
        node: Optional[QuadTreeNode] = self
        while node is not None:
            total += len(node.containment)
            node = node.parent
        return total

    def centre(self) -> np.ndarray:
        """Centre point of the node's box."""
        return (self.lower + self.upper) / 2.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else "internal"
        return (
            f"QuadTreeNode({kind}, depth={self.depth}, |C|={len(self.containment)}, "
            f"|P|={len(self.partial)})"
        )


class AugmentedQuadTree:
    """Augmented quad-tree holding half-spaces of the reduced query space.

    Parameters
    ----------
    dim:
        Dimensionality of the reduced query space (``d - 1``); must be >= 2
        (the 1-D case uses a sorted list instead, see
        :class:`repro.core.aa2d.SortedHalflineArrangement`).
    split_threshold:
        Maximum size of a leaf's partial-overlap set before it splits.
        ``None`` (default) selects a dimension-aware value: 10 for ``dim = 2``
        and roughly ``5·dim`` beyond, because splitting a high-dimensional
        box into ``2^dim`` children rarely reduces the partial set enough to
        pay for the extra nodes — while the batched within-leaf engine
        processes the resulting fatter leaves cheaply (and, with a process
        pool, in parallel).  Lower thresholds produce finer-grained result
        regions (cells are reported per leaf fragment); the answer ``k*``
        and the covered region are unaffected.
    max_depth:
        Depth cap; leaves at this depth grow beyond the threshold instead of
        splitting further.  ``None`` (default) selects a dimension-aware cap
        for the same reason (node count is ``O(2^(dim·depth))`` in the worst
        case).  ``0`` is legal and means the root never splits — the whole
        reduced space is one fat leaf (the ``engine="planar-global"`` mode
        builds on this); negative or non-integral values raise
        :class:`~repro.errors.GeometryError`.
    split_policy:
        ``"static"`` (default) splits a leaf whenever its partial set
        exceeds ``split_threshold``; ``"cost"`` dry-runs the child
        classification and splits only when the modelled within-leaf funnel
        work of the fat leaf exceeds the split cascade's modelled cost (see
        :func:`repro.quadtree.build.cost_should_split`).  Both policies
        produce the same ``k*`` and covered regions — only the leaf
        fragmentation (and hence construction/enumeration cost) differs.
    counters:
        Optional cost counters (half-space insertions, nodes created,
        splits performed and parallel build tasks are recorded).
    """

    def __init__(
        self,
        dim: int,
        *,
        split_threshold: Optional[int] = None,
        max_depth: Optional[int] = None,
        split_policy: str = "static",
        counters: Optional[CostCounters] = None,
    ) -> None:
        if dim < 2:
            raise GeometryError(
                "the augmented quad-tree requires a reduced space of dimension >= 2"
            )
        if split_threshold is None:
            # The default balances the cost of splitting (2^dim children per
            # split, cascading — the dominant cost of tree construction at
            # dim >= 3) against the cost of enumerating the fatter leaves a
            # higher threshold leaves behind.  With the batched, prefix-pruned
            # within-leaf engine (and its parallel executors) leaf processing
            # is no longer the bottleneck, so the threshold grows with the
            # dimension: the node count of an over-split tree explodes as
            # O(2^(dim·depth)) while the within-leaf funnel absorbs the
            # larger partial sets at a fraction of that cost.
            if dim <= 3:
                split_threshold = max(DEFAULT_SPLIT_THRESHOLD, 5 * dim)
            elif dim <= 5:
                split_threshold = 5 * dim
            else:
                split_threshold = 4 * dim
        if max_depth is None:
            if dim <= 3:
                max_depth = DEFAULT_MAX_DEPTH
            elif dim <= 5:
                max_depth = max(3, 11 - dim)
            else:
                # Splitting a >5-dimensional box produces 2^dim children and
                # rarely shrinks the partial sets; keep the tree very shallow
                # and let within-leaf enumeration (bounded by the small cell
                # orders typical at high d) do the work instead.
                max_depth = 2
        if isinstance(split_threshold, bool) or not isinstance(split_threshold, int):
            raise GeometryError(
                f"split_threshold must be an integer, got {split_threshold!r}"
            )
        if split_threshold < 2:
            # A threshold below 2 could never terminate: a split distributes
            # at least one overlapping half-space to some child, which would
            # immediately be over-threshold again at every depth.
            raise GeometryError("split_threshold must be at least 2")
        if isinstance(max_depth, bool) or not isinstance(max_depth, int):
            raise GeometryError(f"max_depth must be an integer, got {max_depth!r}")
        if max_depth < 0:
            raise GeometryError(
                f"max_depth must be non-negative (0 keeps the root as one fat "
                f"leaf), got {max_depth}"
            )
        if split_policy not in SPLIT_POLICIES:
            raise GeometryError(
                f"unknown split_policy {split_policy!r}; choose one of {SPLIT_POLICIES}"
            )
        self.dim = int(dim)
        self.split_threshold = int(split_threshold)
        self.max_depth = int(max_depth)
        self.split_policy = split_policy
        self.parallel_min_rows = PARALLEL_MIN_ROWS
        self.counters = counters
        self._node_seq = 0
        self.root = QuadTreeNode(np.zeros(dim), np.ones(dim), depth=0, parent=None, seq=0)
        self._node_seq = 1
        self.halfspaces: Dict[int, Halfspace] = {}
        self._next_id = 0
        #: Corner selection masks used to derive the 2^dim children of a box.
        corners = np.arange(2 ** self.dim)
        self._corner_masks = (
            (corners[:, None] >> np.arange(self.dim)[None, :]) & 1
        ).astype(bool)
        # Growing coefficient matrix over all inserted half-spaces; rebuilt
        # lazily so splits can slice the rows of their pending ids at once.
        self._coef_rows: List[np.ndarray] = []
        self._offsets: List[float] = []
        self._matrix: Optional[np.ndarray] = None
        self._offset_vec: Optional[np.ndarray] = None
        #: sign-split coefficient views (positive part, negative part,
        #: tolerance-shifted offsets), cached alongside the matrix so the
        #: corner-extreme classifications of splits and bulk inserts slice
        #: rows instead of recomputing the split per call
        self._matrix_pos: Optional[np.ndarray] = None
        self._matrix_neg: Optional[np.ndarray] = None
        self._offset_tol: Optional[np.ndarray] = None
        # ---- incremental scan index ----
        #: live leaves bucketed by last-known |F_l| (lazily re-validated)
        self._buckets: List[List[QuadTreeNode]] = [[self.root]]
        self._live_leaves = 1
        #: ids of leaves whose partial set changed since the last consume;
        #: tracking only starts at the first consume — before that, every
        #: consumer cache is empty anyway, so recording churn would be waste
        self._dirty_leaves: Set[int] = set()
        self._track_dirty = False

    # ------------------------------------------------------------ bookkeeping
    def halfspace(self, halfspace_id: int) -> Halfspace:
        """Return the half-space registered under ``halfspace_id``."""
        return self.halfspaces[halfspace_id]

    def leaf_partial_pairs(self, leaf: "QuadTreeNode") -> Tuple[Tuple[int, Halfspace], ...]:
        """``(id, half-space)`` pairs of a leaf's partial set, in insertion order.

        This is the half-space payload of a self-contained
        :class:`~repro.engine.tasks.LeafTask`: together with the leaf box it
        lets within-leaf processing run in a worker process without the
        tree.  The order defines the bit positions of the leaf's cell
        bit-strings, so it must stay the insertion order.
        """
        return tuple((hid, self.halfspaces[hid]) for hid in leaf.partial)

    def __len__(self) -> int:
        return len(self.halfspaces)

    @property
    def live_leaf_count(self) -> int:
        """Number of leaves currently in the tree (inside the simplex)."""
        return self._live_leaves

    def consume_dirty_leaves(self) -> Set[int]:
        """Return ids of leaves whose partial set changed since the last call.

        The ids are ``id(node)`` keys, matching the keys used by the
        cell-collection cache of :func:`repro.core.cells.collect_cells`; the
        internal set is cleared, so each change is reported exactly once.
        Tracking begins with the first call — changes made before any
        consumer existed are irrelevant, since no cache predates them.
        """
        dirty = self._dirty_leaves
        self._dirty_leaves = set()
        self._track_dirty = True
        return dirty

    def _coef_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked ``(A, b)`` over every inserted half-space (lazily rebuilt)."""
        if self._matrix is None:
            self._matrix = np.vstack(self._coef_rows)
            self._offset_vec = np.asarray(self._offsets, dtype=float)
            self._matrix_pos = np.where(self._matrix > 0, self._matrix, 0.0)
            self._matrix_neg = self._matrix - self._matrix_pos
            self._offset_tol = self._offset_vec + _CLASSIFY_TOL
        return self._matrix, self._offset_vec

    def _coef_sign_split(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(A⁺, A⁻, b + tol)`` over every inserted half-space."""
        if self._matrix is None:
            self._coef_arrays()
        return self._matrix_pos, self._matrix_neg, self._offset_tol

    @staticmethod
    def _child_major_gather(
        relation: np.ndarray, values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Group the rows a boolean ``(rows, children)`` relation selects.

        Returns ``(grouped, counts)``: ``grouped`` concatenates, child by
        child, the entries of ``values`` whose row the child's column
        selects (row order preserved within a child), and ``counts[j]`` is
        child ``j``'s group size — so child ``j`` owns the contiguous slice
        ``grouped[counts[:j].sum() : counts[:j+1].sum()]``.  One ``nonzero``
        per relation matrix replaces two boolean slices per child in the
        split/insert redistribution loops.
        """
        child_idx, row_idx = np.nonzero(relation.T)
        return values[row_idx], np.bincount(child_idx, minlength=relation.shape[1])

    @staticmethod
    def _outside_simplex(node: "QuadTreeNode") -> bool:
        """True when the node's box lies entirely outside ``Σ q_i < 1``."""
        return float(node.lower.sum()) >= 1.0

    @staticmethod
    def _classify(halfspace: Halfspace, node: "QuadTreeNode", tol: float = _CLASSIFY_TOL) -> BoxRelation:
        """Classify one half-space against one node box (corner extremes)."""
        a = halfspace.coefficients
        pos = a > 0
        min_val = float(np.where(pos, a * node.lower, a * node.upper).sum())
        max_val = float(np.where(pos, a * node.upper, a * node.lower).sum())
        offset = halfspace.offset
        if min_val > offset + tol:
            return BoxRelation.CONTAINS
        if max_val <= offset + tol:
            return BoxRelation.DISJOINT
        return BoxRelation.OVERLAPS

    # ----------------------------------------------------- scan-index plumbing
    def _file_leaf(self, leaf: QuadTreeNode, priority: int) -> None:
        """Register a live leaf in the priority bucket ``priority``."""
        buckets = self._buckets
        while len(buckets) <= priority:
            buckets.append([])
        buckets[priority].append(leaf)

    def max_bucket_priority(self) -> int:
        """Largest priority that currently has a (possibly stale) bucket entry."""
        return len(self._buckets) - 1

    def validated_bucket(self, priority: int) -> List[QuadTreeNode]:
        """Leaves whose current ``|F_l|`` equals ``priority``, lazily compacted.

        Entries are re-validated on access: nodes that were split are
        dropped, leaves whose ``|F_l|`` has grown (an ancestor gained a
        containment entry) are re-filed under their current priority — they
        will be seen again when the scan reaches it.  ``|F_l|`` never
        shrinks, so a leaf is never filed below a priority that was already
        handed out.
        """
        if priority >= len(self._buckets):
            return []
        entries = self._buckets[priority]
        if not entries:
            return []
        valid: List[QuadTreeNode] = []
        for node in entries:
            if node.children is not None:
                continue
            current = node.full_count()
            if current == priority:
                valid.append(node)
            else:
                self._file_leaf(node, current)
        self._buckets[priority] = valid
        return valid

    # --------------------------------------------------------------- insertion
    def insert(self, halfspace: Halfspace) -> int:
        """Insert a half-space and return its id."""
        if halfspace.dim != self.dim:
            raise GeometryError(
                f"half-space dimension {halfspace.dim} does not match tree dimension {self.dim}"
            )
        halfspace_id = self._next_id
        self._next_id += 1
        self.halfspaces[halfspace_id] = halfspace
        self._coef_rows.append(np.asarray(halfspace.coefficients, dtype=float))
        self._offsets.append(float(halfspace.offset))
        self._matrix = None
        if self.counters is not None:
            self.counters.halfspaces_inserted += 1
        self._insert_into(self.root, halfspace_id, halfspace)
        return halfspace_id

    def insert_bulk(
        self,
        halfspaces: Sequence[Halfspace],
        *,
        executor: "LeafTaskExecutor | None" = None,
    ) -> List[int]:
        """Insert several half-spaces with a single tree descent.

        Classifying a *batch* of half-spaces against every node's children
        amortises the per-node Python overhead over the whole batch (the
        corner-extreme classification is two matrix products either way).
        The resulting tree is identical to inserting the half-spaces one by
        one: a node's partial/containment sets depend only on box geometry,
        and a leaf splits exactly when its final partial set exceeds the
        threshold — neither depends on arrival order.

        When ``executor`` is a pool executor and this is a cold build (the
        root has never split), the descent is partitioned into independent
        :class:`~repro.quadtree.build.SubtreeBuildTask` units after a short
        frontier expansion and built by the workers; the merged tree is
        node-for-node identical to the serial build (same sequence numbers,
        same scan-index buckets — see :meth:`_renumber_and_refile`).
        """
        halfspaces = list(halfspaces)
        for halfspace in halfspaces:
            if halfspace.dim != self.dim:
                raise GeometryError(
                    f"half-space dimension {halfspace.dim} does not match "
                    f"tree dimension {self.dim}"
                )
        ids: List[int] = []
        for halfspace in halfspaces:
            halfspace_id = self._next_id
            self._next_id += 1
            self.halfspaces[halfspace_id] = halfspace
            self._coef_rows.append(np.asarray(halfspace.coefficients, dtype=float))
            self._offsets.append(float(halfspace.offset))
            ids.append(halfspace_id)
        if not ids:
            return ids
        self._matrix = None
        if self.counters is not None:
            self.counters.halfspaces_inserted += len(ids)
        Apos_all, Aneg_all, btol_all = self._coef_sign_split()
        id_arr = np.asarray(ids, dtype=np.intp)
        Apos = Apos_all[id_arr]
        Aneg = Aneg_all[id_arr]
        b_new = btol_all[id_arr]

        root = self.root
        root_min = Apos @ root.lower + Aneg @ root.upper
        root_max = Apos @ root.upper + Aneg @ root.lower
        contains = root_min > b_new
        disjoint = root_max <= b_new
        root.containment.extend(id_arr[contains].tolist())
        overlap_idx = np.nonzero(~(contains | disjoint))[0]
        if overlap_idx.size == 0:
            return ids
        if (
            executor is not None
            and not executor.inline
            and root.children is None
            and not self._track_dirty
            and overlap_idx.size >= self.parallel_min_rows
            and self.max_depth > 0
        ):
            self._insert_bulk_parallel(executor, id_arr[overlap_idx])
            return ids
        stack: List[Tuple[QuadTreeNode, np.ndarray]] = [(root, overlap_idx)]
        while stack:
            current, rows = stack.pop()
            if current.children is None:
                current.partial.extend(id_arr[rows].tolist())
                if self._track_dirty:
                    self._dirty_leaves.add(id(current))
                if self._should_split(current):
                    self._split(current)
                continue
            children = current.children
            if not children:
                continue
            cl = current.children_lower
            cu = current.children_upper
            Rp = Apos[rows]
            Rn = Aneg[rows]
            min_vals = Rp @ cl.T + Rn @ cu.T
            max_vals = Rp @ cu.T + Rn @ cl.T
            b_rows = b_new[rows][:, None]
            contains = min_vals > b_rows
            disjoint = max_vals <= b_rows
            overlaps = ~(contains | disjoint)
            contained, c_counts = self._child_major_gather(contains, id_arr[rows])
            contained_ids = contained.tolist()
            sub_rows, o_counts = self._child_major_gather(overlaps, rows)
            c_off = o_off = 0
            for j, child in enumerate(children):
                c_end = c_off + int(c_counts[j])
                if c_end > c_off:
                    child.containment.extend(contained_ids[c_off:c_end])
                c_off = c_end
                o_end = o_off + int(o_counts[j])
                if o_end > o_off:
                    stack.append((child, sub_rows[o_off:o_end]))
                o_off = o_end
        return ids

    # ------------------------------------------------- parallel construction
    def _insert_bulk_parallel(
        self, executor: "LeafTaskExecutor", overlap_ids: np.ndarray
    ) -> None:
        """Cold-build the tree below the root through the execution engine.

        The root's overlapping half-spaces are absorbed, a short in-process
        frontier expansion (at most :data:`_FANOUT_LEVELS` split levels)
        produces enough independent over-policy leaves to feed the pool, and
        each remaining frontier leaf's full cascade ships as one
        :class:`~repro.quadtree.build.SubtreeBuildTask`.  Split decisions are
        pure functions of box + pending rows, so workers grow exactly the
        subtrees the serial cascade would; :meth:`_renumber_and_refile` then
        replays the serial cascade order over the finished structure, making
        the parallel build node-for-node identical to the serial one —
        sequence numbers, ``|F_l|`` priorities and scan-index buckets
        included.
        """
        root = self.root
        root.partial.extend(overlap_ids.tolist())
        if not self._should_split(root):
            return
        jobs = int(getattr(executor, "jobs", None) or 2)
        target = max(8, 4 * jobs)
        frontier: List[Tuple[QuadTreeNode, int]] = [(root, root.full_count())]
        levels = 0
        while frontier and len(frontier) < target and levels < _FANOUT_LEVELS:
            next_frontier: List[Tuple[QuadTreeNode, int]] = []
            for node, priority in frontier:
                self._split_one(node, priority, next_frontier)
            frontier = next_frontier
            levels += 1
        counters = self.counters
        if frontier:
            matrix, _ = self._coef_arrays()
            btol = self._offset_tol
            # Tracing: worker cascades span under the enclosing
            # quadtree_build span; ids derive from frontier position, so
            # the merged tree is schedule-independent.
            tracer = counters._tracer if counters is not None else None
            build_trace = tracer.context() if tracer is not None else None
            tasks: List[SubtreeBuildTask] = []
            task_nodes: List[QuadTreeNode] = []
            for index, (node, _priority) in enumerate(frontier):
                rows = np.asarray(node.partial, dtype=np.intp)
                tasks.append(
                    SubtreeBuildTask(
                        lower=node.lower.copy(),
                        upper=node.upper.copy(),
                        depth=node.depth,
                        pending_ids=rows,
                        coefficients=matrix[rows],
                        offsets_tol=btol[rows],
                        split_threshold=self.split_threshold,
                        max_depth=self.max_depth,
                        split_policy=self.split_policy,
                        trace=build_trace,
                        trace_tag=f"B{index}",
                    )
                )
                task_nodes.append(node)
            if counters is not None:
                counters.build_tasks += len(tasks)
            results = executor.run(tasks)
            for node, result in zip(task_nodes, results):
                self._attach_subtree(node, result)
                if counters is not None:
                    counters.nodes_created += result.nodes_created
                    counters.splits_performed += result.splits_performed
                    if result.span is not None:
                        counters.record_span(result.span)
        self._renumber_and_refile()

    def _attach_subtree(self, node: QuadTreeNode, result: SubtreeBuildResult) -> None:
        """Graft a worker-built subtree (flat arrays) below a frontier leaf."""
        nodes: List[QuadTreeNode] = [node] * result.nodes_created
        lowers = result.lowers
        uppers = result.uppers
        co = result.containment_offsets
        po = result.partial_offsets
        cont_ids = result.containment_flat.tolist()
        part_ids = result.partial_flat.tolist()
        for ev in result.events:
            parent_idx = int(ev[0])
            start = int(ev[1])
            count = int(ev[2])
            parent = node if parent_idx < 0 else nodes[parent_idx]
            cl = lowers[start : start + count]
            cu = uppers[start : start + count]
            depth = parent.depth + 1
            children: List[QuadTreeNode] = []
            for j in range(count):
                i = start + j
                child = QuadTreeNode(cl[j], cu[j], depth, parent)
                if co[i] < co[i + 1]:
                    child.containment.extend(cont_ids[co[i] : co[i + 1]])
                if po[i] < po[i + 1]:
                    child.partial.extend(part_ids[po[i] : po[i + 1]])
                nodes[i] = child
                children.append(child)
            parent.partial = []
            parent.children = children
            parent.children_lower = cl
            parent.children_upper = cu

    def _renumber_and_refile(self) -> None:
        """Replay the serial cascade order over the finished tree structure.

        A cold serial build has two properties this replay relies on: a
        child ends up *internal* exactly when the cascade pushed it onto the
        LIFO split stack, and a leaf's filed priority equals its final
        ``|F_l|`` (redistribution is complete when the filing decision is
        made).  Walking the finished structure with the same LIFO discipline
        therefore reproduces the serial build's sequence numbers, its
        ``_file_leaf`` call order (hence bucket contents *and* intra-bucket
        order) and its live-leaf count — regardless of the order in which
        frontier expansion and workers actually created the nodes.
        """
        root = self.root
        self._buckets = [[root]]
        if root.children is None:
            self._node_seq = 1
            self._live_leaves = 1
            return
        seq = 1
        live = 0
        stack: List[Tuple[QuadTreeNode, int]] = [(root, len(root.containment))]
        while stack:
            node, priority = stack.pop()
            children = node.children
            for child in children:
                child.seq = seq
                seq += 1
            for child in children:
                child_priority = priority + len(child.containment)
                if child.children is not None:
                    stack.append((child, child_priority))
                else:
                    self._file_leaf(child, child_priority)
                    live += 1
        self._node_seq = seq
        self._live_leaves = live

    def replace(self, halfspace_id: int, halfspace: Halfspace) -> None:
        """Replace the half-space object stored under ``halfspace_id``.

        The geometry must be identical — this is used by AA to swap an
        augmented half-space for its singular version without touching the
        tree structure.
        """
        current = self.halfspaces[halfspace_id]
        if not np.allclose(current.coefficients, halfspace.coefficients) or not np.isclose(
            current.offset, halfspace.offset
        ):
            raise GeometryError("replace() must not change the half-space geometry")
        self.halfspaces[halfspace_id] = halfspace

    def _insert_into(self, node: QuadTreeNode, halfspace_id: int, halfspace: Halfspace) -> None:
        a = np.asarray(halfspace.coefficients, dtype=float)
        apos = np.where(a > 0, a, 0.0)
        aneg = a - apos
        offset = halfspace.offset + _CLASSIFY_TOL

        relation = self._classify(halfspace, node)
        if relation is BoxRelation.DISJOINT:
            return
        if relation is BoxRelation.CONTAINS:
            node.containment.append(halfspace_id)
            return
        stack = [node]
        while stack:
            current = stack.pop()
            if current.children is None:
                current.partial.append(halfspace_id)
                if self._track_dirty:
                    self._dirty_leaves.add(id(current))
                if self._should_split(current):
                    self._split(current)
                continue
            # Classify against every child at once: the extremes of a · x over
            # each child box decompose into positive/negative coefficient parts.
            children = current.children
            if not children:
                continue
            lowers = current.children_lower
            uppers = current.children_upper
            min_vals = lowers @ apos + uppers @ aneg
            max_vals = uppers @ apos + lowers @ aneg
            for child, mn, mx in zip(children, min_vals, max_vals):
                if mx <= offset:
                    continue
                if mn > offset:
                    child.containment.append(halfspace_id)
                else:
                    stack.append(child)

    def _should_split(self, node: QuadTreeNode) -> bool:
        """Decide whether a leaf splits, under the configured split policy.

        ``"static"`` reproduces the historical check (partial set beyond the
        threshold, depth below the cap); ``"cost"`` additionally dry-runs
        the child classification and only splits when the modelled funnel
        work of the fat leaf exceeds the modelled split cost.  The decision
        is a pure function of the leaf box and the pending rows, so worker
        processes (:func:`repro.quadtree.build.build_subtree`) reach the
        identical decision.
        """
        if node.depth >= self.max_depth:
            return False
        m = len(node.partial)
        if self.split_policy == "static":
            return m > self.split_threshold
        if m <= COST_EVAL_FLOOR:
            return False
        Apos_all, Aneg_all, btol_all = self._coef_sign_split()
        rows = np.asarray(node.partial, dtype=np.intp)
        return cost_should_split(
            node.lower,
            node.upper,
            Apos_all[rows],
            Aneg_all[rows],
            btol_all[rows],
            self._corner_masks,
        )

    def _split(self, node: QuadTreeNode) -> None:
        """Split a leaf into ``2^dim`` children and redistribute its partial set.

        The cascade is the dominant cost of building the tree at ``d ≥ 4``
        (tens of thousands of splits per query), so the body is array-level
        end to end: the corner extremes of all pending half-spaces over all
        child boxes come from two matrix products, the per-child id lists
        from one child-major ``nonzero`` gather per relation matrix (instead
        of two boolean slices per child), and the ``|F_l|`` priorities are
        carried incrementally through the cascade instead of walking the
        ancestor chain per split.  The produced tree — node order, sequence
        numbers, list contents and their order — is identical to the
        straightforward per-child version it replaced.
        """
        pending_split: List[Tuple[QuadTreeNode, int]] = [(node, node.full_count())]
        while pending_split:
            current, parent_priority = pending_split.pop()
            self._split_one(current, parent_priority, pending_split)

    def _split_one(
        self,
        current: QuadTreeNode,
        parent_priority: int,
        overflow: List[Tuple[QuadTreeNode, int]],
    ) -> None:
        """Perform one split event; over-policy children go to ``overflow``.

        Shared by the serial cascade (:meth:`_split`, where ``overflow`` is
        the LIFO cascade stack) and the frontier expansion of a parallel
        build (where ``overflow`` collects the next fan-out level).
        """
        masks = self._corner_masks
        centre = (current.lower + current.upper) / 2.0
        child_lowers = np.where(masks, centre, current.lower)
        child_uppers = np.where(masks, current.upper, centre)
        inside = child_lowers.sum(axis=1) < 1.0
        children: List[QuadTreeNode] = []
        seq = self._node_seq
        depth = current.depth + 1
        inside_idx = np.nonzero(inside)[0]
        child_lowers = child_lowers[inside_idx]
        child_uppers = child_uppers[inside_idx]
        for j in range(inside_idx.shape[0]):
            child = QuadTreeNode(child_lowers[j], child_uppers[j], depth, current, seq)
            seq += 1
            children.append(child)
        self._node_seq = seq
        pending = current.partial
        current.partial = []
        current.children = children
        current.children_lower = child_lowers
        current.children_upper = child_uppers
        self._live_leaves += len(children) - 1
        counters = self.counters
        if counters is not None:
            counters.splits_performed += 1
            counters.nodes_created += len(children)
        if self._track_dirty:
            # Report the split leaf as dirty so scan caches evict its
            # (now stale) within-leaf state; the node is internal from
            # here on and will never re-enter a cache.
            self._dirty_leaves.add(id(current))
        if not children:
            return
        if not pending:
            for child in children:
                self._file_leaf(child, parent_priority)
            return
        # Vectorised redistribution: corner extremes of every pending
        # half-space over every child box via two matrix products each.
        Apos_all, Aneg_all, btol_all = self._coef_sign_split()
        pending_arr = np.asarray(pending, dtype=np.intp)
        Apos = Apos_all[pending_arr]
        Aneg = Aneg_all[pending_arr]
        b_pending = btol_all[pending_arr]
        min_vals = Apos @ child_lowers.T + Aneg @ child_uppers.T
        max_vals = Apos @ child_uppers.T + Aneg @ child_lowers.T
        contains = min_vals > b_pending[:, None]
        disjoint = max_vals <= b_pending[:, None]
        overlaps = ~(contains | disjoint)
        contained, c_counts = self._child_major_gather(contains, pending_arr)
        contained_ids = contained.tolist()
        overlap, o_counts = self._child_major_gather(overlaps, pending_arr)
        overlap_ids = overlap.tolist()
        track = self._track_dirty
        c_off = o_off = 0
        for j, child in enumerate(children):
            c_end = c_off + int(c_counts[j])
            if c_end > c_off:
                child.containment.extend(contained_ids[c_off:c_end])
            c_off = c_end
            o_end = o_off + int(o_counts[j])
            if o_end > o_off:
                child.partial.extend(overlap_ids[o_off:o_end])
                if track:
                    self._dirty_leaves.add(id(child))
            o_off = o_end
            if self._should_split(child):
                overflow.append((child, parent_priority + len(child.containment)))
            else:
                self._file_leaf(child, parent_priority + len(child.containment))

    # ----------------------------------------------------------------- queries
    def leaves(self) -> Iterator[QuadTreeNode]:
        """Iterate over all leaves inside the permissible simplex."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.extend(node.children)

    def leaf_count(self) -> int:
        """Number of leaves (inside the simplex)."""
        return sum(1 for _ in self.leaves())

    def leaves_by_containment(self) -> List[Tuple[QuadTreeNode, int]]:
        """Return ``(leaf, |F_l|)`` pairs sorted by increasing ``|F_l|``.

        Reference implementation of the BA/AA processing order: a leaf whose
        full-containment cardinality already exceeds the best cell order
        found so far can be pruned without within-leaf processing.  The
        best-first scan of :func:`repro.core.cells.collect_cells` uses the
        incremental bucket index (:meth:`validated_bucket`) instead, which
        avoids materialising and sorting this list on every AA iteration;
        this method remains as the exact, traversal-based view used by tests
        and one-off statistics.
        """
        annotated: List[Tuple[QuadTreeNode, int]] = []
        stack: List[Tuple[QuadTreeNode, int]] = [(self.root, 0)]
        while stack:
            node, inherited = stack.pop()
            total = inherited + len(node.containment)
            if node.is_leaf:
                annotated.append((node, total))
            else:
                stack.extend((child, total) for child in node.children)
        annotated.sort(key=lambda pair: pair[1])
        return annotated

    def statistics(self) -> Dict[str, float]:
        """Structural statistics used by the benchmark reports."""
        leaf_partial_sizes = []
        leaf_count = 0
        max_depth = 0
        for leaf in self.leaves():
            leaf_count += 1
            leaf_partial_sizes.append(len(leaf.partial))
            max_depth = max(max_depth, leaf.depth)
        return {
            "halfspaces": float(len(self.halfspaces)),
            "leaves": float(leaf_count),
            "max_depth": float(max_depth),
            "mean_partial": float(np.mean(leaf_partial_sizes)) if leaf_partial_sizes else 0.0,
            "max_partial": float(np.max(leaf_partial_sizes)) if leaf_partial_sizes else 0.0,
        }
