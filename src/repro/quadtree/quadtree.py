"""Augmented Quad-tree over the reduced query space (paper, Section 5.1).

The half-spaces induced by incomparable records are organised by a space
partitioning quad-tree whose leaves tile the reduced query space.  For every
node the tree records the half-spaces that *fully contain* it — excluding
those already recorded at an ancestor, to avoid redundancy — and for every
leaf additionally the half-spaces that *partially overlap* it.  A leaf is
split when its partial-overlap set exceeds a threshold.

Two sets are derived per leaf ``l``:

* ``F_l`` — half-spaces fully containing ``l`` (own set plus all ancestors');
  ``|F_l|`` lower-bounds the order of every arrangement cell inside ``l`` and
  drives the leaf pruning of BA and AA;
* ``P_l`` — half-spaces partially overlapping ``l``; they define the
  within-leaf arrangement processed by :mod:`repro.quadtree.withinleaf`.

Nodes that lie entirely outside the permissible simplex
(``Σ q_i < 1``) are discarded, as prescribed by the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from ..errors import GeometryError
from ..geometry.halfspace import BoxRelation, Halfspace
from ..stats import CostCounters

__all__ = ["QuadTreeNode", "AugmentedQuadTree", "DEFAULT_SPLIT_THRESHOLD", "DEFAULT_MAX_DEPTH"]

#: A leaf splits when its partial-overlap set grows beyond this many half-spaces.
DEFAULT_SPLIT_THRESHOLD = 10
#: Hard depth cap: at this depth leaves absorb overflow instead of splitting.
DEFAULT_MAX_DEPTH = 8


class QuadTreeNode:
    """One node of the augmented quad-tree."""

    __slots__ = (
        "lower",
        "upper",
        "lower_t",
        "upper_t",
        "depth",
        "parent",
        "children",
        "containment",
        "partial",
    )

    def __init__(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        depth: int,
        parent: Optional["QuadTreeNode"],
    ) -> None:
        self.lower = lower                      #: lower corner of the node's box
        self.upper = upper                      #: upper corner of the node's box
        self.lower_t = tuple(float(v) for v in lower)   #: tuple copy for scalar hot paths
        self.upper_t = tuple(float(v) for v in upper)
        self.depth = depth                      #: root has depth 0
        self.parent = parent
        self.children: Optional[List["QuadTreeNode"]] = None
        #: ids of half-spaces fully containing this node but not its parent
        self.containment: List[int] = []
        #: ids of half-spaces partially overlapping this node (leaves only)
        self.partial: List[int] = []

    @property
    def is_leaf(self) -> bool:
        """True while the node has not been split."""
        return self.children is None

    def full_ids(self) -> Set[int]:
        """``F_l``: own containment ids plus those of every ancestor."""
        ids: Set[int] = set()
        node: Optional[QuadTreeNode] = self
        while node is not None:
            ids.update(node.containment)
            node = node.parent
        return ids

    def full_count(self) -> int:
        """``|F_l|`` without materialising the id set."""
        total = 0
        node: Optional[QuadTreeNode] = self
        while node is not None:
            total += len(node.containment)
            node = node.parent
        return total

    def centre(self) -> np.ndarray:
        """Centre point of the node's box."""
        return (self.lower + self.upper) / 2.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else "internal"
        return (
            f"QuadTreeNode({kind}, depth={self.depth}, |C|={len(self.containment)}, "
            f"|P|={len(self.partial)})"
        )


class AugmentedQuadTree:
    """Augmented quad-tree holding half-spaces of the reduced query space.

    Parameters
    ----------
    dim:
        Dimensionality of the reduced query space (``d - 1``); must be >= 2
        (the 1-D case uses a sorted list instead, see
        :class:`repro.core.aa2d.SortedHalflineArrangement`).
    split_threshold:
        Maximum size of a leaf's partial-overlap set before it splits.
        ``None`` (default) selects a dimension-aware value: 10 for low
        dimensions, growing with ``dim`` because splitting a high-dimensional
        box into ``2^dim`` children rarely reduces the partial set enough to
        pay for the extra nodes.
    max_depth:
        Depth cap; leaves at this depth grow beyond the threshold instead of
        splitting further.  ``None`` (default) selects a dimension-aware cap
        for the same reason (node count is ``O(2^(dim·depth))`` in the worst
        case).
    counters:
        Optional cost counters (half-space insertions are recorded).
    """

    def __init__(
        self,
        dim: int,
        *,
        split_threshold: Optional[int] = None,
        max_depth: Optional[int] = None,
        counters: Optional[CostCounters] = None,
    ) -> None:
        if dim < 2:
            raise GeometryError(
                "the augmented quad-tree requires a reduced space of dimension >= 2"
            )
        if split_threshold is None:
            if dim <= 5:
                split_threshold = max(DEFAULT_SPLIT_THRESHOLD, 2 * dim)
            else:
                split_threshold = 4 * dim
        if max_depth is None:
            if dim <= 3:
                max_depth = DEFAULT_MAX_DEPTH
            elif dim <= 5:
                max_depth = max(3, 11 - dim)
            else:
                # Splitting a >5-dimensional box produces 2^dim children and
                # rarely shrinks the partial sets; keep the tree very shallow
                # and let within-leaf enumeration (bounded by the small cell
                # orders typical at high d) do the work instead.
                max_depth = 2
        if split_threshold < 2:
            raise GeometryError("split_threshold must be at least 2")
        self.dim = int(dim)
        self.split_threshold = int(split_threshold)
        self.max_depth = int(max_depth)
        self.counters = counters
        self.root = QuadTreeNode(np.zeros(dim), np.ones(dim), depth=0, parent=None)
        self.halfspaces: Dict[int, Halfspace] = {}
        self._next_id = 0

    # ------------------------------------------------------------ bookkeeping
    def halfspace(self, halfspace_id: int) -> Halfspace:
        """Return the half-space registered under ``halfspace_id``."""
        return self.halfspaces[halfspace_id]

    def __len__(self) -> int:
        return len(self.halfspaces)

    @staticmethod
    def _outside_simplex(node: "QuadTreeNode") -> bool:
        """True when the node's box lies entirely outside ``Σ q_i < 1``."""
        return sum(node.lower_t) >= 1.0

    @staticmethod
    def _classify(halfspace: Halfspace, node: "QuadTreeNode", tol: float = 1e-9) -> BoxRelation:
        """Cheap scalar version of :meth:`Halfspace.relation_to_box`.

        Insertion and splitting classify the same half-space against very many
        small boxes; plain float arithmetic avoids the per-call overhead of the
        numpy implementation while computing exactly the same corner extremes.
        """
        min_val = 0.0
        max_val = 0.0
        lower = node.lower_t
        upper = node.upper_t
        for coefficient, lo, hi in zip(halfspace.coefficients_t, lower, upper):
            if coefficient > 0.0:
                min_val += coefficient * lo
                max_val += coefficient * hi
            else:
                min_val += coefficient * hi
                max_val += coefficient * lo
        offset = halfspace.offset
        if min_val > offset + tol:
            return BoxRelation.CONTAINS
        if max_val <= offset + tol:
            return BoxRelation.DISJOINT
        return BoxRelation.OVERLAPS

    # --------------------------------------------------------------- insertion
    def insert(self, halfspace: Halfspace) -> int:
        """Insert a half-space and return its id."""
        if halfspace.dim != self.dim:
            raise GeometryError(
                f"half-space dimension {halfspace.dim} does not match tree dimension {self.dim}"
            )
        halfspace_id = self._next_id
        self._next_id += 1
        self.halfspaces[halfspace_id] = halfspace
        if self.counters is not None:
            self.counters.halfspaces_inserted += 1
        self._insert_into(self.root, halfspace_id, halfspace)
        return halfspace_id

    def replace(self, halfspace_id: int, halfspace: Halfspace) -> None:
        """Replace the half-space object stored under ``halfspace_id``.

        The geometry must be identical — this is used by AA to swap an
        augmented half-space for its singular version without touching the
        tree structure.
        """
        current = self.halfspaces[halfspace_id]
        if not np.allclose(current.coefficients, halfspace.coefficients) or not np.isclose(
            current.offset, halfspace.offset
        ):
            raise GeometryError("replace() must not change the half-space geometry")
        self.halfspaces[halfspace_id] = halfspace

    def _insert_into(self, node: QuadTreeNode, halfspace_id: int, halfspace: Halfspace) -> None:
        stack = [node]
        while stack:
            current = stack.pop()
            if self._outside_simplex(current):
                continue
            relation = self._classify(halfspace, current)
            if relation is BoxRelation.DISJOINT:
                continue
            if relation is BoxRelation.CONTAINS:
                current.containment.append(halfspace_id)
                continue
            if current.is_leaf:
                current.partial.append(halfspace_id)
                if (
                    len(current.partial) > self.split_threshold
                    and current.depth < self.max_depth
                ):
                    self._split(current)
                continue
            stack.extend(current.children)

    def _split(self, node: QuadTreeNode) -> None:
        """Split a leaf into ``2^dim`` children and redistribute its partial set."""
        pending_split = [node]
        while pending_split:
            current = pending_split.pop()
            centre = current.centre()
            children: List[QuadTreeNode] = []
            for corner in range(2 ** self.dim):
                lower = current.lower.copy()
                upper = current.upper.copy()
                for axis in range(self.dim):
                    if corner >> axis & 1:
                        lower[axis] = centre[axis]
                    else:
                        upper[axis] = centre[axis]
                child = QuadTreeNode(lower, upper, depth=current.depth + 1, parent=current)
                if self._outside_simplex(child):
                    continue
                children.append(child)
            pending = list(current.partial)
            current.partial = []
            current.children = children
            if not pending or not children:
                continue
            # Vectorised redistribution: classify every pending half-space
            # against every child box in a handful of array operations.
            A = np.vstack([self.halfspaces[hid].coefficients for hid in pending])
            b = np.array([self.halfspaces[hid].offset for hid in pending])
            positive = A > 0
            for child in children:
                min_vals = np.where(positive, A * child.lower, A * child.upper).sum(axis=1)
                max_vals = np.where(positive, A * child.upper, A * child.lower).sum(axis=1)
                contains = min_vals > b + 1e-9
                disjoint = max_vals <= b + 1e-9
                overlaps = ~(contains | disjoint)
                child.containment.extend(
                    hid for hid, keep in zip(pending, contains) if keep
                )
                child.partial.extend(hid for hid, keep in zip(pending, overlaps) if keep)
                if (
                    len(child.partial) > self.split_threshold
                    and child.depth < self.max_depth
                ):
                    pending_split.append(child)

    # ----------------------------------------------------------------- queries
    def leaves(self) -> Iterator[QuadTreeNode]:
        """Iterate over all leaves inside the permissible simplex."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if self._outside_simplex(node):
                continue
            if node.is_leaf:
                yield node
            else:
                stack.extend(node.children)

    def leaf_count(self) -> int:
        """Number of leaves (inside the simplex)."""
        return sum(1 for _ in self.leaves())

    def leaves_by_containment(self) -> List[Tuple[QuadTreeNode, int]]:
        """Return ``(leaf, |F_l|)`` pairs sorted by increasing ``|F_l|``.

        This is the processing order of BA and of every AA iteration: a leaf
        whose full-containment cardinality already exceeds the best cell
        order found so far can be pruned without within-leaf processing.  The
        full id *sets* are only materialised (via ``leaf.full_ids()``) for
        the leaves the caller actually processes; carrying bare counts keeps
        the per-scan bookkeeping linear and cheap even for very deep trees.
        """
        annotated: List[Tuple[QuadTreeNode, int]] = []
        stack: List[Tuple[QuadTreeNode, int]] = [(self.root, 0)]
        while stack:
            node, inherited = stack.pop()
            if self._outside_simplex(node):
                continue
            total = inherited + len(node.containment)
            if node.is_leaf:
                annotated.append((node, total))
            else:
                stack.extend((child, total) for child in node.children)
        annotated.sort(key=lambda pair: pair[1])
        return annotated

    def statistics(self) -> Dict[str, float]:
        """Structural statistics used by the benchmark reports."""
        leaf_partial_sizes = []
        leaf_count = 0
        max_depth = 0
        for leaf in self.leaves():
            leaf_count += 1
            leaf_partial_sizes.append(len(leaf.partial))
            max_depth = max(max_depth, leaf.depth)
        return {
            "halfspaces": float(len(self.halfspaces)),
            "leaves": float(leaf_count),
            "max_depth": float(max_depth),
            "mean_partial": float(np.mean(leaf_partial_sizes)) if leaf_partial_sizes else 0.0,
            "max_partial": float(np.max(leaf_partial_sizes)) if leaf_partial_sizes else 0.0,
        }
