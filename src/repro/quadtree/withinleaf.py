"""Within-leaf processing (paper, Section 5.2).

Inside one quad-tree leaf, the half-spaces of the leaf's partial-overlap set
``P_l`` define a constrained arrangement.  Every cell of that arrangement is
identified by a bit-string over ``P_l``: bit ``i`` is 1 when the cell lies
inside the ``i``-th half-space and 0 when it lies in its complement.  The
cell's *p-order* is the Hamming weight of its bit-string; its (global) order
is the p-order plus ``|F_l|``.

The module enumerates bit-strings in increasing Hamming weight and tests
each candidate cell for a non-empty interior (intersection of the selected
half-spaces / complements, the leaf box and the permissible-simplex
constraints).  The first weight at which a non-empty cell appears is the
minimum p-order of the leaf; all non-empty cells of that weight (plus up to
``extra`` additional weights, for iMaxRank) are reported.

Feasibility is resolved through a batched screen→LP funnel
(:func:`repro.geometry.lp.screen_cells_batch`): all candidate bit-strings of
one weight are generated as a sign matrix, a vectorised reject screen kills
rows unsatisfiable anywhere in the leaf, a panel of probe points (leaf
centre, perturbed corners, witness points found earlier — including those
inherited from a previous processor of the same leaf via ``seed_probes``)
certifies non-empty cells by sign-pattern matching, and only the cells
resolved by neither screen fall through to a per-cell Seidel LP.  The
screens use a safety margin above the LP's feasibility radius, so the
decisions are identical to running the LP on every cell.

Two optimisations from the paper are implemented on top:

* **pairwise binary constraints** — pairs of half-spaces that are disjoint,
  nested or jointly covering within the leaf forbid certain bit
  combinations; violating bit-strings are dismissed without a feasibility
  test.  The pair analysis is LP-free: each two-constraint feasibility over
  the leaf box is solved in closed form by a vectorised fractional-knapsack
  maximisation, for all pairs and orientations at once (instead of the
  former four LPs per pair);
* an exact **polygon-clipping fast path** for the 2-dimensional reduced
  query space (data dimensionality 3), which avoids the LP entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations, islice
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..geometry.clipping import MIN_AREA, box_polygon, clip_polygon, polygon_area, polygon_centroid
from ..geometry.halfspace import Halfspace, reduced_space_constraints
from ..geometry.lp import (
    ACCEPT_MARGIN_FACTOR,
    MIN_INTERIOR_RADIUS,
    find_interior_point_arrays,
    screen_cells_batch,
)
from ..stats import CostCounters

__all__ = ["LeafCell", "WithinLeafProcessor", "PairwiseConstraints"]

#: Cap on the number of probe points a processor keeps (centre + corners +
#: inherited seeds + accumulated LP witnesses).
_MAX_PROBES = 192


@dataclass(frozen=True)
class LeafCell:
    """A non-empty cell found inside a quad-tree leaf.

    Attributes
    ----------
    bits:
        0/1 flags aligned with the processor's partial half-space ids.
    inside_ids:
        Ids of the partial half-spaces containing the cell (bit = 1).
    p_order:
        Hamming weight of ``bits``.
    interior_point:
        Witness point strictly inside the cell (reduced query space).
    """

    bits: Tuple[int, ...]
    inside_ids: Tuple[int, ...]
    p_order: int
    interior_point: np.ndarray


def _pair_combo_feasible(
    u: np.ndarray,
    c: np.ndarray,
    v: np.ndarray,
    d: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> np.ndarray:
    """Vectorised exact feasibility of two linear constraints over a box.

    For every row ``r`` decides whether ``{x ∈ [lower, upper] :
    u_r · x ≥ c_r and v_r · x > d_r}`` is non-empty, by solving the LP
    ``max v_r · x  s.t.  u_r · x ≥ c_r`` in closed form: start from the
    ``v``-optimal box corner and, if it violates the ``u`` constraint, buy
    back the deficit coordinate-by-coordinate in increasing order of the
    exchange rate ``|v_k| / u-gain`` — the fractional-knapsack structure of a
    single-constraint LP over a box.  All rows are processed at once with a
    per-row ``argsort`` over the (at most 7) coordinates.
    """
    x_star = np.where(v > 0, upper, lower)
    other = np.where(v > 0, lower, upper)
    v_at = np.einsum("rk,rk->r", v, x_star)
    u_at = np.einsum("rk,rk->r", u, x_star)
    need = np.maximum(c - u_at, 0.0)
    gain = np.maximum(u * (other - x_star), 0.0)
    movable = gain > 0
    loss = np.where(movable, np.abs(v) * (upper - lower), 0.0)
    rate = np.where(movable, loss / np.where(movable, gain, 1.0), np.inf)
    order = np.argsort(rate, axis=1)
    gain_sorted = np.take_along_axis(gain, order, axis=1)
    loss_sorted = np.take_along_axis(loss, order, axis=1)
    cum_gain = np.cumsum(gain_sorted, axis=1)
    total_gain = cum_gain[:, -1]
    prev_cum = np.concatenate(
        [np.zeros((gain.shape[0], 1)), cum_gain[:, :-1]], axis=1
    )
    fraction = np.clip(
        (need[:, None] - prev_cum) / np.where(gain_sorted > 0, gain_sorted, 1.0),
        0.0,
        1.0,
    )
    fraction = np.where(gain_sorted > 0, fraction, 0.0)
    best_v = v_at - (loss_sorted * fraction).sum(axis=1)
    return (total_gain >= need) & (best_v > d)


class PairwiseConstraints:
    """Forbidden bit combinations between pairs of partial half-spaces.

    For every pair ``(i, j)`` the four bit combinations are tested for
    feasibility within the leaf box; infeasible combinations become forbidden
    patterns consulted before any full feasibility test.  This subsumes the
    paper's three containment statuses (disjoint / nested / covering) and is
    also sound when the two supporting hyperplanes do intersect inside the
    leaf (in which case all four combinations are feasible and nothing is
    forbidden).

    The analysis is LP-free: a two-constraint system over a box reduces to a
    closed-form fractional-knapsack maximisation
    (:func:`_pair_combo_feasible`), evaluated for all pairs and all four
    orientations in a handful of array operations.  The test relaxes the
    permissible-simplex cut (it considers the box alone), so it forbids a
    subset of what an exact LP with the base constraints would — pruning
    stays sound, it just occasionally lets a doomed candidate through to the
    cell screens.
    """

    def __init__(self) -> None:
        self._forbidden: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {}

    @classmethod
    def build(
        cls,
        halfspaces: Sequence[Tuple[int, Halfspace]],
        lower: np.ndarray,
        upper: np.ndarray,
        base_constraints: Sequence[Halfspace] = (),
        *,
        counters: Optional[CostCounters] = None,
    ) -> "PairwiseConstraints":
        """Analyse every pair of partial half-spaces within the leaf box."""
        constraints = cls()
        m = len(halfspaces)
        if m < 2:
            return constraints
        lower = np.asarray(lower, dtype=float).ravel()
        upper = np.asarray(upper, dtype=float).ravel()
        A = np.vstack([h.coefficients for _, h in halfspaces])
        b = np.array([h.offset for _, h in halfspaces], dtype=float)
        norms = np.sqrt(np.einsum("ij,ij->i", A, A))
        norms = np.where(norms > 0, norms, 1.0)
        #: right-hand sides including the inscribed-radius margin, per
        #: orientation: sign s turns ``a · x > b`` into ``(s a) · x > s b``.
        margin = MIN_INTERIOR_RADIUS * norms

        pair_idx = np.array(list(combinations(range(m), 2)), dtype=np.intp)
        i_idx, j_idx = pair_idx[:, 0], pair_idx[:, 1]
        results = {}
        for bit_i in (0, 1):
            s_i = 1.0 if bit_i else -1.0
            u = s_i * A[i_idx]
            c = s_i * b[i_idx] + margin[i_idx]
            for bit_j in (0, 1):
                s_j = 1.0 if bit_j else -1.0
                v = s_j * A[j_idx]
                d = s_j * b[j_idx] + margin[j_idx]
                results[(bit_i, bit_j)] = _pair_combo_feasible(
                    u, c, v, d, lower, upper
                )
        for row, (pos_i, pos_j) in enumerate(pair_idx):
            forbidden = {
                combo
                for combo, feasible in results.items()
                if not feasible[row]
            }
            if forbidden:
                constraints._forbidden[(int(pos_i), int(pos_j))] = forbidden
        return constraints

    def violates(self, bits: Sequence[int]) -> bool:
        """True when ``bits`` matches a forbidden combination for some pair."""
        for (pos_i, pos_j), forbidden in self._forbidden.items():
            if (bits[pos_i], bits[pos_j]) in forbidden:
                return True
        return False

    def violation_mask(self, bit_matrix: np.ndarray) -> np.ndarray:
        """Boolean mask over the rows of ``bit_matrix`` violating some pair."""
        mask = np.zeros(bit_matrix.shape[0], dtype=bool)
        for (pos_i, pos_j), forbidden in self._forbidden.items():
            col_i = bit_matrix[:, pos_i]
            col_j = bit_matrix[:, pos_j]
            for bit_i, bit_j in forbidden:
                mask |= (col_i == bit_i) & (col_j == bit_j)
        return mask

    def __len__(self) -> int:
        return len(self._forbidden)


class WithinLeafProcessor:
    """Enumerates the minimum-order cells inside one quad-tree leaf.

    Parameters
    ----------
    lower, upper:
        Leaf extent in the reduced query space.
    partial:
        ``(halfspace_id, halfspace)`` pairs of the leaf's partial-overlap set.
    use_pairwise:
        Enable the pairwise-constraint pruning (ablation A1 switches this
        off).  The analysis is only performed when the partial set is large
        enough for it to pay off.
    pairwise_min_size:
        Minimum ``|P_l|`` at which the pairwise analysis is carried out.
    counters:
        Optional cost counters (cells examined, LP calls, screen hits).
    seed_probes:
        Witness points inherited from a previous processor of the same leaf
        (AA re-scans after the partial set grew); they are added to the
        accept-screen probe panel, so cells already discovered in an earlier
        iteration are re-certified without any LP.
    """

    def __init__(
        self,
        lower: Sequence[float] | np.ndarray,
        upper: Sequence[float] | np.ndarray,
        partial: Sequence[Tuple[int, Halfspace]],
        *,
        use_pairwise: bool = True,
        pairwise_min_size: int = 6,
        counters: Optional[CostCounters] = None,
        seed_probes: Optional[Sequence[np.ndarray]] = None,
    ) -> None:
        self.lower = np.asarray(lower, dtype=float).ravel()
        self.upper = np.asarray(upper, dtype=float).ravel()
        self.partial = list(partial)
        self.dim = self.lower.shape[0]
        self.counters = counters
        self._base = reduced_space_constraints(self.dim)
        # Pre-stacked coefficient arrays: the feasibility tests flip the signs
        # of individual rows per bit-string instead of rebuilding half-space
        # objects, which keeps the per-cell cost to a few vector operations.
        self._base_A = np.vstack([h.coefficients for h in self._base])
        self._base_b = np.array([h.offset for h in self._base], dtype=float)
        if self.partial:
            self._partial_A = np.vstack([h.coefficients for _, h in self.partial])
            self._partial_b = np.array([h.offset for _, h in self.partial], dtype=float)
            norms = np.sqrt(np.einsum("ij,ij->i", self._partial_A, self._partial_A))
            self._partial_norms = np.where(norms > 0, norms, 1.0)
        else:
            self._partial_A = np.zeros((0, self.dim))
            self._partial_b = np.zeros(0)
            self._partial_norms = np.ones(0)
        if self.dim == 2:
            self._oriented = [
                (halfspace, halfspace.complement()) for _, halfspace in self.partial
            ]
        # Probe panel: leaf centre first (mirrors the solver's quick accept),
        # then inward-shrunk corners, then inherited witness points.
        self._probe_points: List[np.ndarray] = list(self._default_probes())
        if seed_probes:
            for point in seed_probes:
                if len(self._probe_points) >= _MAX_PROBES:
                    break
                self._probe_points.append(np.asarray(point, dtype=float))
        self._seed_count = len(self._probe_points)
        self._probe_cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._pairwise: Optional[PairwiseConstraints] = None
        if use_pairwise and len(self.partial) >= pairwise_min_size:
            self._pairwise = PairwiseConstraints.build(
                self.partial, self.lower, self.upper, self._base,
                counters=counters,
            )

    # --------------------------------------------------------------- plumbing
    def _default_probes(self) -> List[np.ndarray]:
        """Deterministic spread of probe points inside the leaf box."""
        centre = (self.lower + self.upper) / 2.0
        points = [centre]
        extent = self.upper - self.lower
        if np.any(extent <= 0):
            return points
        # Two rings of corner probes: mildly shrunk ({1/4, 3/4} of the extent
        # per axis, covering the bulk of each orthant) and near-corner
        # ({1/20, 19/20}, capturing the extreme regions that certify pairwise
        # orientation combinations).  Beyond 5 dimensions take a
        # deterministic subset to bound the panel size.
        corner_count = min(2 ** self.dim, 32)
        axes = np.arange(self.dim)
        for corner in range(corner_count):
            bits = (corner >> axes) & 1
            points.append(self.lower + np.where(bits, 0.75, 0.25) * extent)
            points.append(self.lower + np.where(bits, 0.95, 0.05) * extent)
        return points

    def witness_probes(self) -> List[np.ndarray]:
        """Witness points accumulated beyond the deterministic panel.

        Used to seed the replacement processor when the leaf's partial set
        grows: the inherited witnesses remain interior points of cells of the
        refined arrangement.
        """
        return self._probe_points[self._seed_count:]

    def _add_probe(self, point: np.ndarray) -> None:
        if len(self._probe_points) >= _MAX_PROBES:
            return
        self._probe_points.append(point)
        self._probe_cache = None

    def _probe_panel(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(points, normalised margins, validity)`` of the panel.

        Margins are per partial row, normalised by the row norm so they
        compare directly against the inscribed-radius thresholds; validity
        requires clearance from the box walls and the base (simplex)
        constraints, mirroring the solver's quick-accept conditions.
        """
        if self._probe_cache is None:
            P = np.asarray(self._probe_points, dtype=float)
            threshold = ACCEPT_MARGIN_FACTOR * MIN_INTERIOR_RADIUS
            valid = np.minimum(P - self.lower, self.upper - P).min(axis=1) > threshold
            base_norms = np.sqrt(np.einsum("ij,ij->i", self._base_A, self._base_A))
            base_norms = np.where(base_norms > 0, base_norms, 1.0)
            base_margin = (self._base_A @ P.T - self._base_b[:, None]) / base_norms[:, None]
            valid &= (base_margin > threshold).all(axis=0)
            if self.partial:
                margins = (
                    self._partial_A @ P.T - self._partial_b[:, None]
                ) / self._partial_norms[:, None]
            else:
                margins = np.zeros((0, P.shape[0]))
            self._probe_cache = (P, margins, valid)
        return self._probe_cache

    def _bits_for(self, ones: Sequence[int]) -> Tuple[int, ...]:
        bits = [0] * len(self.partial)
        for position in ones:
            bits[position] = 1
        return tuple(bits)

    def _test_cell(self, bits: Tuple[int, ...]) -> Optional[np.ndarray]:
        """Return an interior point of the cell, or None when it is empty."""
        if self.counters is not None:
            self.counters.cells_examined += 1
        if self.dim == 2:
            point = self._test_cell_clipping(bits)
        else:
            point = self._test_cell_lp(bits)
        if point is not None and self.counters is not None:
            self.counters.nonempty_cells += 1
        return point

    def _test_cell_lp(self, bits: Tuple[int, ...]) -> Optional[np.ndarray]:
        """LP-based feasibility using the pre-stacked constraint arrays."""
        if self.partial:
            signs = np.where(np.asarray(bits, dtype=bool), 1.0, -1.0)
            A = np.vstack([self._base_A, self._partial_A * signs[:, None]])
            b = np.concatenate([self._base_b, self._partial_b * signs])
        else:
            A, b = self._base_A, self._base_b
        result = find_interior_point_arrays(
            A, b, self.lower, self.upper, counters=self.counters
        )
        return result.point if result.feasible else None

    def _test_cell_clipping(self, bits: Tuple[int, ...]) -> Optional[np.ndarray]:
        """Exact polygon-clipping feasibility for the 2-D reduced space."""
        polygon = box_polygon(self.lower, self.upper)
        for constraint in self._base:
            polygon = clip_polygon(polygon, constraint)
            if polygon is None:
                return None
        for (inside, outside), bit in zip(self._oriented, bits):
            polygon = clip_polygon(polygon, inside if bit else outside)
            if polygon is None:
                return None
        if polygon_area(polygon) <= max(MIN_AREA, 1e-14):
            return None
        return polygon_centroid(polygon)

    # ------------------------------------------------------------ enumeration
    #: Candidates processed per vectorised batch; bounds the bit-matrix
    #: memory when a leaf's C(m, w) runs into the millions.
    _CHUNK = 32768

    def cells_at_weight(self, weight: int) -> List[LeafCell]:
        """All non-empty cells of Hamming weight exactly ``weight``."""
        m = len(self.partial)
        if m == 0 or self.dim == 2:
            return self._cells_at_weight_sequential(weight)
        iterator = combinations(range(m), weight)
        cells: List[LeafCell] = []
        pairwise = self._pairwise if (self._pairwise and len(self._pairwise)) else None
        while True:
            chunk = list(islice(iterator, self._CHUNK))
            if not chunk:
                break
            bit_matrix = np.zeros((len(chunk), m), dtype=np.int8)
            if weight:
                rows = np.repeat(np.arange(len(chunk)), weight)
                cols = np.fromiter(
                    chain.from_iterable(chunk), dtype=np.intp, count=len(chunk) * weight
                )
                bit_matrix[rows, cols] = 1
            combos = chunk
            if pairwise is not None:
                keep = ~pairwise.violation_mask(bit_matrix)
                if self.counters is not None:
                    self.counters.pairwise_pruned += int(np.count_nonzero(~keep))
                if not keep.all():
                    combos = [ones for ones, flag in zip(chunk, keep) if flag]
                    bit_matrix = bit_matrix[keep]
            if not combos:
                continue
            if self.counters is not None:
                self.counters.cells_examined += len(combos)
            signs = bit_matrix.astype(float) * 2.0 - 1.0
            probes, probe_margins, probe_valid = self._probe_panel()
            status, witnesses = screen_cells_batch(
                self._partial_A,
                self._partial_b,
                signs,
                self.lower,
                self.upper,
                base_A=self._base_A,
                base_b=self._base_b,
                probes=probes,
                probe_margins=probe_margins,
                probe_valid=probe_valid,
                counters=self.counters,
            )
            for row, ones in enumerate(combos):
                if status[row] < 0:
                    continue
                if status[row] > 0:
                    point = witnesses[row]
                else:
                    point = self._test_cell_lp(self._bits_for(ones))
                    if point is not None:
                        self._add_probe(point)
                if point is None:
                    continue
                if self.counters is not None:
                    self.counters.nonempty_cells += 1
                inside_ids = tuple(self.partial[pos][0] for pos in ones)
                cells.append(
                    LeafCell(
                        bits=self._bits_for(ones),
                        inside_ids=inside_ids,
                        p_order=weight,
                        interior_point=point,
                    )
                )
        return cells

    def _cells_at_weight_sequential(self, weight: int) -> List[LeafCell]:
        """Per-cell path: 2-D clipping and the empty-partial degenerate case."""
        cells: List[LeafCell] = []
        positions = range(len(self.partial))
        for ones in combinations(positions, weight):
            bits = self._bits_for(ones)
            if self._pairwise is not None and self._pairwise.violates(bits):
                if self.counters is not None:
                    self.counters.pairwise_pruned += 1
                continue
            point = self._test_cell(bits)
            if point is None:
                continue
            inside_ids = tuple(self.partial[pos][0] for pos in ones)
            cells.append(
                LeafCell(bits=bits, inside_ids=inside_ids, p_order=weight, interior_point=point)
            )
        return cells

    def minimal_cells(self, *, extra: int = 0, max_weight: Optional[int] = None
                      ) -> Tuple[Optional[int], List[LeafCell]]:
        """Find the minimum p-order and the cells attaining it.

        Parameters
        ----------
        extra:
            Additionally report cells with p-order up to ``minimum + extra``
            (iMaxRank processing examines bit-strings with Hamming weights up
            to ``τ`` units larger).
        max_weight:
            Stop searching beyond this weight even if nothing was found —
            callers use the global pruning bound here so a leaf that cannot
            improve the interim result is abandoned early.

        Returns
        -------
        (minimum p-order or None, cells)
            ``None`` when the leaf contains no non-empty cell within the
            explored weights (possible when the leaf lies outside the
            permissible simplex).
        """
        if not self.partial:
            point = self._test_cell(())
            if point is None:
                return None, []
            return 0, [LeafCell(bits=(), inside_ids=(), p_order=0, interior_point=point)]

        limit = len(self.partial) if max_weight is None else min(max_weight, len(self.partial))
        minimum: Optional[int] = None
        collected: List[LeafCell] = []
        weight = 0
        while weight <= limit:
            cells = self.cells_at_weight(weight)
            if cells:
                if minimum is None:
                    minimum = weight
                    limit = min(limit, weight + extra)
                collected.extend(cells)
            weight += 1
        return minimum, collected
