"""Within-leaf processing (paper, Section 5.2).

Inside one quad-tree leaf, the half-spaces of the leaf's partial-overlap set
``P_l`` define a constrained arrangement.  Every cell of that arrangement is
identified by a bit-string over ``P_l``: bit ``i`` is 1 when the cell lies
inside the ``i``-th half-space and 0 when it lies in its complement.  The
cell's *p-order* is the Hamming weight of its bit-string; its (global) order
is the p-order plus ``|F_l|``.

The module enumerates bit-strings in increasing Hamming weight and tests
each candidate cell for a non-empty interior (intersection of the selected
half-spaces / complements, the leaf box and the permissible-simplex
constraints).  The first weight at which a non-empty cell appears is the
minimum p-order of the leaf; all non-empty cells of that weight (plus up to
``extra`` additional weights, for iMaxRank) are reported.

Candidate generation is *prefix-pruned*: instead of enumerating all
``C(m, w)`` bit-strings of one Hamming weight and filtering them afterwards,
a depth-first search walks index prefixes of the sign vector and never
extends a partial assignment that is already provably empty — because it
matches a forbidden pairwise bit combination (consulted through per-position
conflict bitmasks) or because some fixed-orientation row is unsatisfiable
anywhere in the leaf box (the per-row corner-extreme bound).  Cutting a
branch skips the entire subtree of candidates below it, so the number of
bit-strings ever materialised tracks the *feasible frontier* of the
arrangement rather than the combinatorial total (``prefixes_cut`` and
``candidates_generated`` in :class:`repro.stats.CostCounters` record both
sides).  When no pruning structure exists the generator degrades to the
plain chunked ``itertools.combinations`` walk.

Surviving candidates are emitted as chunked sign matrices into the batched
screen→LP funnel (:func:`repro.geometry.lp.screen_cells_batch`), unchanged
from before: a vectorised reject screen kills rows unsatisfiable anywhere in
the leaf, a panel of probe points (leaf centre, perturbed corners, witness
points found earlier — including those inherited from a previous processor
of the same leaf via ``seed_probes``) certifies non-empty cells by
sign-pattern matching, and only the cells resolved by neither screen fall
through to a per-cell Seidel LP.  The screens use a safety margin above the
LP's feasibility radius, so the decisions are identical to running the LP on
every cell.

Two optimisations from the paper are implemented on top:

* **pairwise binary constraints** — pairs of half-spaces that are disjoint,
  nested or jointly covering within the leaf forbid certain bit
  combinations; violating bit-strings are never generated.  The pair
  analysis is LP-free: each two-constraint feasibility over the leaf box is
  solved in closed form by a vectorised fractional-knapsack maximisation,
  for all pairs and orientations at once (instead of the former four LPs
  per pair);
* an exact **polygon-clipping fast path** for the 2-dimensional reduced
  query space (data dimensionality 3), which avoids the LP entirely.

AA re-scans reuse per-leaf state across iterations: a grown leaf's
replacement processor inherits the previous processor's witness probes, its
pairwise conflict masks (the leaf box is unchanged and the old partial set
is a prefix of the new one, so old pair verdicts stay valid verbatim) and
its surviving-prefix frontier (the generation survivors per weight), so
re-enumeration only explores extensions of previously surviving prefixes by
the newly arrived half-spaces.  See :class:`LeafReuseState`.

Planar sweep (``d = 3`` fast path)
----------------------------------
When the reduced space is a plane and ``use_planar`` is set, candidate
generation is replaced wholesale: one incremental
:class:`~repro.geometry.planar.PlanarArrangement` over
``leaf box ∩ simplex`` is built per leaf (``O(m²)`` face splits instead of
``C(m, w)`` clip sequences per weight) and every requested weight reads its
candidates straight off the faces' cover bitsets.  Each candidate is still
resolved by the *same* pairwise filter and the *same* exact clipping test as
the generic path, so the discovered cells — bit-strings, witness centroids,
``nonempty_cells`` accounting — are bit-identical; only the volume of
candidates examined shrinks.  AA re-scans retain the arrangement through
:class:`LeafReuseState` and insert only the newly arrived half-planes.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations, islice
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import would be cyclic at runtime
    from ..engine.deadline import Deadline

import numpy as np

from ..geometry.clipping import MIN_AREA, box_polygon, clip_polygon, polygon_area, polygon_centroid
from ..geometry.halfspace import Halfspace, reduced_space_constraints
from ..geometry.lp import (
    ACCEPT_MARGIN_FACTOR,
    MIN_INTERIOR_RADIUS,
    box_row_extremes,
    find_interior_point_arrays,
    screen_cells_batch,
)
from ..geometry.planar import PlanarArrangement
from ..stats import CostCounters

__all__ = ["LeafCell", "LeafReuseState", "WithinLeafProcessor", "PairwiseConstraints"]

#: Cap on the number of probe points a processor keeps (centre + corners +
#: inherited seeds + accumulated LP witnesses).
_MAX_PROBES = 192

#: Cap on the number of surviving candidates memoised per weight for the
#: incremental-rescan frontier; beyond it the frontier is dropped (a rescan
#: then falls back to a full DFS for that weight).
_FRONTIER_CAP = 16384

#: Planar-sweep dispatch thresholds (``d = 3`` fast path): the arrangement
#: is built for a ``(leaf, weight)`` probe only when ``weight >=
#: _PLANAR_MIN_WEIGHT`` and ``|P_l| >= _PLANAR_MIN_PARTIAL``.  At weights 0
#: and 1 candidate enumeration is linear in ``|P_l|`` and the per-candidate
#: clipping test is cheaper than an arrangement build; from weight 2 on the
#: ``C(m, w)`` volume takes off while the build stays ``O(m²)``.  The rule
#: depends only on ``(weight, |P_l|)``, so serial and task-mode runs make
#: identical decisions.
_PLANAR_MIN_WEIGHT = 2
_PLANAR_MIN_PARTIAL = 8


@dataclass(frozen=True)
class LeafCell:
    """A non-empty cell found inside a quad-tree leaf.

    Attributes
    ----------
    bits:
        0/1 flags aligned with the processor's partial half-space ids.
    inside_ids:
        Ids of the partial half-spaces containing the cell (bit = 1).
    p_order:
        Hamming weight of ``bits``.
    interior_point:
        Witness point strictly inside the cell (reduced query space).
    """

    bits: Tuple[int, ...]
    inside_ids: Tuple[int, ...]
    p_order: int
    interior_point: np.ndarray


def _pair_combo_feasible(
    u: np.ndarray,
    c: np.ndarray,
    v: np.ndarray,
    d: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> np.ndarray:
    """Vectorised exact feasibility of two linear constraints over a box.

    For every row ``r`` decides whether ``{x ∈ [lower, upper] :
    u_r · x ≥ c_r and v_r · x > d_r}`` is non-empty, by solving the LP
    ``max v_r · x  s.t.  u_r · x ≥ c_r`` in closed form: start from the
    ``v``-optimal box corner and, if it violates the ``u`` constraint, buy
    back the deficit coordinate-by-coordinate in increasing order of the
    exchange rate ``|v_k| / u-gain`` — the fractional-knapsack structure of a
    single-constraint LP over a box.  All rows are processed at once with a
    per-row ``argsort`` over the (at most 7) coordinates.
    """
    x_star = np.where(v > 0, upper, lower)
    other = np.where(v > 0, lower, upper)
    v_at = np.einsum("rk,rk->r", v, x_star)
    u_at = np.einsum("rk,rk->r", u, x_star)
    need = np.maximum(c - u_at, 0.0)
    gain = np.maximum(u * (other - x_star), 0.0)
    movable = gain > 0
    loss = np.where(movable, np.abs(v) * (upper - lower), 0.0)
    rate = np.where(movable, loss / np.where(movable, gain, 1.0), np.inf)
    order = np.argsort(rate, axis=1)
    gain_sorted = np.take_along_axis(gain, order, axis=1)
    loss_sorted = np.take_along_axis(loss, order, axis=1)
    cum_gain = np.cumsum(gain_sorted, axis=1)
    total_gain = cum_gain[:, -1]
    prev_cum = np.concatenate(
        [np.zeros((gain.shape[0], 1)), cum_gain[:, :-1]], axis=1
    )
    fraction = np.clip(
        (need[:, None] - prev_cum) / np.where(gain_sorted > 0, gain_sorted, 1.0),
        0.0,
        1.0,
    )
    fraction = np.where(gain_sorted > 0, fraction, 0.0)
    best_v = v_at - (loss_sorted * fraction).sum(axis=1)
    return (total_gain >= need) & (best_v > d)


class PairwiseConstraints:
    """Forbidden bit combinations between pairs of partial half-spaces.

    For every pair ``(i, j)`` the four bit combinations are tested for
    feasibility within the leaf box; infeasible combinations become forbidden
    patterns consulted before any full feasibility test.  This subsumes the
    paper's three containment statuses (disjoint / nested / covering) and is
    also sound when the two supporting hyperplanes do intersect inside the
    leaf (in which case all four combinations are feasible and nothing is
    forbidden).

    The analysis is LP-free: a two-constraint system over a box reduces to a
    closed-form fractional-knapsack maximisation
    (:func:`_pair_combo_feasible`), evaluated for all pairs and all four
    orientations in a handful of array operations.  The test relaxes the
    permissible-simplex cut (it considers the box alone), so it forbids a
    subset of what an exact LP with the base constraints would — pruning
    stays sound, it just occasionally lets a doomed candidate through to the
    cell screens.

    The forbidden patterns double as per-position *conflict bitmasks*
    (:meth:`conflict_masks`) consumed by the prefix-pruned DFS candidate
    generator, and the analysis is *incremental*: when a leaf's partial set
    grows during AA (the old id list is a prefix of the new one and the leaf
    box is unchanged), :meth:`build` with ``reuse=`` copies every old pair
    verdict verbatim and only analyses pairs involving the new half-spaces.
    """

    def __init__(self) -> None:
        self._forbidden: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {}
        #: identity of the analysed configuration, for safe incremental reuse
        self._ids: Tuple[int, ...] = ()
        self._lower: Optional[np.ndarray] = None
        self._upper: Optional[np.ndarray] = None
        self._masks: Optional[Tuple[list, list]] = None
        self._masks_m = -1
        #: number of leading positions whose pair verdicts were copied from a
        #: reused analysis (0 when built from scratch)
        self._reused_prefix_len = 0

    @classmethod
    def build(
        cls,
        halfspaces: Sequence[Tuple[int, Halfspace]],
        lower: np.ndarray,
        upper: np.ndarray,
        base_constraints: Sequence[Halfspace] = (),
        *,
        counters: Optional[CostCounters] = None,
        reuse: Optional["PairwiseConstraints"] = None,
    ) -> "PairwiseConstraints":
        """Analyse every pair of partial half-spaces within the leaf box.

        ``reuse`` may carry the constraints of a previous processor of the
        same leaf; when its id list is a prefix of the current one and the
        box is identical, its pair verdicts are copied and only the pairs
        involving newly arrived half-spaces are analysed.
        """
        constraints = cls()
        m = len(halfspaces)
        lower = np.asarray(lower, dtype=float).ravel()
        upper = np.asarray(upper, dtype=float).ravel()
        constraints._ids = tuple(hid for hid, _ in halfspaces)
        constraints._lower = lower
        constraints._upper = upper
        if m < 2:
            return constraints
        start = 0
        if (
            reuse is not None
            and reuse._lower is not None
            and len(reuse._ids) <= m
            and reuse._ids == constraints._ids[: len(reuse._ids)]
            and np.array_equal(reuse._lower, lower)
            and np.array_equal(reuse._upper, upper)
        ):
            constraints._forbidden.update(reuse._forbidden)
            start = len(reuse._ids)
            constraints._reused_prefix_len = start
        if start >= m:
            return constraints
        A = np.vstack([h.coefficients for _, h in halfspaces])
        b = np.array([h.offset for _, h in halfspaces], dtype=float)
        norms = np.sqrt(np.einsum("ij,ij->i", A, A))
        norms = np.where(norms > 0, norms, 1.0)
        #: right-hand sides including the inscribed-radius margin, per
        #: orientation: sign s turns ``a · x > b`` into ``(s a) · x > s b``.
        margin = MIN_INTERIOR_RADIUS * norms

        # Pairs not yet covered by the reused verdicts: those whose larger
        # index falls in the newly arrived suffix.
        pair_idx = np.array(
            [(i, j) for j in range(max(start, 1), m) for i in range(j)],
            dtype=np.intp,
        )
        i_idx, j_idx = pair_idx[:, 0], pair_idx[:, 1]
        results = {}
        for bit_i in (0, 1):
            s_i = 1.0 if bit_i else -1.0
            u = s_i * A[i_idx]
            c = s_i * b[i_idx] + margin[i_idx]
            for bit_j in (0, 1):
                s_j = 1.0 if bit_j else -1.0
                v = s_j * A[j_idx]
                d = s_j * b[j_idx] + margin[j_idx]
                results[(bit_i, bit_j)] = _pair_combo_feasible(
                    u, c, v, d, lower, upper
                )
        for row, (pos_i, pos_j) in enumerate(pair_idx):
            forbidden = {
                combo
                for combo, feasible in results.items()
                if not feasible[row]
            }
            if forbidden:
                constraints._forbidden[(int(pos_i), int(pos_j))] = forbidden
        return constraints

    def violates(self, bits: Sequence[int]) -> bool:
        """True when ``bits`` matches a forbidden combination for some pair."""
        for (pos_i, pos_j), forbidden in self._forbidden.items():
            if (bits[pos_i], bits[pos_j]) in forbidden:
                return True
        return False

    def violation_mask(self, bit_matrix: np.ndarray) -> np.ndarray:
        """Boolean mask over the rows of ``bit_matrix`` violating some pair."""
        mask = np.zeros(bit_matrix.shape[0], dtype=bool)
        for (pos_i, pos_j), forbidden in self._forbidden.items():
            col_i = bit_matrix[:, pos_i]
            col_j = bit_matrix[:, pos_j]
            for bit_i, bit_j in forbidden:
                mask |= (col_i == bit_i) & (col_j == bit_j)
        return mask

    def conflict_masks(self, m: int) -> Tuple[list, list]:
        """Per-position conflict bitmasks for the prefix-pruned DFS.

        Returns ``(one_masks, zero_masks)``, each a list with one
        ``[mask_for_bit0, mask_for_bit1]`` entry per position ``p``:
        ``one_masks[p][v]`` has bit ``q`` set when assigning bit ``v`` at
        position ``p`` conflicts with an earlier position ``q < p`` that was
        assigned 1 (the pair ``(q, p)`` forbids the combination ``(1, v)``);
        ``zero_masks[p][v]`` covers earlier positions assigned 0.  The DFS
        tests a partial assignment with two bitwise ANDs per extension.
        """
        if self._masks is None or self._masks_m != m:
            one_masks = [[0, 0] for _ in range(m)]
            zero_masks = [[0, 0] for _ in range(m)]
            for (pos_i, pos_j), forbidden in self._forbidden.items():
                bit_i_mask = 1 << pos_i
                for bit_i, bit_j in forbidden:
                    if bit_i:
                        one_masks[pos_j][bit_j] |= bit_i_mask
                    else:
                        zero_masks[pos_j][bit_j] |= bit_i_mask
            self._masks = (one_masks, zero_masks)
            self._masks_m = m
        return self._masks

    def __len__(self) -> int:
        return len(self._forbidden)


@dataclass(frozen=True)
class LeafReuseState:
    """Cached within-leaf state handed across AA re-scans of a grown leaf.

    Attributes
    ----------
    partial_ids:
        Half-space ids of the partial set the state was computed for; reuse
        requires them to be a prefix of the new processor's partial ids.
    pairwise:
        The previous processor's pairwise analysis (None when it was never
        built); old pair verdicts are copied verbatim and only new pairs are
        analysed.
    frontier:
        Per-weight tuples of surviving candidate combinations (the
        generation survivors, before the screens) over ``partial_ids``
        positions, or ``None`` for weights whose survivor set overflowed
        :data:`_FRONTIER_CAP`.  Re-enumeration at a weight extends these
        prefixes by the new positions only, instead of re-walking the whole
        assignment tree.
    planar:
        The previous processor's planar arrangement (``d = 3`` fast path
        only; ``None`` otherwise).  When its line ids are a prefix of the
        new processor's partial ids, the replacement processor copies the
        retained arrangement and inserts only the newly arrived half-planes
        instead of rebuilding from scratch.
    """

    partial_ids: Tuple[int, ...]
    pairwise: Optional[PairwiseConstraints]
    frontier: Dict[int, Optional[Tuple[Tuple[int, ...], ...]]]
    planar: Optional[PlanarArrangement] = None


class WithinLeafProcessor:
    """Enumerates the minimum-order cells inside one quad-tree leaf.

    This is the within-leaf module of the paper's Section 5.2: candidate
    bit-strings over the leaf's partial set are generated in increasing
    Hamming weight by a prefix-pruned DFS and resolved through the batched
    screen→LP funnel; the smallest weight with a non-empty cell is the
    leaf's minimum p-order.

    Parameters
    ----------
    lower, upper:
        Leaf extent in the reduced query space.
    partial:
        ``(halfspace_id, halfspace)`` pairs of the leaf's partial-overlap set.
    use_pairwise:
        Enable the pairwise-constraint pruning (ablation A1 switches this
        off).  The analysis is only performed when the partial set is large
        enough for it to pay off.
    pairwise_min_size:
        Minimum ``|P_l|`` at which the pairwise analysis is carried out.
    counters:
        Optional cost counters (candidates generated, prefixes cut, cells
        examined, LP calls, screen hits).
    seed_probes:
        Witness points inherited from a previous processor of the same leaf
        (AA re-scans after the partial set grew); they are added to the
        accept-screen probe panel, so cells already discovered in an earlier
        iteration are re-certified without any LP.
    seed_state:
        :class:`LeafReuseState` of the previous processor of the same leaf;
        when its partial ids are a prefix of this processor's, the pairwise
        conflict masks are extended instead of recomputed and candidate
        generation resumes from the cached surviving-prefix frontier.
    track_frontier:
        Memoise the generation survivors per weight so :meth:`reuse_state`
        can hand them to a replacement processor.  Off by default — only a
        caller that actually caches processors across re-scans (AA's
        ``collect_cells`` with a cache) should pay the bookkeeping.
    pairwise:
        A previously built :class:`PairwiseConstraints` for *exactly* this
        partial-id list and leaf box, adopted verbatim instead of being
        rebuilt.  Used by the execution engine when a leaf's processor is
        reconstructed per :class:`~repro.engine.tasks.LeafTask` (each weight
        runs in a fresh — possibly remote — processor, but the pair analysis
        is deterministic, so shipping it skips the recomputation without
        changing any decision).  Ignored when the id list does not match.
    use_planar:
        Enable the planar-arrangement sweep for the 2-dimensional reduced
        space (data dimensionality 3): candidates come from the faces of
        one incremental line arrangement instead of the ``C(m, w)``
        enumeration.  Ignored for other dimensionalities.  Cell discovery
        stays bit-identical to the generic path — every candidate passes the
        same pairwise filter and exact clipping test.
    planar:
        A previously built :class:`~repro.geometry.planar.PlanarArrangement`
        for *exactly* this partial-id list and leaf box, adopted verbatim
        (the planar analogue of ``pairwise``, shipped by the execution
        engine).  Ignored when the line-id list does not match.
    """

    def __init__(
        self,
        lower: Sequence[float] | np.ndarray,
        upper: Sequence[float] | np.ndarray,
        partial: Sequence[Tuple[int, Halfspace]],
        *,
        use_pairwise: bool = True,
        pairwise_min_size: int = 6,
        counters: Optional[CostCounters] = None,
        seed_probes: Optional[Sequence[np.ndarray]] = None,
        seed_state: Optional[LeafReuseState] = None,
        track_frontier: bool = False,
        pairwise: Optional[PairwiseConstraints] = None,
        use_planar: bool = False,
        planar: Optional[PlanarArrangement] = None,
        deadline: Optional["Deadline"] = None,
    ) -> None:
        self.lower = np.asarray(lower, dtype=float).ravel()
        self.upper = np.asarray(upper, dtype=float).ravel()
        self.partial = list(partial)
        self.dim = self.lower.shape[0]
        self.counters = counters
        #: cooperative wall-clock budget (None → every checkpoint is free)
        self._deadline = deadline
        self._base = reduced_space_constraints(self.dim)
        # Pre-stacked coefficient arrays: the feasibility tests flip the signs
        # of individual rows per bit-string instead of rebuilding half-space
        # objects, which keeps the per-cell cost to a few vector operations.
        self._base_A = np.vstack([h.coefficients for h in self._base])
        self._base_b = np.array([h.offset for h in self._base], dtype=float)
        if self.partial:
            self._partial_A = np.vstack([h.coefficients for _, h in self.partial])
            self._partial_b = np.array([h.offset for _, h in self.partial], dtype=float)
            norms = np.sqrt(np.einsum("ij,ij->i", self._partial_A, self._partial_A))
            self._partial_norms = np.where(norms > 0, norms, 1.0)
        else:
            self._partial_A = np.zeros((0, self.dim))
            self._partial_b = np.zeros(0)
            self._partial_norms = np.ones(0)
        # Per-row corner-extreme orientation bounds: a row whose oriented
        # half-space is unsatisfiable anywhere in the leaf box proves every
        # partial assignment fixing that orientation empty, so the DFS never
        # expands it.  Mirrors the batch reject screen's margin exactly.
        if self.partial:
            row_min, row_max = box_row_extremes(self._partial_A, self.lower, self.upper)
            row_margin = MIN_INTERIOR_RADIUS * self._partial_norms
            self._row_allowed = (
                (row_min < self._partial_b - row_margin).tolist(),
                (row_max > self._partial_b + row_margin).tolist(),
            )
        else:
            self._row_allowed = ([], [])
        self._rows_restricted = not (
            all(self._row_allowed[0]) and all(self._row_allowed[1])
        )
        #: generation survivors per weight (the surviving-prefix frontier
        #: inherited by the replacement processor on AA re-scans)
        self._track_frontier = bool(track_frontier)
        self._frontier: Dict[int, Optional[Tuple[Tuple[int, ...], ...]]] = {}
        self._seed_frontier: Optional[
            Tuple[int, Dict[int, Optional[Tuple[Tuple[int, ...], ...]]]]
        ] = None
        self._use_planar = bool(use_planar) and self.dim == 2
        self._planar: Optional[PlanarArrangement] = None
        self._planar_shipped = planar
        self._planar_seed: Optional[PlanarArrangement] = None
        self._planar_weights: Optional[Dict[int, List[Tuple[int, ...]]]] = None
        reuse_pairwise: Optional[PairwiseConstraints] = None
        if seed_state is not None:
            ids = tuple(hid for hid, _ in self.partial)
            old_m = len(seed_state.partial_ids)
            if old_m <= len(ids) and seed_state.partial_ids == ids[:old_m]:
                reuse_pairwise = seed_state.pairwise
                if seed_state.frontier:
                    self._seed_frontier = (old_m, seed_state.frontier)
                self._planar_seed = seed_state.planar
        if self.dim == 2:
            self._oriented = [
                (halfspace, halfspace.complement()) for _, halfspace in self.partial
            ]
        # Probe panel: leaf centre first (mirrors the solver's quick accept),
        # then inward-shrunk corners, then inherited witness points.
        self._probe_points: List[np.ndarray] = list(self._default_probes())
        if seed_probes:
            for point in seed_probes:
                if len(self._probe_points) >= _MAX_PROBES:
                    break
                self._probe_points.append(np.asarray(point, dtype=float))
        self._seed_count = len(self._probe_points)
        self._probe_cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._pairwise: Optional[PairwiseConstraints] = None
        if use_pairwise and len(self.partial) >= pairwise_min_size:
            ids = tuple(hid for hid, _ in self.partial)
            if (
                pairwise is not None
                and pairwise._ids == ids
                and pairwise._lower is not None
                and np.array_equal(pairwise._lower, self.lower)
                and np.array_equal(pairwise._upper, self.upper)
            ):
                self._pairwise = pairwise
            else:
                self._pairwise = PairwiseConstraints.build(
                    self.partial, self.lower, self.upper, self._base,
                    counters=counters, reuse=reuse_pairwise,
                )

    def reuse_state(self) -> LeafReuseState:
        """Snapshot of the reusable per-leaf state for a replacement processor.

        Handed to the replacement processor (via ``seed_state``) when the
        leaf's partial set grows between AA iterations; see
        :class:`LeafReuseState`.
        """
        return LeafReuseState(
            partial_ids=tuple(hid for hid, _ in self.partial),
            pairwise=self._pairwise,
            frontier=dict(self._frontier),
            planar=self._planar,
        )

    @property
    def pairwise_constraints(self) -> Optional[PairwiseConstraints]:
        """The pair analysis in effect (None when disabled or not built)."""
        return self._pairwise

    @property
    def planar_arrangement(self) -> Optional[PlanarArrangement]:
        """The planar arrangement in effect (None when disabled or not built)."""
        return self._planar

    def frontier_entries(self) -> Dict[int, Optional[Tuple[Tuple[int, ...], ...]]]:
        """Generation survivors memoised so far, keyed by weight.

        Entries appear only when the processor was created with
        ``track_frontier=True``; a ``None`` value marks a weight whose
        survivor set overflowed :data:`_FRONTIER_CAP`.
        """
        return dict(self._frontier)

    # --------------------------------------------------------------- plumbing
    def _default_probes(self) -> List[np.ndarray]:
        """Deterministic spread of probe points inside the leaf box."""
        centre = (self.lower + self.upper) / 2.0
        points = [centre]
        extent = self.upper - self.lower
        if np.any(extent <= 0):
            return points
        # Two rings of corner probes: mildly shrunk ({1/4, 3/4} of the extent
        # per axis, covering the bulk of each orthant) and near-corner
        # ({1/20, 19/20}, capturing the extreme regions that certify pairwise
        # orientation combinations).  Beyond 5 dimensions take a
        # deterministic subset to bound the panel size.
        corner_count = min(2 ** self.dim, 32)
        axes = np.arange(self.dim)
        for corner in range(corner_count):
            bits = (corner >> axes) & 1
            points.append(self.lower + np.where(bits, 0.75, 0.25) * extent)
            points.append(self.lower + np.where(bits, 0.95, 0.05) * extent)
        return points

    def witness_probes(self) -> List[np.ndarray]:
        """Witness points accumulated beyond the deterministic panel.

        Used to seed the replacement processor when the leaf's partial set
        grows: the inherited witnesses remain interior points of cells of the
        refined arrangement.
        """
        return self._probe_points[self._seed_count:]

    def _add_probe(self, point: np.ndarray) -> None:
        if len(self._probe_points) >= _MAX_PROBES:
            return
        self._probe_points.append(point)
        self._probe_cache = None

    def _probe_panel(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(points, normalised margins, validity)`` of the panel.

        Margins are per partial row, normalised by the row norm so they
        compare directly against the inscribed-radius thresholds; validity
        requires clearance from the box walls and the base (simplex)
        constraints, mirroring the solver's quick-accept conditions.
        """
        if self._probe_cache is None:
            P = np.asarray(self._probe_points, dtype=float)
            threshold = ACCEPT_MARGIN_FACTOR * MIN_INTERIOR_RADIUS
            valid = np.minimum(P - self.lower, self.upper - P).min(axis=1) > threshold
            base_norms = np.sqrt(np.einsum("ij,ij->i", self._base_A, self._base_A))
            base_norms = np.where(base_norms > 0, base_norms, 1.0)
            base_margin = (self._base_A @ P.T - self._base_b[:, None]) / base_norms[:, None]
            valid &= (base_margin > threshold).all(axis=0)
            if self.partial:
                margins = (
                    self._partial_A @ P.T - self._partial_b[:, None]
                ) / self._partial_norms[:, None]
            else:
                margins = np.zeros((0, P.shape[0]))
            self._probe_cache = (P, margins, valid)
        return self._probe_cache

    def _bits_for(self, ones: Sequence[int]) -> Tuple[int, ...]:
        bits = [0] * len(self.partial)
        for position in ones:
            bits[position] = 1
        return tuple(bits)

    def _test_cell(self, bits: Tuple[int, ...]) -> Optional[np.ndarray]:
        """Return an interior point of the cell, or None when it is empty."""
        if self.counters is not None:
            self.counters.cells_examined += 1
        if self.dim == 2:
            point = self._test_cell_clipping(bits)
        else:
            point = self._test_cell_lp(bits)
        if point is not None and self.counters is not None:
            self.counters.nonempty_cells += 1
        return point

    def _test_cell_lp(self, bits: Tuple[int, ...]) -> Optional[np.ndarray]:
        """LP-based feasibility using the pre-stacked constraint arrays."""
        if self.partial:
            signs = np.where(np.asarray(bits, dtype=bool), 1.0, -1.0)
            A = np.vstack([self._base_A, self._partial_A * signs[:, None]])
            b = np.concatenate([self._base_b, self._partial_b * signs])
        else:
            A, b = self._base_A, self._base_b
        result = find_interior_point_arrays(
            A, b, self.lower, self.upper, counters=self.counters
        )
        return result.point if result.feasible else None

    def _test_cell_clipping(self, bits: Tuple[int, ...]) -> Optional[np.ndarray]:
        """Exact polygon-clipping feasibility for the 2-D reduced space."""
        polygon = box_polygon(self.lower, self.upper)
        for constraint in self._base:
            polygon = clip_polygon(polygon, constraint)
            if polygon is None:
                return None
        for (inside, outside), bit in zip(self._oriented, bits):
            polygon = clip_polygon(polygon, inside if bit else outside)
            if polygon is None:
                return None
        if polygon_area(polygon) <= max(MIN_AREA, 1e-14):
            return None
        return polygon_centroid(polygon)

    # ------------------------------------------------------------ enumeration
    #: Candidates processed per vectorised batch; bounds the bit-matrix
    #: memory when the surviving frontier of a weight runs into the millions.
    _CHUNK = 32768

    def _combo_chunks(self, weight: int):
        """Plain chunked ``C(m, w)`` enumeration (no pruning structure)."""
        iterator = combinations(range(len(self.partial)), weight)
        while True:
            chunk = list(islice(iterator, self._CHUNK))
            if not chunk:
                return
            yield chunk

    def _dfs_chunks(self, weight: int, init_states: Optional[list] = None):
        """Prefix-pruned DFS over sign-vector index prefixes.

        Walks positions ``0 .. m-1`` assigning one bit per step; a branch is
        cut (``prefixes_cut``) as soon as the partial assignment matches a
        forbidden pairwise combination (two bitmask ANDs against the
        conflict masks) or fixes a row orientation that is unsatisfiable
        anywhere in the leaf box — the subtree of candidates below the cut
        is never materialised.  Surviving complete assignments are emitted
        as chunks of one-position tuples, in the same lexicographic order as
        ``itertools.combinations`` (the 1-branch is explored first).

        ``init_states`` optionally resumes the walk from mid-tree states
        ``(pos, ones_count, ones_mask, zeros_mask, ones_tuple)`` — used by
        the frontier-seeded re-enumeration of grown leaves.
        """
        m = len(self.partial)
        allowed0, allowed1 = self._row_allowed
        if self._pairwise is not None and len(self._pairwise):
            one_masks, zero_masks = self._pairwise.conflict_masks(m)
        else:
            one_masks = zero_masks = None
        counters = self.counters
        cuts = 0
        out: List[Tuple[int, ...]] = []
        if init_states is None:
            init_states = [(0, 0, 0, 0, ())]
        # LIFO stack; within one expansion the 0-branch is pushed first so
        # the 1-branch is popped (and therefore emitted) first.
        stack = list(reversed(init_states))
        while stack:
            pos, count, ones_mask, zeros_mask, ones = stack.pop()
            if count == weight:
                # Tail of forced zeros: validate the remaining positions in
                # place instead of pushing one stack frame per position.
                valid = True
                while pos < m:
                    if not allowed0[pos]:
                        valid = False
                        break
                    if zero_masks is not None and (
                        (ones_mask & one_masks[pos][0])
                        or (zeros_mask & zero_masks[pos][0])
                    ):
                        valid = False
                        break
                    zeros_mask |= 1 << pos
                    pos += 1
                if valid:
                    out.append(ones)
                    if len(out) >= self._CHUNK:
                        yield out
                        out = []
                else:
                    cuts += 1
                continue
            if weight - count == m - pos:
                # Tail of forced ones.
                valid = True
                while pos < m:
                    if not allowed1[pos]:
                        valid = False
                        break
                    if one_masks is not None and (
                        (ones_mask & one_masks[pos][1])
                        or (zeros_mask & zero_masks[pos][1])
                    ):
                        valid = False
                        break
                    ones_mask |= 1 << pos
                    ones = ones + (pos,)
                    pos += 1
                if valid:
                    out.append(ones)
                    if len(out) >= self._CHUNK:
                        yield out
                        out = []
                else:
                    cuts += 1
                continue
            bit = 1 << pos
            # 0-branch (affordable here because weight - count < m - pos).
            if allowed0[pos] and not (
                zero_masks is not None
                and (
                    (ones_mask & one_masks[pos][0])
                    or (zeros_mask & zero_masks[pos][0])
                )
            ):
                stack.append((pos + 1, count, ones_mask, zeros_mask | bit, ones))
            else:
                cuts += 1
            # 1-branch (count < weight is implied by the tail check above).
            if allowed1[pos] and not (
                one_masks is not None
                and (
                    (ones_mask & one_masks[pos][1])
                    or (zeros_mask & zero_masks[pos][1])
                )
            ):
                stack.append(
                    (pos + 1, count + 1, ones_mask | bit, zeros_mask, ones + (pos,))
                )
            else:
                cuts += 1
        if counters is not None:
            counters.prefixes_cut += cuts
        if out:
            yield out

    def _frontier_states(self, weight: int) -> Optional[list]:
        """DFS start states resuming from the inherited surviving frontier.

        A candidate of weight ``w`` over ``m`` positions restricts, on the
        previous processor's ``old_m`` positions, to a surviving assignment
        of some weight ``w'' ∈ [w - (m - old_m), w]``; conflict masks for
        old pairs are unchanged, so exactly the cached frontier assignments
        can prefix a new candidate.  Each cached assignment is re-validated
        against the (possibly richer) current masks and becomes a DFS start
        state at position ``old_m``.  Returns ``None`` when any required
        frontier weight is missing or overflowed — the caller then falls
        back to the full DFS.
        """
        if self._seed_frontier is None:
            return None
        old_m, frontier = self._seed_frontier
        m = len(self.partial)
        lowest = max(0, weight - (m - old_m))
        highest = min(weight, old_m)
        if lowest > highest:
            return []
        needed = range(lowest, highest + 1)
        for w2 in needed:
            if frontier.get(w2) is None:
                return None
        allowed0, allowed1 = self._row_allowed
        if self._pairwise is not None and len(self._pairwise):
            one_masks, zero_masks = self._pairwise.conflict_masks(m)
        else:
            one_masks = zero_masks = None
        # The cached combos already passed the previous processor's checks.
        # Row bounds over the old positions are identical by construction
        # (same box, prefix rows), and when the pair verdicts for the old
        # prefix were copied verbatim the mask checks are identical too — the
        # replay below can then never fail and is skipped.
        trusted = one_masks is None or (
            self._pairwise is not None
            and self._pairwise._reused_prefix_len >= old_m
        )
        states = []
        if trusted:
            prefix_mask = (1 << old_m) - 1
            for w2 in needed:
                for combo in frontier[w2]:
                    ones_mask = 0
                    for pos in combo:
                        ones_mask |= 1 << pos
                    states.append(
                        (old_m, len(combo), ones_mask, prefix_mask ^ ones_mask, combo)
                    )
            return states
        for w2 in needed:
            for combo in frontier[w2]:
                ones_mask = 0
                zeros_mask = 0
                next_one = 0
                valid = True
                for pos in range(old_m):
                    if next_one < len(combo) and combo[next_one] == pos:
                        value = 1
                        next_one += 1
                    else:
                        value = 0
                    if not (allowed1[pos] if value else allowed0[pos]):
                        valid = False
                        break
                    if one_masks is not None and (
                        (ones_mask & one_masks[pos][value])
                        or (zeros_mask & zero_masks[pos][value])
                    ):
                        valid = False
                        break
                    if value:
                        ones_mask |= 1 << pos
                    else:
                        zeros_mask |= 1 << pos
                if valid:
                    states.append((old_m, len(combo), ones_mask, zeros_mask, combo))
        return states

    def _candidate_chunks(self, weight: int):
        """Chunks of surviving candidate combinations at one weight.

        Dispatches between the plain combination walk (no pruning structure
        to exploit), the frontier-seeded DFS (grown leaf on an AA re-scan)
        and the full prefix-pruned DFS.
        """
        pairwise_active = self._pairwise is not None and len(self._pairwise) > 0
        if not pairwise_active and not self._rows_restricted:
            yield from self._combo_chunks(weight)
            return
        states = self._frontier_states(weight)
        if states is not None:
            yield from self._dfs_chunks(weight, init_states=states)
            return
        yield from self._dfs_chunks(weight)

    # ----------------------------------------------------------- planar sweep
    def _ensure_planar(self) -> None:
        """Build (or adopt, or extend) the leaf's planar arrangement once.

        Resolution order mirrors the pairwise analysis: an arrangement
        shipped for exactly this configuration is adopted verbatim (no
        cost counted — it was counted where it was built); a retained
        arrangement whose line ids form a prefix of the current partial ids
        is copied and extended by the new half-planes only; otherwise the
        arrangement is built from scratch.  ``lines_inserted`` and
        ``faces_enumerated`` are charged exactly once per build/extension,
        so serial and task-mode runs account identically.
        """
        if self._planar_weights is not None:
            return
        if self._deadline is not None:
            # Arrangement builds are the leaf's chunkiest single step; check
            # before committing to one.
            self._deadline.check(self.counters, "planar_build")
        ids = tuple(hid for hid, _ in self.partial)
        arrangement: Optional[PlanarArrangement] = None
        shipped = self._planar_shipped
        if (
            shipped is not None
            and shipped.line_ids == ids
            and shipped.matches_box(self.lower, self.upper)
        ):
            arrangement = shipped
        if arrangement is None:
            seed = self._planar_seed
            if (
                seed is not None
                and len(seed.line_ids) <= len(ids)
                and seed.line_ids == ids[: len(seed.line_ids)]
                and seed.matches_box(self.lower, self.upper)
            ):
                arrangement = seed.copy()
                arrangement.insert_many(
                    self.partial[len(seed.line_ids):], counters=self.counters
                )
            else:
                arrangement = PlanarArrangement.for_leaf(
                    self.lower, self.upper, self._base
                )
                arrangement.insert_many(self.partial, counters=self.counters)
            if self.counters is not None:
                self.counters.faces_enumerated += arrangement.face_count
        self._planar = arrangement
        self._planar_weights = arrangement.positions_by_weight()

    def _cells_at_weight_planar(self, weight: int) -> List[LeafCell]:
        """Read one weight's candidates off the planar arrangement's faces.

        Every candidate runs through the same pairwise filter and the same
        exact clipping test (:meth:`_test_cell`) as the generic per-cell
        path — the arrangement only *discovers* which cover sets can be
        non-empty, so the emitted cells (and their witness centroids) are
        bit-identical to the generic enumeration's.
        """
        self._ensure_planar()
        return self._cells_from_candidates(
            self._planar_weights.get(weight, ()), weight
        )

    def cells_at_weight(self, weight: int) -> List[LeafCell]:
        """All non-empty cells of Hamming weight exactly ``weight``.

        Surviving candidates stream from :meth:`_candidate_chunks` as
        chunked sign matrices into the screen→LP funnel
        (:func:`repro.geometry.lp.screen_cells_batch`); the funnel interface
        is unchanged from the enumerate-then-filter pipeline it replaced.
        With ``use_planar`` in the 2-D reduced space, candidates instead
        come from the faces of the leaf's planar arrangement
        (:meth:`_cells_at_weight_planar`).
        """
        m = len(self.partial)
        if (
            self.dim == 2
            and self._use_planar
            and weight >= _PLANAR_MIN_WEIGHT
            and m >= _PLANAR_MIN_PARTIAL
        ):
            if weight > m:
                return []
            return self._cells_at_weight_planar(weight)
        if m == 0 or self.dim == 2:
            return self._cells_at_weight_sequential(weight)
        if weight > m:
            return []
        cells: List[LeafCell] = []
        survivors: Optional[List[Tuple[int, ...]]] = [] if self._track_frontier else None
        for combos in self._candidate_chunks(weight):
            if self._deadline is not None:
                # Cancellation checkpoint: once per candidate chunk, i.e.
                # every few thousand candidates through the funnel.
                self._deadline.check(self.counters, "within_leaf_funnel")
            if survivors is not None:
                if len(survivors) + len(combos) <= _FRONTIER_CAP:
                    survivors.extend(combos)
                else:
                    survivors = None
            bit_matrix = np.zeros((len(combos), m), dtype=np.int8)
            if weight:
                rows = np.repeat(np.arange(len(combos)), weight)
                cols = np.fromiter(
                    chain.from_iterable(combos), dtype=np.intp, count=len(combos) * weight
                )
                bit_matrix[rows, cols] = 1
            if self.counters is not None:
                self.counters.candidates_generated += len(combos)
                self.counters.cells_examined += len(combos)
            signs = bit_matrix.astype(float) * 2.0 - 1.0
            probes, probe_margins, probe_valid = self._probe_panel()
            status, witnesses = screen_cells_batch(
                self._partial_A,
                self._partial_b,
                signs,
                self.lower,
                self.upper,
                base_A=self._base_A,
                base_b=self._base_b,
                probes=probes,
                probe_margins=probe_margins,
                probe_valid=probe_valid,
                counters=self.counters,
            )
            for row, ones in enumerate(combos):
                if status[row] < 0:
                    continue
                if status[row] > 0:
                    point = witnesses[row]
                else:
                    point = self._test_cell_lp(self._bits_for(ones))
                    if point is not None:
                        self._add_probe(point)
                if point is None:
                    continue
                if self.counters is not None:
                    self.counters.nonempty_cells += 1
                inside_ids = tuple(self.partial[pos][0] for pos in ones)
                cells.append(
                    LeafCell(
                        bits=self._bits_for(ones),
                        inside_ids=inside_ids,
                        p_order=weight,
                        interior_point=point,
                    )
                )
        if self._track_frontier:
            self._frontier[weight] = tuple(survivors) if survivors is not None else None
        return cells

    def _cells_at_weight_sequential(self, weight: int) -> List[LeafCell]:
        """Per-cell path: 2-D clipping and the empty-partial degenerate case."""
        return self._cells_from_candidates(
            combinations(range(len(self.partial)), weight), weight
        )

    def _cells_from_candidates(self, candidates, weight: int) -> List[LeafCell]:
        """Resolve candidate one-position tuples into non-empty cells.

        The single per-candidate pipeline — pairwise filter, exact
        emptiness test (:meth:`_test_cell`), :class:`LeafCell` construction
        and the associated counters — shared by the sequential enumeration
        and the planar sweep.  Keeping one loop is what guarantees the two
        engines decide (and account) each candidate identically.
        """
        cells: List[LeafCell] = []
        for index, ones in enumerate(candidates):
            if self._deadline is not None and index % 256 == 0:
                # Cancellation checkpoint for the per-candidate path (2-D
                # clipping, planar-face resolution): every 256 candidates.
                self._deadline.check(self.counters, "within_leaf_candidates")
            bits = self._bits_for(ones)
            if self._pairwise is not None and self._pairwise.violates(bits):
                if self.counters is not None:
                    self.counters.pairwise_pruned += 1
                continue
            if self.counters is not None:
                self.counters.candidates_generated += 1
            point = self._test_cell(bits)
            if point is None:
                continue
            inside_ids = tuple(self.partial[pos][0] for pos in ones)
            cells.append(
                LeafCell(bits=bits, inside_ids=inside_ids, p_order=weight,
                         interior_point=point)
            )
        return cells

    def minimal_cells(self, *, extra: int = 0, max_weight: Optional[int] = None
                      ) -> Tuple[Optional[int], List[LeafCell]]:
        """Find the minimum p-order and the cells attaining it.

        Parameters
        ----------
        extra:
            Additionally report cells with p-order up to ``minimum + extra``
            (iMaxRank processing examines bit-strings with Hamming weights up
            to ``τ`` units larger).
        max_weight:
            Stop searching beyond this weight even if nothing was found —
            callers use the global pruning bound here so a leaf that cannot
            improve the interim result is abandoned early.

        Returns
        -------
        (minimum p-order or None, cells)
            ``None`` when the leaf contains no non-empty cell within the
            explored weights (possible when the leaf lies outside the
            permissible simplex).
        """
        if not self.partial:
            point = self._test_cell(())
            if point is None:
                return None, []
            return 0, [LeafCell(bits=(), inside_ids=(), p_order=0, interior_point=point)]

        limit = len(self.partial) if max_weight is None else min(max_weight, len(self.partial))
        minimum: Optional[int] = None
        collected: List[LeafCell] = []
        weight = 0
        while weight <= limit:
            cells = self.cells_at_weight(weight)
            if cells:
                if minimum is None:
                    minimum = weight
                    limit = min(limit, weight + extra)
                collected.extend(cells)
            weight += 1
        return minimum, collected
