"""Within-leaf processing (paper, Section 5.2).

Inside one quad-tree leaf, the half-spaces of the leaf's partial-overlap set
``P_l`` define a constrained arrangement.  Every cell of that arrangement is
identified by a bit-string over ``P_l``: bit ``i`` is 1 when the cell lies
inside the ``i``-th half-space and 0 when it lies in its complement.  The
cell's *p-order* is the Hamming weight of its bit-string; its (global) order
is the p-order plus ``|F_l|``.

The module enumerates bit-strings in increasing Hamming weight and tests
each candidate cell for a non-empty interior (intersection of the selected
half-spaces / complements, the leaf box and the permissible-simplex
constraints).  The first weight at which a non-empty cell appears is the
minimum p-order of the leaf; all non-empty cells of that weight (plus up to
``extra`` additional weights, for iMaxRank) are reported.

Two optimisations from the paper are implemented:

* **pairwise binary constraints** — pairs of half-spaces that are disjoint,
  nested or jointly covering within the leaf forbid certain bit
  combinations; violating bit-strings are dismissed without a feasibility
  test;
* an exact **polygon-clipping fast path** for the 2-dimensional reduced
  query space (data dimensionality 3), which avoids the LP entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..geometry.clipping import MIN_AREA, box_polygon, clip_polygon, polygon_area, polygon_centroid
from ..geometry.halfspace import Halfspace, reduced_space_constraints
from ..geometry.lp import find_interior_point, find_interior_point_arrays
from ..stats import CostCounters

__all__ = ["LeafCell", "WithinLeafProcessor", "PairwiseConstraints"]


@dataclass(frozen=True)
class LeafCell:
    """A non-empty cell found inside a quad-tree leaf.

    Attributes
    ----------
    bits:
        0/1 flags aligned with the processor's partial half-space ids.
    inside_ids:
        Ids of the partial half-spaces containing the cell (bit = 1).
    p_order:
        Hamming weight of ``bits``.
    interior_point:
        Witness point strictly inside the cell (reduced query space).
    """

    bits: Tuple[int, ...]
    inside_ids: Tuple[int, ...]
    p_order: int
    interior_point: np.ndarray


class PairwiseConstraints:
    """Forbidden bit combinations between pairs of partial half-spaces.

    For every pair ``(i, j)`` the four bit combinations are tested for
    feasibility within the leaf; infeasible combinations become forbidden
    patterns consulted before any full feasibility test.  This subsumes the
    paper's three containment statuses (disjoint / nested / covering) and is
    also sound when the two supporting hyperplanes do intersect inside the
    leaf (in which case all four combinations are feasible and nothing is
    forbidden).
    """

    def __init__(self) -> None:
        self._forbidden: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {}

    @classmethod
    def build(
        cls,
        halfspaces: Sequence[Tuple[int, Halfspace]],
        lower: np.ndarray,
        upper: np.ndarray,
        base_constraints: Sequence[Halfspace],
        *,
        counters: Optional[CostCounters] = None,
    ) -> "PairwiseConstraints":
        """Analyse every pair of partial half-spaces within the leaf box."""
        constraints = cls()
        for (pos_i, (_, h_i)), (pos_j, (_, h_j)) in combinations(enumerate(halfspaces), 2):
            forbidden: Set[Tuple[int, int]] = set()
            for bit_i in (0, 1):
                for bit_j in (0, 1):
                    parts = list(base_constraints)
                    parts.append(h_i if bit_i else h_i.complement())
                    parts.append(h_j if bit_j else h_j.complement())
                    result = find_interior_point(parts, lower, upper, counters=counters)
                    if not result.feasible:
                        forbidden.add((bit_i, bit_j))
            if forbidden:
                constraints._forbidden[(pos_i, pos_j)] = forbidden
        return constraints

    def violates(self, bits: Sequence[int]) -> bool:
        """True when ``bits`` matches a forbidden combination for some pair."""
        for (pos_i, pos_j), forbidden in self._forbidden.items():
            if (bits[pos_i], bits[pos_j]) in forbidden:
                return True
        return False

    def __len__(self) -> int:
        return len(self._forbidden)


class WithinLeafProcessor:
    """Enumerates the minimum-order cells inside one quad-tree leaf.

    Parameters
    ----------
    lower, upper:
        Leaf extent in the reduced query space.
    partial:
        ``(halfspace_id, halfspace)`` pairs of the leaf's partial-overlap set.
    use_pairwise:
        Enable the pairwise-constraint pruning (ablation A1 switches this
        off).  The analysis is only performed when the partial set is large
        enough for it to pay off.
    pairwise_min_size:
        Minimum ``|P_l|`` at which the pairwise analysis is carried out.
    counters:
        Optional cost counters (cells examined, LP calls).
    """

    def __init__(
        self,
        lower: Sequence[float] | np.ndarray,
        upper: Sequence[float] | np.ndarray,
        partial: Sequence[Tuple[int, Halfspace]],
        *,
        use_pairwise: bool = True,
        pairwise_min_size: int = 6,
        counters: Optional[CostCounters] = None,
    ) -> None:
        self.lower = np.asarray(lower, dtype=float).ravel()
        self.upper = np.asarray(upper, dtype=float).ravel()
        self.partial = list(partial)
        self.dim = self.lower.shape[0]
        self.counters = counters
        self._base = reduced_space_constraints(self.dim)
        # Pre-stacked coefficient arrays: the feasibility tests flip the signs
        # of individual rows per bit-string instead of rebuilding half-space
        # objects, which keeps the per-cell cost to a few vector operations.
        self._base_A = np.vstack([h.coefficients for h in self._base])
        self._base_b = np.array([h.offset for h in self._base], dtype=float)
        if self.partial:
            self._partial_A = np.vstack([h.coefficients for _, h in self.partial])
            self._partial_b = np.array([h.offset for _, h in self.partial], dtype=float)
        else:
            self._partial_A = np.zeros((0, self.dim))
            self._partial_b = np.zeros(0)
        if self.dim == 2:
            self._oriented = [
                (halfspace, halfspace.complement()) for _, halfspace in self.partial
            ]
        self._pairwise: Optional[PairwiseConstraints] = None
        if use_pairwise and len(self.partial) >= pairwise_min_size:
            self._pairwise = PairwiseConstraints.build(
                self.partial, self.lower, self.upper, self._base, counters=counters
            )

    # --------------------------------------------------------------- plumbing
    def _bits_for(self, ones: Sequence[int]) -> Tuple[int, ...]:
        bits = [0] * len(self.partial)
        for position in ones:
            bits[position] = 1
        return tuple(bits)

    def _test_cell(self, bits: Tuple[int, ...]) -> Optional[np.ndarray]:
        """Return an interior point of the cell, or None when it is empty."""
        if self.counters is not None:
            self.counters.cells_examined += 1
        if self.dim == 2:
            point = self._test_cell_clipping(bits)
        else:
            point = self._test_cell_lp(bits)
        if point is not None and self.counters is not None:
            self.counters.nonempty_cells += 1
        return point

    def _test_cell_lp(self, bits: Tuple[int, ...]) -> Optional[np.ndarray]:
        """LP-based feasibility using the pre-stacked constraint arrays."""
        if self.partial:
            signs = np.where(np.asarray(bits, dtype=bool), 1.0, -1.0)
            A = np.vstack([self._base_A, self._partial_A * signs[:, None]])
            b = np.concatenate([self._base_b, self._partial_b * signs])
        else:
            A, b = self._base_A, self._base_b
        result = find_interior_point_arrays(
            A, b, self.lower, self.upper, counters=self.counters
        )
        return result.point if result.feasible else None

    def _test_cell_clipping(self, bits: Tuple[int, ...]) -> Optional[np.ndarray]:
        """Exact polygon-clipping feasibility for the 2-D reduced space."""
        polygon = box_polygon(self.lower, self.upper)
        for constraint in self._base:
            polygon = clip_polygon(polygon, constraint)
            if polygon is None:
                return None
        for (inside, outside), bit in zip(self._oriented, bits):
            polygon = clip_polygon(polygon, inside if bit else outside)
            if polygon is None:
                return None
        if polygon_area(polygon) <= max(MIN_AREA, 1e-14):
            return None
        return polygon_centroid(polygon)

    # ------------------------------------------------------------ enumeration
    def cells_at_weight(self, weight: int) -> List[LeafCell]:
        """All non-empty cells of Hamming weight exactly ``weight``."""
        cells: List[LeafCell] = []
        positions = range(len(self.partial))
        for ones in combinations(positions, weight):
            bits = self._bits_for(ones)
            if self._pairwise is not None and self._pairwise.violates(bits):
                continue
            point = self._test_cell(bits)
            if point is None:
                continue
            inside_ids = tuple(self.partial[pos][0] for pos in ones)
            cells.append(
                LeafCell(bits=bits, inside_ids=inside_ids, p_order=weight, interior_point=point)
            )
        return cells

    def minimal_cells(self, *, extra: int = 0, max_weight: Optional[int] = None
                      ) -> Tuple[Optional[int], List[LeafCell]]:
        """Find the minimum p-order and the cells attaining it.

        Parameters
        ----------
        extra:
            Additionally report cells with p-order up to ``minimum + extra``
            (iMaxRank processing examines bit-strings with Hamming weights up
            to ``τ`` units larger).
        max_weight:
            Stop searching beyond this weight even if nothing was found —
            callers use the global pruning bound here so a leaf that cannot
            improve the interim result is abandoned early.

        Returns
        -------
        (minimum p-order or None, cells)
            ``None`` when the leaf contains no non-empty cell within the
            explored weights (possible when the leaf lies outside the
            permissible simplex).
        """
        if not self.partial:
            point = self._test_cell(())
            if point is None:
                return None, []
            return 0, [LeafCell(bits=(), inside_ids=(), p_order=0, interior_point=point)]

        limit = len(self.partial) if max_weight is None else min(max_weight, len(self.partial))
        minimum: Optional[int] = None
        collected: List[LeafCell] = []
        weight = 0
        while weight <= limit:
            cells = self.cells_at_weight(weight)
            if cells:
                if minimum is None:
                    minimum = weight
                    limit = min(limit, weight + extra)
                collected.extend(cells)
            weight += 1
        return minimum, collected
