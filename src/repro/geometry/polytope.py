"""Convex polytopes in half-space (H) representation.

MaxRank result regions are convex polytopes of the reduced query space:
each is the intersection of the half-spaces of the records that outscore the
focal record, the complements of the remaining half-spaces, the quad-tree
leaf extent and the permissibility constraints.  This module provides the
:class:`ConvexPolytope` value object used to report those regions.

The polytope keeps its defining half-spaces plus a bounding box and offers
the operations the library, examples and tests rely on: interior point /
non-emptiness (via the max-slack LP in :mod:`repro.geometry.lp`), membership
tests, vertex enumeration (``scipy.spatial.HalfspaceIntersection``), volume
estimation and random sampling.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import GeometryError
from .halfspace import Halfspace
from .lp import FeasibilityResult, find_interior_point

__all__ = ["ConvexPolytope"]


class ConvexPolytope:
    """A convex region ``{x : a_j · x > b_j} ∩ [lower, upper]``.

    Parameters
    ----------
    halfspaces:
        Open half-spaces whose intersection defines the region.
    lower, upper:
        Axis-aligned bounding box (quad-tree leaf extent or the unit box of
        the reduced query space).
    """

    def __init__(
        self,
        halfspaces: Sequence[Halfspace],
        lower: Sequence[float] | np.ndarray,
        upper: Sequence[float] | np.ndarray,
    ) -> None:
        self._halfspaces: List[Halfspace] = list(halfspaces)
        self._lower = np.asarray(lower, dtype=float).ravel()
        self._upper = np.asarray(upper, dtype=float).ravel()
        if self._lower.shape != self._upper.shape:
            raise GeometryError("polytope box bounds must have matching shapes")
        for h in self._halfspaces:
            if h.dim != self.dim:
                raise GeometryError("all half-spaces must match the box dimensionality")
        self._feasibility: Optional[FeasibilityResult] = None

    # -------------------------------------------------------------- basic
    @property
    def dim(self) -> int:
        """Dimensionality of the ambient (reduced query) space."""
        return int(self._lower.shape[0])

    @property
    def halfspaces(self) -> List[Halfspace]:
        """The defining open half-spaces (excluding the box bounds)."""
        return list(self._halfspaces)

    @property
    def lower(self) -> np.ndarray:
        """Lower corner of the bounding box."""
        return self._lower.copy()

    @property
    def upper(self) -> np.ndarray:
        """Upper corner of the bounding box."""
        return self._upper.copy()

    # ------------------------------------------------------------ feasibility
    def _feasible(self) -> FeasibilityResult:
        if self._feasibility is None:
            self._feasibility = find_interior_point(
                self._halfspaces, self._lower, self._upper
            )
        return self._feasibility

    @property
    def is_empty(self) -> bool:
        """True when the open region has no interior."""
        return not self._feasible().feasible

    def interior_point(self) -> np.ndarray:
        """Return a point strictly inside the region.

        Raises :class:`GeometryError` when the region is empty.
        """
        result = self._feasible()
        if not result.feasible or result.point is None:
            raise GeometryError("the polytope is empty; it has no interior point")
        return np.asarray(result.point, dtype=float)

    @property
    def inscribed_radius(self) -> float:
        """Radius of the largest inscribed ball found by the feasibility LP."""
        return self._feasible().radius

    def contains(self, point: Sequence[float] | np.ndarray, *, tol: float = 0.0) -> bool:
        """Strict membership test against half-spaces and box bounds."""
        x = np.asarray(point, dtype=float).ravel()
        if x.shape[0] != self.dim:
            raise GeometryError("point dimensionality does not match the polytope")
        if np.any(x < self._lower - tol) or np.any(x > self._upper + tol):
            return False
        return all(h.contains_point(x, tol=tol) for h in self._halfspaces)

    def intersect(self, halfspace: Halfspace) -> "ConvexPolytope":
        """Return a new polytope further constrained by ``halfspace``."""
        return ConvexPolytope(self._halfspaces + [halfspace], self._lower, self._upper)

    # --------------------------------------------------------------- geometry
    def _box_halfspaces(self) -> List[Halfspace]:
        constraints: List[Halfspace] = []
        for i in range(self.dim):
            axis = np.zeros(self.dim)
            axis[i] = 1.0
            constraints.append(Halfspace(axis, float(self._lower[i])))
            constraints.append(Halfspace(-axis, float(-self._upper[i])))
        return constraints

    def vertices(self) -> np.ndarray:
        """Enumerate the vertices of the closed polytope.

        Uses ``scipy.spatial.HalfspaceIntersection`` seeded with the LP
        interior point.  For a 1-D reduced space, returns the two interval
        endpoints.  Raises :class:`GeometryError` when the region is empty.
        """
        interior = self.interior_point()
        if self.dim == 1:
            lo, hi = self._interval_bounds()
            return np.array([[lo], [hi]])
        from scipy.spatial import HalfspaceIntersection

        rows = []
        for h in self._halfspaces + self._box_halfspaces():
            # scipy expects rows  [A | b]  encoding  A x + b <= 0, i.e.
            # -a · x + offset <= 0  for our  a · x >= offset.
            rows.append(np.append(-h.coefficients, h.offset))
        matrix = np.asarray(rows, dtype=float)
        try:
            intersection = HalfspaceIntersection(matrix, interior)
        except Exception as exc:  # pragma: no cover - numerical corner cases
            raise GeometryError(f"vertex enumeration failed: {exc}") from exc
        return np.unique(np.round(intersection.intersections, 12), axis=0)

    def _interval_bounds(self) -> tuple:
        """Exact bounds for the 1-D case."""
        lo = float(self._lower[0])
        hi = float(self._upper[0])
        for h in self._halfspaces:
            a = float(h.coefficients[0])
            bound = h.offset / a
            if a > 0:
                lo = max(lo, bound)
            else:
                hi = min(hi, bound)
        return lo, hi

    def volume(self, *, samples: int = 4096, rng: Optional[np.random.Generator] = None) -> float:
        """Estimate the region volume.

        For 1-D the length is exact; for 2-D the polygon area is exact (via
        the convex hull of the vertices); for higher dimensions a Monte-Carlo
        estimate over the bounding box is returned.
        """
        if self.is_empty:
            return 0.0
        if self.dim == 1:
            lo, hi = self._interval_bounds()
            return max(0.0, hi - lo)
        if self.dim == 2:
            from scipy.spatial import ConvexHull

            verts = self.vertices()
            if len(verts) < 3:
                return 0.0
            return float(ConvexHull(verts).volume)
        rng = rng or np.random.default_rng(0)
        points = rng.uniform(self._lower, self._upper, size=(samples, self.dim))
        box_volume = float(np.prod(self._upper - self._lower))
        if not self._halfspaces:
            return box_volume
        inside = np.ones(samples, dtype=bool)
        for h in self._halfspaces:
            inside &= points @ h.coefficients > h.offset
        return box_volume * float(inside.mean())

    def sample(self, count: int = 1, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``count`` points from the region by rejection around the interior point."""
        if self.is_empty:
            raise GeometryError("cannot sample from an empty polytope")
        rng = rng or np.random.default_rng(0)
        interior = self.interior_point()
        samples: List[np.ndarray] = []
        attempts = 0
        max_attempts = 200 * count
        while len(samples) < count and attempts < max_attempts:
            attempts += 1
            candidate = rng.uniform(self._lower, self._upper)
            if self.contains(candidate):
                samples.append(candidate)
        radius = max(self.inscribed_radius * 0.9, 0.0)
        while len(samples) < count:
            # Fall back to the inscribed ball around the interior point,
            # which is guaranteed to lie inside the region.
            direction = rng.normal(size=self.dim)
            norm = float(np.linalg.norm(direction))
            if norm == 0.0:
                samples.append(interior.copy())
                continue
            direction /= norm
            samples.append(interior + direction * rng.uniform(0.0, radius))
        return np.asarray(samples[:count])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConvexPolytope(dim={self.dim}, halfspaces={len(self._halfspaces)}, "
            f"empty={self.is_empty})"
        )
