"""Incremental planar line-arrangement over a convex region.

For data dimensionality ``d = 3`` the reduced query space is a plane, so the
within-leaf arrangement of a quad-tree leaf is a *planar* arrangement of the
partial half-planes' supporting lines, restricted to the convex region
``leaf box ∩ permissible simplex``.  Instead of enumerating candidate
bit-strings weight by weight (``C(m, w)`` of them) and clipping each one,
the whole arrangement can be built **once**, in ``O(m²)`` face splits, and
every face read off together with its exact *cover set* — the bitset of
half-planes containing it.  That is what :class:`PlanarArrangement`
provides, and what :mod:`repro.quadtree.withinleaf` consumes as the ``d = 3``
fast path (see ``use_planar``).

Representation
--------------
The arrangement is stored face-first: a list of convex polygons (CCW vertex
arrays) that partition the region, each carrying an integer bitset ``mask``
whose bit ``i`` is set exactly when the face lies inside the ``i``-th
inserted half-plane.  Inserting a line walks the current faces and splits
every face the line crosses (Sutherland–Hodgman clipping against both
orientations); faces on one side keep their vertices verbatim, so repeated
insertion does not erode the geometry.  The vertex/edge structure is derived
from the faces on demand (:meth:`PlanarArrangement.vertex_edge_face_counts`)
— enough for the Euler-characteristic invariants the tests pin, without the
bookkeeping of a full DCEL.

Equivalence contract
--------------------
The arrangement is used for *discovery only*: it over-approximates the set
of non-empty cells (its face-retention threshold :data:`SPLIT_MIN_AREA` is
two orders of magnitude below the emptiness threshold of the exact clipping
test in :mod:`repro.geometry.clipping`), and every discovered cover set is
re-certified by the same per-bit-string clipping sequence the generic path
runs.  A cell the generic path reports therefore intersects at least one
retained face with the identical cover set, and every candidate the sweep
proposes passes or fails the identical final test — which is what makes the
planar and the generic engine bit-identical (the differential harness in
``tests/test_differential.py`` cross-checks this on randomized workloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GeometryError
from ..stats import CostCounters
from .clipping import box_polygon, clip_polygon, polygon_area
from .halfspace import Halfspace

__all__ = ["PlanarFace", "PlanarArrangement", "SPLIT_MIN_AREA"]

#: Faces whose area falls below this threshold are dropped during a split.
#: Deliberately far below :data:`repro.geometry.clipping.MIN_AREA` (and the
#: ``1e-14`` emptiness cut of the within-leaf clipping test): the arrangement
#: must *over*-approximate the non-empty cells, so that the exact clipping
#: re-certification — not the sweep — is the authority on emptiness.
SPLIT_MIN_AREA = 1e-18


def _cover_positions(mask: int) -> Tuple[int, ...]:
    """Bit positions set in ``mask``, in increasing order."""
    positions = []
    position = 0
    while mask:
        if mask & 1:
            positions.append(position)
        mask >>= 1
        position += 1
    return tuple(positions)


def _fast_area(vertices: np.ndarray) -> float:
    """Shoelace area without the ``np.roll`` temporaries (hot path)."""
    if vertices.shape[0] < 3:
        return 0.0
    x = vertices[:, 0]
    y = vertices[:, 1]
    cross = x @ np.concatenate([y[1:], y[:1]]) - y @ np.concatenate([x[1:], x[:1]])
    return abs(float(cross)) / 2.0


def _split_polygon(
    vertices: np.ndarray, values: np.ndarray
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Split a convex polygon by the zero set of per-vertex line values.

    ``values[i]`` is the (signed) evaluation of the splitting line at vertex
    ``i``.  Returns ``(inside, outside)`` vertex arrays — the parts with
    ``values ≥ 0`` and ``values ≤ 0`` — using exactly the edge-interpolation
    formula of :func:`repro.geometry.clipping.clip_polygon`, without
    constructing intermediate :class:`Halfspace` objects.  Parts with fewer
    than 3 vertices come back as ``None``.
    """
    inside: List[np.ndarray] = []
    outside: List[np.ndarray] = []
    m = len(vertices)
    for i in range(m):
        j = (i + 1) % m
        current = vertices[i]
        val_c = values[i]
        val_n = values[j]
        if val_c >= 0:
            inside.append(current)
        if val_c <= 0:
            outside.append(current)
        if (val_c > 0 and val_n < 0) or (val_c < 0 and val_n > 0):
            t = val_c / (val_c - val_n)
            point = current + t * (vertices[j] - current)
            inside.append(point)
            outside.append(point)
    return (
        np.asarray(inside, dtype=float) if len(inside) >= 3 else None,
        np.asarray(outside, dtype=float) if len(outside) >= 3 else None,
    )


@dataclass(frozen=True)
class PlanarFace:
    """One face of the arrangement: a convex polygon plus its cover bitset.

    Attributes
    ----------
    vertices:
        ``(k, 2)`` CCW vertex array of the face polygon.
    mask:
        Integer bitset over the inserted lines, in insertion order: bit ``i``
        is set exactly when the face lies inside the ``i``-th half-plane.
    """

    vertices: np.ndarray
    mask: int

    def area(self) -> float:
        """Area of the face polygon."""
        return polygon_area(self.vertices)

    def cover_positions(self) -> Tuple[int, ...]:
        """Positions (insertion indices) of the half-planes covering the face."""
        return _cover_positions(self.mask)


class PlanarArrangement:
    """Incremental arrangement of half-plane boundary lines over a convex region.

    Parameters
    ----------
    region:
        CCW vertex array of the convex region the arrangement lives in, or
        ``None`` for an empty region (the arrangement then has no faces and
        inserts are no-ops on the face set).

    The object is picklable and cheap to :meth:`copy` (faces are never
    mutated in place, so copies share vertex arrays), which is how AA
    re-scans retain a leaf's arrangement across iterations and how the
    execution engine ships it into worker processes.
    """

    def __init__(self, region: Optional[np.ndarray]) -> None:
        if region is not None:
            region = np.asarray(region, dtype=float)
            if region.ndim != 2 or region.shape[1] != 2:
                raise GeometryError("the arrangement region must be a (k, 2) polygon")
            if polygon_area(region) <= SPLIT_MIN_AREA:
                region = None
        #: the initial convex region (None when empty)
        self.region: Optional[np.ndarray] = region
        self._face_polygons: List[np.ndarray] = [] if region is None else [region]
        self._face_masks: List[int] = [] if region is None else [0]
        #: inserted half-planes, in insertion order (bit positions)
        self.lines: List[Halfspace] = []
        #: external ids of the inserted half-planes, in insertion order
        self.line_ids: Tuple[int, ...] = ()
        #: leaf box the arrangement was built for (set by :meth:`for_leaf`);
        #: consumers verify it before adopting a shipped/retained arrangement
        self.lower: Optional[np.ndarray] = None
        self.upper: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ sizes
    @property
    def line_count(self) -> int:
        """Number of half-planes inserted so far."""
        return len(self.lines)

    @property
    def face_count(self) -> int:
        """Number of faces currently partitioning the region."""
        return len(self._face_polygons)

    def __len__(self) -> int:
        return len(self._face_polygons)

    # ------------------------------------------------------------------ build
    @classmethod
    def for_leaf(
        cls,
        lower: Sequence[float] | np.ndarray,
        upper: Sequence[float] | np.ndarray,
        base_constraints: Sequence[Halfspace] = (),
    ) -> "PlanarArrangement":
        """Arrangement over ``[lower, upper] ∩ base_constraints`` (2-D only).

        Mirrors the clipping sequence of the within-leaf emptiness test: the
        leaf box polygon is clipped by each base (permissible-simplex)
        constraint in order; an empty intersection yields an arrangement
        with no faces.
        """
        polygon: Optional[np.ndarray] = box_polygon(lower, upper)
        for constraint in base_constraints:
            polygon = clip_polygon(polygon, constraint)
            if polygon is None:
                break
        arrangement = cls(polygon)
        arrangement.lower = np.asarray(lower, dtype=float).ravel()
        arrangement.upper = np.asarray(upper, dtype=float).ravel()
        return arrangement

    def matches_box(
        self,
        lower: Sequence[float] | np.ndarray,
        upper: Sequence[float] | np.ndarray,
    ) -> bool:
        """True when the arrangement was built for exactly this leaf box."""
        return (
            self.lower is not None
            and self.upper is not None
            and np.array_equal(self.lower, np.asarray(lower, dtype=float).ravel())
            and np.array_equal(self.upper, np.asarray(upper, dtype=float).ravel())
        )

    def copy(self) -> "PlanarArrangement":
        """Cheap copy sharing the (immutable) face vertex arrays."""
        clone = PlanarArrangement(None)
        clone.region = self.region
        clone._face_polygons = list(self._face_polygons)
        clone._face_masks = list(self._face_masks)
        clone.lines = list(self.lines)
        clone.line_ids = self.line_ids
        clone.lower = self.lower
        clone.upper = self.upper
        return clone

    def insert(
        self,
        line_id: int,
        halfspace: Halfspace,
        *,
        counters: Optional[CostCounters] = None,
    ) -> None:
        """Insert one half-plane: split every face its boundary line crosses.

        Faces entirely on one side keep their vertex arrays verbatim (only
        the mask of the inside ones gains the new bit); crossed faces are
        replaced by their two clipped parts.  Parts whose area falls below
        :data:`SPLIT_MIN_AREA` are dropped — their face then counts as
        entirely on the other side.
        """
        if halfspace.dim != 2:
            raise GeometryError("PlanarArrangement requires 2-D half-planes")
        position = len(self.lines)
        self.lines.append(halfspace)
        self.line_ids = self.line_ids + (line_id,)
        if counters is not None:
            counters.lines_inserted += 1
        if not self._face_polygons:
            return
        bit = 1 << position
        # Classify every face against the line in one shot: stack all face
        # vertices, evaluate the linear form once, and reduce per face.
        # Most faces are not crossed, so the Python-level clipping below
        # only runs for the (few) faces in the line's zone.
        stacked = np.concatenate(self._face_polygons, axis=0)
        values = stacked @ halfspace.coefficients - halfspace.offset
        sizes = np.fromiter(
            (polygon.shape[0] for polygon in self._face_polygons),
            dtype=np.intp,
            count=len(self._face_polygons),
        )
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        face_min = np.minimum.reduceat(values, offsets)
        face_max = np.maximum.reduceat(values, offsets)
        fully_inside = face_min >= 0.0
        fully_outside = face_max <= 0.0
        crossed = ~(fully_inside | fully_outside)
        if not crossed.any():
            self._face_masks = [
                mask | bit if inside else mask
                for mask, inside in zip(self._face_masks, fully_inside)
            ]
            return
        polygons: List[np.ndarray] = []
        masks: List[int] = []
        for index, (vertices, mask) in enumerate(
            zip(self._face_polygons, self._face_masks)
        ):
            if fully_inside[index]:
                # Entirely inside (boundary touching allowed).
                polygons.append(vertices)
                masks.append(mask | bit)
                continue
            if fully_outside[index]:
                polygons.append(vertices)
                masks.append(mask)
                continue
            face_values = values[offsets[index]: offsets[index] + sizes[index]]
            inside, outside = _split_polygon(vertices, face_values)
            inside_area = _fast_area(inside) if inside is not None else 0.0
            outside_area = _fast_area(outside) if outside is not None else 0.0
            if outside_area <= SPLIT_MIN_AREA:
                polygons.append(vertices)
                masks.append(mask | bit)
            elif inside_area <= SPLIT_MIN_AREA:
                polygons.append(vertices)
                masks.append(mask)
            else:
                polygons.append(inside)
                masks.append(mask | bit)
                polygons.append(outside)
                masks.append(mask)
        self._face_polygons = polygons
        self._face_masks = masks

    def insert_many(
        self,
        pairs: Iterable[Tuple[int, Halfspace]],
        *,
        counters: Optional[CostCounters] = None,
    ) -> None:
        """Insert ``(line_id, halfspace)`` pairs in order."""
        for line_id, halfspace in pairs:
            self.insert(line_id, halfspace, counters=counters)

    # ------------------------------------------------------------ enumeration
    def faces(self) -> List[PlanarFace]:
        """Every face of the arrangement with its cover bitset."""
        return [
            PlanarFace(vertices=vertices, mask=mask)
            for vertices, mask in zip(self._face_polygons, self._face_masks)
        ]

    def face_areas(self) -> List[float]:
        """Areas of all faces (they partition the region)."""
        return [polygon_area(vertices) for vertices in self._face_polygons]

    def cover_ids(self, mask: int) -> Tuple[int, ...]:
        """External line ids selected by a face mask, in insertion order."""
        return tuple(
            self.line_ids[position]
            for position in range(len(self.line_ids))
            if mask & (1 << position)
        )

    def distinct_masks(self) -> List[int]:
        """The distinct cover bitsets over all faces (deduplicated).

        A cell of the arrangement is convex, hence connected; numerically a
        cell can surface as several face fragments with the same mask, so
        consumers work with the deduplicated mask set.
        """
        return sorted(set(self._face_masks))

    def positions_by_weight(self) -> Dict[int, List[Tuple[int, ...]]]:
        """Distinct cover sets grouped by weight (number of covering lines).

        Returns ``{weight: [ones, ...]}`` where each ``ones`` tuple lists the
        covering line *positions* in increasing order; within one weight the
        tuples are in lexicographic order — the enumeration order of
        ``itertools.combinations``, which keeps the planar sweep's candidate
        stream aligned with the generic path's.
        """
        by_weight: Dict[int, List[Tuple[int, ...]]] = {}
        seen = set()
        for mask in self._face_masks:
            if mask in seen:
                continue
            seen.add(mask)
            ones = _cover_positions(mask)
            by_weight.setdefault(len(ones), []).append(ones)
        for ones_list in by_weight.values():
            ones_list.sort()
        return by_weight

    # -------------------------------------------------------------- structure
    def vertex_edge_face_counts(self, *, decimals: int = 9) -> Tuple[int, int, int]:
        """Derived ``(V, E, F)`` of the planar subdivision (outer face excluded).

        Vertices and edges are extracted from the face polygons with
        coordinates rounded to ``decimals`` for identification.  For a
        subdivision of a convex region (a disk), Euler's formula gives
        ``V − E + F = 1`` when the outer face is not counted — the invariant
        the metamorphic tests assert on well-conditioned inputs.
        """
        vertices = set()
        edges = set()
        for polygon in self._face_polygons:
            rounded = [tuple(np.round(vertex, decimals)) for vertex in polygon]
            count = len(rounded)
            for index, vertex in enumerate(rounded):
                vertices.add(vertex)
                other = rounded[(index + 1) % count]
                if vertex != other:
                    edges.add(frozenset((vertex, other)))
        return len(vertices), len(edges), len(self._face_polygons)
