"""Strict feasibility of open half-space intersections.

Cells of the half-space arrangement are intersections of open half-spaces
clipped to a quad-tree leaf (an axis-aligned box).  Deciding whether such a
cell has non-empty interior — and producing a witness point inside it — is
the work-horse primitive of within-leaf processing (paper, Section 5.2),
replacing the authors' use of the Qhull library.

Strict feasibility is decided with a *maximum-slack* program: find a point
``x`` and a slack ``ε ≥ 0`` maximal such that ``a_j · x ≥ b_j + ε · ||a_j||``
for every half-space ``j`` and ``lower + ε ≤ x ≤ upper − ε``.  The system of
open inequalities has an interior point exactly when the optimal ``ε`` is
strictly positive; the normalisation gives ``ε`` the geometric meaning of an
inscribed-ball radius, so the witness point is numerically well inside the
cell.

Because a single MaxRank query performs thousands of these tests on systems
with only a handful of variables, the solver matters: the default engine is
the library's own Seidel randomised LP (:mod:`repro.geometry.seidel`), with
cheap vectorised accept/reject screens in front of it.  ``scipy``'s HiGHS
solver remains available via ``engine="scipy"`` and is used by the tests to
cross-check the Seidel results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import GeometryError
from .halfspace import Halfspace
from .seidel import solve_lp

__all__ = [
    "FeasibilityResult",
    "find_interior_point",
    "find_interior_point_arrays",
    "screen_cells_batch",
    "box_row_extremes",
    "MIN_INTERIOR_RADIUS",
    "ACCEPT_MARGIN_FACTOR",
]

#: A cell narrower than this inscribed radius is treated as empty.  The paper
#: ignores score ties; degenerate slivers of (near) zero measure correspond to
#: tie hyperplanes and carry no query-space area.
MIN_INTERIOR_RADIUS = 1e-9

#: Safety factor of the accept screens: a candidate point only certifies a
#: cell as non-empty when every (normalised) constraint margin exceeds
#: ``ACCEPT_MARGIN_FACTOR * MIN_INTERIOR_RADIUS``.  Cells whose inscribed
#: radius falls between the two thresholds go to the exact LP, so the screens
#: never flip a feasibility decision relative to the per-cell solver.
ACCEPT_MARGIN_FACTOR = 10.0


@dataclass(frozen=True)
class FeasibilityResult:
    """Outcome of a strict-feasibility test.

    Attributes
    ----------
    feasible:
        True when the open intersection has an interior point.
    point:
        A witness interior point (None when infeasible).
    radius:
        The radius of the largest inscribed ball found (0 when infeasible).
    """

    feasible: bool
    point: Optional[np.ndarray]
    radius: float


_INFEASIBLE = FeasibilityResult(False, None, 0.0)


def find_interior_point_arrays(
    A: np.ndarray,
    b: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    *,
    min_radius: float = MIN_INTERIOR_RADIUS,
    counters=None,
    engine: str = "seidel",
) -> FeasibilityResult:
    """Find an interior point of ``{x : A x > b} ∩ [lower, upper]``.

    Array-based fast path used by within-leaf processing.  ``A`` is an
    ``(m, k)`` matrix (``m`` may be zero), ``b`` an ``(m,)`` vector and the
    box bounds ``k``-vectors.
    """
    dim = int(lower.shape[0])
    extent = upper - lower
    if np.any(extent <= 0):
        return _INFEASIBLE
    box_radius = float(extent.min()) / 2.0
    centre = (lower + upper) / 2.0

    if A.shape[0] == 0:
        return FeasibilityResult(True, centre, box_radius)

    norms = np.sqrt(np.einsum("ij,ij->i", A, A))
    norms = np.where(norms > 0, norms, 1.0)

    # Quick reject: some half-space cannot be satisfied anywhere in the box.
    max_vals = np.where(A > 0, A * upper, A * lower).sum(axis=1)
    if np.any(max_vals <= b + min_radius * norms):
        return _INFEASIBLE

    # Quick accept: the box centre is already comfortably inside everything.
    margins = (A @ centre - b) / norms
    radius = float(min(margins.min(), box_radius))
    if radius > ACCEPT_MARGIN_FACTOR * min_radius:
        return FeasibilityResult(True, centre, radius)

    if counters is not None:
        counters.lp_calls += 1

    if engine == "scipy":
        return _solve_with_scipy(A, b, norms, lower, upper, min_radius, counters=counters)
    return _solve_with_seidel(A, b, norms, lower, upper, min_radius, counters=counters)


def _solve_with_seidel(
    A: np.ndarray,
    b: np.ndarray,
    norms: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    min_radius: float,
    counters=None,
) -> FeasibilityResult:
    """Max-slack feasibility via the library's Seidel LP solver.

    The constraint-row tally goes to ``counters.lp_constraint_rows`` (when
    counters are supplied) rather than any solver-local state, so the
    accounting survives execution on worker processes and merges exactly.
    """
    dim = int(lower.shape[0])
    max_slack = float(np.max(upper - lower))
    if counters is not None:
        counters.lp_constraint_rows += A.shape[0] + 2 * dim
    constraints = []
    # a · x - ||a|| t >= b   ->   -a · x + ||a|| t <= -b
    for row, offset, norm in zip(A, b, norms):
        constraints.append(([*(-row), float(norm)], float(-offset)))
    # Keep the witness off the box boundary as well:  x_i ± t within bounds.
    for i in range(dim):
        grow = [0.0] * (dim + 1)
        grow[i] = 1.0
        grow[dim] = 1.0
        constraints.append((grow, float(upper[i])))
        shrink = [0.0] * (dim + 1)
        shrink[i] = -1.0
        shrink[dim] = 1.0
        constraints.append((shrink, float(-lower[i])))
    objective = [0.0] * dim + [1.0]
    solution = solve_lp(
        constraints,
        objective,
        [*lower, 0.0],
        [*upper, max_slack],
    )
    if solution is None:
        return _INFEASIBLE
    radius = float(solution[-1])
    if radius <= min_radius:
        return _INFEASIBLE
    return FeasibilityResult(True, np.asarray(solution[:dim], dtype=float), radius)


def _solve_with_scipy(
    A: np.ndarray,
    b: np.ndarray,
    norms: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    min_radius: float,
    counters=None,
) -> FeasibilityResult:
    """Max-slack feasibility via ``scipy.optimize.linprog`` (cross-check engine)."""
    from scipy.optimize import linprog

    dim = int(lower.shape[0])
    if counters is not None:
        counters.lp_constraint_rows += A.shape[0] + 2 * dim
    n_var = dim + 1
    c = np.zeros(n_var)
    c[-1] = -1.0
    A_ub = np.hstack([-A, norms.reshape(-1, 1)])
    b_ub = -b
    bounds = [(float(l), float(h)) for l, h in zip(lower, upper)]
    bounds.append((0.0, float(np.max(upper - lower))))
    result = linprog(c, A_ub=A_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:
        return _INFEASIBLE
    radius = float(result.x[-1])
    if radius <= min_radius:
        return _INFEASIBLE
    return FeasibilityResult(True, np.asarray(result.x[:dim], dtype=float), radius)


def box_row_extremes(
    A: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row ``(min, max)`` of ``A @ x`` over the box ``[lower, upper]``.

    The extremes of a linear function over an axis-aligned box decompose into
    the positive and the negative coefficient parts, so all rows are handled
    with two matrix–vector products.
    """
    Apos = np.where(A > 0, A, 0.0)
    Aneg = A - Apos
    row_min = Apos @ lower + Aneg @ upper
    row_max = Apos @ upper + Aneg @ lower
    return row_min, row_max


def screen_cells_batch(
    A: np.ndarray,
    b: np.ndarray,
    signs: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    *,
    base_A: Optional[np.ndarray] = None,
    base_b: Optional[np.ndarray] = None,
    probes: Optional[np.ndarray] = None,
    probe_margins: Optional[np.ndarray] = None,
    probe_valid: Optional[np.ndarray] = None,
    min_radius: float = MIN_INTERIOR_RADIUS,
    counters=None,
) -> Tuple[np.ndarray, list]:
    """Resolve a batch of arrangement cells without per-cell LPs.

    Every candidate cell of one ``(leaf, weight)`` batch shares the same row
    set ``A x ≷ b`` and differs only in the orientation of each row, encoded
    by ``signs`` — a ``(C, m)`` matrix of ``±1`` where row ``c`` describes
    the cell ``{x : signs[c, i] · (A_i · x − b_i) > 0 ∀ i}`` intersected with
    the box ``[lower, upper]`` and the fixed-orientation ``base`` rows.  The
    batches arrive from the prefix-pruned DFS generator of
    :mod:`repro.quadtree.withinleaf`, which already refuses row orientations
    unsatisfiable anywhere in the box, so within a leaf the reject screen
    below mainly guards degenerate boxes and base-infeasible leaves.

    Two vectorised screens are applied:

    * **reject** — a cell is empty whenever a single row cannot be satisfied
      anywhere in the box; the per-row corner extremes are computed once and
      compared against all orientations at once.  This is exactly the
      quick-reject of :func:`find_interior_point_arrays`, applied batch-wise.
    * **accept** — a panel of probe points (leaf centre, perturbed corners,
      previously found witness points) is evaluated against all rows in one
      matrix product; a probe whose normalised margins all clear the safety
      threshold certifies the unique cell whose bit-string matches the
      probe's sign pattern.  Matching is done on packed bit patterns, so the
      cost is ``O((C + p) · m / 8)`` rather than ``O(C · p · m)``.

    Cells resolved by neither screen must go to the exact per-cell solver
    (:func:`find_interior_point_arrays`); because the accept threshold is
    ``ACCEPT_MARGIN_FACTOR`` times the LP's feasibility radius, the screens
    agree with the solver on every cell they resolve.

    Returns
    -------
    (status, witnesses)
        ``status`` is an ``int8`` array over cells: ``1`` accepted (non-empty,
        witness available), ``-1`` rejected (empty), ``0`` unresolved.
        ``witnesses`` is a list with a witness point for every accepted cell
        and ``None`` elsewhere.
    """
    n_cells = signs.shape[0]
    status = np.zeros(n_cells, dtype=np.int8)
    witnesses: list = [None] * n_cells
    if n_cells == 0:
        return status, witnesses
    extent = upper - lower
    if np.any(extent <= 0):
        status[:] = -1
        if counters is not None:
            counters.screen_rejects += n_cells
        return status, witnesses

    # ---- reject screen: some row unsatisfiable anywhere in the box --------
    if base_A is not None and base_A.shape[0]:
        base_norms = np.sqrt(np.einsum("ij,ij->i", base_A, base_A))
        base_norms = np.where(base_norms > 0, base_norms, 1.0)
        _, base_max = box_row_extremes(base_A, lower, upper)
        if np.any(base_max <= base_b + min_radius * base_norms):
            status[:] = -1
            if counters is not None:
                counters.screen_rejects += n_cells
            return status, witnesses

    m = A.shape[0]
    if m:
        norms = np.sqrt(np.einsum("ij,ij->i", A, A))
        norms = np.where(norms > 0, norms, 1.0)
        row_min, row_max = box_row_extremes(A, lower, upper)
        # max of signs[c,i]·(A_i·x) over the box is row_max or -row_min.
        oriented_max = np.where(signs > 0, row_max[None, :], -row_min[None, :])
        rejected = np.any(
            oriented_max <= signs * b[None, :] + min_radius * norms[None, :], axis=1
        )
        status[rejected] = -1

        # ---- accept screen: probe sign patterns certify matching cells ----
        if probe_margins is not None and probe_margins.shape[1]:
            threshold = ACCEPT_MARGIN_FACTOR * min_radius
            usable = probe_valid & (np.abs(probe_margins) > threshold).all(axis=0)
            if np.any(usable):
                usable_idx = np.nonzero(usable)[0]
                probe_bits = probe_margins[:, usable_idx] > 0  # (m, p_usable)
                packed_probe = np.packbits(probe_bits.T, axis=1)
                pattern_to_probe = {}
                for position, j in enumerate(usable_idx):
                    key = packed_probe[position].tobytes()
                    if key not in pattern_to_probe:
                        pattern_to_probe[key] = int(j)
                cell_bits = signs > 0
                packed_cells = np.packbits(cell_bits, axis=1)
                for c in range(n_cells):
                    if status[c]:
                        continue
                    probe_index = pattern_to_probe.get(packed_cells[c].tobytes())
                    if probe_index is not None:
                        status[c] = 1
                        witnesses[c] = probes[probe_index]
    if counters is not None:
        counters.screen_rejects += int(np.count_nonzero(status == -1))
        counters.screen_accepts += int(np.count_nonzero(status == 1))
    return status, witnesses


def find_interior_point(
    halfspaces: Sequence[Halfspace],
    lower: Sequence[float] | np.ndarray,
    upper: Sequence[float] | np.ndarray,
    *,
    min_radius: float = MIN_INTERIOR_RADIUS,
    counters=None,
    engine: str = "seidel",
) -> FeasibilityResult:
    """Find an interior point of ``{x : a_j · x > b_j} ∩ [lower, upper]``.

    Object-based convenience wrapper around
    :func:`find_interior_point_arrays`; see that function for semantics.
    """
    lo = np.asarray(lower, dtype=float).ravel()
    hi = np.asarray(upper, dtype=float).ravel()
    if lo.shape != hi.shape:
        raise GeometryError("box bounds must have identical shapes")
    dim = lo.shape[0]
    halfspaces = list(halfspaces)
    if halfspaces:
        A = np.vstack([h.coefficients for h in halfspaces])
        if A.shape[1] != dim:
            raise GeometryError("half-space dimensionality does not match the box")
        b = np.array([h.offset for h in halfspaces], dtype=float)
    else:
        A = np.zeros((0, dim))
        b = np.zeros(0)
    return find_interior_point_arrays(
        A, b, lo, hi, min_radius=min_radius, counters=counters, engine=engine
    )
