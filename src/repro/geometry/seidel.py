"""Seidel's randomised incremental algorithm for tiny linear programs.

Within-leaf processing decides the emptiness of thousands of candidate cells
per MaxRank query, each a system of at most a few dozen linear inequalities
in at most a handful of variables.  A general-purpose solver pays several
milliseconds of setup per call, which dominates the whole query; Seidel's
algorithm — linear expected time in the number of constraints for fixed
dimension — solves these tiny programs in tens of microseconds.

The solver maximises ``c · x`` subject to ``g_j · x ≤ h_j`` and box bounds
``lower ≤ x ≤ upper``.  The box keeps every subproblem bounded, which is the
precondition for the classic recursion: process constraints in random order;
while the incumbent optimum satisfies the next constraint nothing changes,
otherwise the new optimum lies on that constraint's hyperplane and is found
by recursing on the problem projected onto it (one variable eliminated).

Plain Python floats and lists are used on purpose: for dimensions ≤ 8 the
interpreter overhead of numpy broadcasting exceeds the arithmetic cost.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

__all__ = ["solve_lp", "LPResult"]

#: Coefficients below this magnitude are treated as zero.
_TINY = 1e-13
#: Tolerance used when checking whether the incumbent satisfies a constraint.
_FEAS_TOL = 1e-10

Constraint = Tuple[List[float], float]
LPResult = Optional[List[float]]


def _dot(a: Sequence[float], b: Sequence[float]) -> float:
    total = 0.0
    for x, y in zip(a, b):
        total += x * y
    return total


def solve_lp(
    constraints: Sequence[Constraint],
    objective: Sequence[float],
    lower: Sequence[float],
    upper: Sequence[float],
    *,
    seed: int = 0,
) -> LPResult:
    """Maximise ``objective · x`` subject to ``g · x ≤ h`` and ``lower ≤ x ≤ upper``.

    Parameters
    ----------
    constraints:
        Sequence of ``(g, h)`` pairs, each encoding ``g · x ≤ h``.
    objective:
        Objective coefficients ``c``.
    lower, upper:
        Finite box bounds; the box must be non-empty.
    seed:
        Seed of the constraint shuffle (fixed for reproducibility).

    Returns
    -------
    list[float] | None
        An optimal point, or ``None`` when the system is infeasible.
    """
    rng = random.Random(seed)
    c = [float(v) for v in objective]
    lo = [float(v) for v in lower]
    hi = [float(v) for v in upper]
    prepared = [([float(v) for v in g], float(h)) for g, h in constraints]
    return _solve(prepared, c, lo, hi, rng)


def _solve(
    constraints: List[Constraint],
    c: List[float],
    lower: List[float],
    upper: List[float],
    rng: random.Random,
) -> LPResult:
    k = len(c)
    if any(upper[i] < lower[i] - _FEAS_TOL for i in range(k)):
        return None
    if k == 1:
        return _solve_1d(constraints, c[0], lower[0], upper[0])

    order = list(range(len(constraints)))
    rng.shuffle(order)

    # Optimum of the box alone.
    x = [upper[i] if c[i] > 0 else lower[i] for i in range(k)]
    processed: List[Constraint] = []
    for index in order:
        g, h = constraints[index]
        if _dot(g, x) <= h + _FEAS_TOL:
            processed.append((g, h))
            continue
        # The incumbent violates (g, h): the new optimum lies on g · y = h.
        j = max(range(k), key=lambda i: abs(g[i]))
        gj = g[j]
        if abs(gj) < _TINY:
            # Constraint is (numerically) 0 · x ≤ h with h < g · x; since the
            # left-hand side is ~0 the constraint is unsatisfiable only when
            # h is negative.
            if h < -_FEAS_TOL:
                return None
            processed.append((g, h))
            continue
        keep = [i for i in range(k) if i != j]

        def project(vec: Sequence[float], rhs: float) -> Constraint:
            factor = vec[j] / gj
            return ([vec[i] - factor * g[i] for i in keep], rhs - factor * h)

        sub_constraints = [project(g2, h2) for g2, h2 in processed]
        unit = [0.0] * k
        unit[j] = 1.0
        sub_constraints.append(project(unit, upper[j]))
        unit_neg = [0.0] * k
        unit_neg[j] = -1.0
        sub_constraints.append(project(unit_neg, -lower[j]))

        factor_c = c[j] / gj
        sub_c = [c[i] - factor_c * g[i] for i in keep]
        sub_lower = [lower[i] for i in keep]
        sub_upper = [upper[i] for i in keep]
        sub_x = _solve(sub_constraints, sub_c, sub_lower, sub_upper, rng)
        if sub_x is None:
            return None
        x = [0.0] * k
        for position, i in enumerate(keep):
            x[i] = sub_x[position]
        x[j] = (h - sum(g[i] * x[i] for i in keep)) / gj
        processed.append((g, h))
    return x


def _solve_1d(
    constraints: List[Constraint], c: float, lower: float, upper: float
) -> LPResult:
    lo, hi = lower, upper
    for g, h in constraints:
        g0 = g[0]
        if g0 > _TINY:
            hi = min(hi, h / g0)
        elif g0 < -_TINY:
            lo = max(lo, h / g0)
        elif h < -_FEAS_TOL:
            return None
    if lo > hi + _FEAS_TOL:
        return None
    if lo > hi:
        lo = hi = (lo + hi) / 2.0
    if c > 0:
        return [hi]
    if c < 0:
        return [lo]
    return [(lo + hi) / 2.0]
