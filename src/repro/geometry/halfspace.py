"""Half-spaces of the reduced query space.

Section 5 of the paper maps every record ``r`` that is incomparable to the
focal record ``p`` into a half-space of the *reduced query space*: the
``(d-1)``-dimensional space of weights ``q_1 .. q_{d-1}`` obtained after
eliminating ``q_d = 1 - Σ_{i<d} q_i``.  The record scores higher than the
focal record exactly when the query vector lies inside its half-space:

    Σ_{i<d} (r_i − r_d − p_i + p_d) q_i  >  p_d − r_d

This module provides the :class:`Halfspace` primitive (an open half-space
``a · x > b``), the record-to-half-space mapping, the constraints that define
the permissible region of the reduced query space, and the box-relation test
used by the quad-tree to classify a half-space as fully containing, partially
overlapping or disjoint from an axis-aligned cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..errors import GeometryError

__all__ = [
    "BoxRelation",
    "Halfspace",
    "halfspace_for_record",
    "reduced_space_constraints",
    "reduce_query_vector",
    "lift_query_vector",
]

#: Numerical slack used for classifying degenerate touching configurations.
EPSILON = 1e-9


class BoxRelation(Enum):
    """Relation between a half-space and an axis-aligned box."""

    CONTAINS = "contains"      #: the half-space fully contains the box
    OVERLAPS = "overlaps"      #: the supporting hyperplane crosses the box
    DISJOINT = "disjoint"      #: the half-space does not touch the box interior


@dataclass(frozen=True, eq=False)
class Halfspace:
    """An open half-space ``{x : a · x > b}`` of the reduced query space.

    Attributes
    ----------
    coefficients:
        The normal vector ``a`` (length ``d - 1``).
    offset:
        The right-hand side ``b``.
    record_id:
        Optional identifier of the data record that induced the half-space.
    augmented:
        Whether the half-space is *augmented* in the sense of the advanced
        approach (it implicitly subsumes the half-spaces of records dominated
        by its inducing record).  Singular half-spaces have ``augmented=False``.
    """

    coefficients: np.ndarray
    offset: float
    record_id: Optional[int] = None
    augmented: bool = False

    def __init__(
        self,
        coefficients: Sequence[float] | np.ndarray,
        offset: float,
        record_id: Optional[int] = None,
        augmented: bool = False,
    ) -> None:
        coeffs = np.asarray(coefficients, dtype=float).ravel()
        if coeffs.size == 0:
            raise GeometryError("a half-space needs at least one coefficient")
        if not np.isfinite(coeffs).all() or not np.isfinite(offset):
            raise GeometryError("half-space coefficients must be finite")
        if np.allclose(coeffs, 0.0):
            raise GeometryError("half-space normal vector must be non-zero")
        coeffs.setflags(write=False)
        object.__setattr__(self, "coefficients", coeffs)
        object.__setattr__(self, "offset", float(offset))
        object.__setattr__(self, "record_id", record_id)
        object.__setattr__(self, "augmented", bool(augmented))
        # Plain-float copy used by scalar hot paths (quad-tree classification).
        object.__setattr__(self, "coefficients_t", tuple(float(v) for v in coeffs))

    def __getstate__(self) -> dict:
        """Pickle without the complement cache (rebuilt lazily; avoids
        doubling the payload of every shipped half-space)."""
        state = dict(self.__dict__)
        state.pop("_complement", None)
        return state

    # ----------------------------------------------------------- basic algebra
    @property
    def dim(self) -> int:
        """Dimensionality of the (reduced) space the half-space lives in."""
        return int(self.coefficients.shape[0])

    def evaluate(self, point: Sequence[float] | np.ndarray) -> float:
        """Return ``a · x − b`` (positive inside, negative outside)."""
        x = np.asarray(point, dtype=float).ravel()
        if x.shape[0] != self.dim:
            raise GeometryError(
                f"point has dimension {x.shape[0]}, half-space has {self.dim}"
            )
        return float(self.coefficients @ x - self.offset)

    def contains_point(self, point: Sequence[float] | np.ndarray, *, tol: float = 0.0) -> bool:
        """True when the point lies strictly inside (up to ``tol``)."""
        return self.evaluate(point) > tol

    def complement(self) -> "Halfspace":
        """Return the complementary (closed boundary flips side) half-space ``a · x < b``.

        The complement is represented as ``(-a) · x > (-b)``; boundary points
        are considered part of neither half-space, consistent with the
        paper's ignore-ties convention.

        The result is cached on the instance (and the cache is linked both
        ways, since negation is exact in floating point): ``complement()`` is
        called on every oriented clip/constraint construction of the hot
        within-leaf paths, and re-validating a normal vector that is already
        known to be valid wasted a measurable share of re-scan time.
        """
        cached = getattr(self, "_complement", None)
        if cached is None:
            cached = Halfspace.__new__(Halfspace)
            coeffs = -self.coefficients
            coeffs.setflags(write=False)
            object.__setattr__(cached, "coefficients", coeffs)
            object.__setattr__(cached, "offset", -self.offset)
            object.__setattr__(cached, "record_id", self.record_id)
            object.__setattr__(cached, "augmented", self.augmented)
            object.__setattr__(
                cached, "coefficients_t", tuple(float(v) for v in coeffs)
            )
            object.__setattr__(self, "_complement", cached)
            object.__setattr__(cached, "_complement", self)
        return cached

    def with_flags(self, *, augmented: Optional[bool] = None) -> "Halfspace":
        """Return a copy with the ``augmented`` flag replaced."""
        return Halfspace(
            self.coefficients,
            self.offset,
            record_id=self.record_id,
            augmented=self.augmented if augmented is None else augmented,
        )

    # ------------------------------------------------------------ box relation
    def extremes_over_box(
        self, lower: Sequence[float] | np.ndarray, upper: Sequence[float] | np.ndarray
    ) -> tuple:
        """Return ``(min, max)`` of ``a · x`` over the axis-aligned box.

        The extremes of a linear function over a box are attained at corners
        selected coordinate-wise by the sign of the corresponding coefficient.
        """
        lo = np.asarray(lower, dtype=float).ravel()
        hi = np.asarray(upper, dtype=float).ravel()
        if lo.shape[0] != self.dim or hi.shape[0] != self.dim:
            raise GeometryError("box bounds must match the half-space dimensionality")
        pos = self.coefficients > 0
        min_val = float(self.coefficients @ np.where(pos, lo, hi))
        max_val = float(self.coefficients @ np.where(pos, hi, lo))
        return min_val, max_val

    def relation_to_box(
        self,
        lower: Sequence[float] | np.ndarray,
        upper: Sequence[float] | np.ndarray,
        *,
        tol: float = EPSILON,
    ) -> BoxRelation:
        """Classify the half-space against an axis-aligned box.

        ``CONTAINS`` means every box point satisfies ``a · x > b``;
        ``DISJOINT`` means no box point does; otherwise ``OVERLAPS``.
        """
        min_val, max_val = self.extremes_over_box(lower, upper)
        if min_val > self.offset + tol:
            return BoxRelation.CONTAINS
        if max_val <= self.offset + tol:
            return BoxRelation.DISJOINT
        return BoxRelation.OVERLAPS

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "aug" if self.augmented else "sng"
        return (
            f"Halfspace(record={self.record_id}, {tag}, "
            f"a={np.array2string(self.coefficients, precision=3)}, b={self.offset:.3f})"
        )


def halfspace_for_record(
    record: Sequence[float] | np.ndarray,
    focal: Sequence[float] | np.ndarray,
    record_id: Optional[int] = None,
    *,
    augmented: bool = False,
) -> Halfspace:
    """Map an incomparable record to its reduced-query-space half-space.

    The returned half-space contains exactly the reduced query vectors
    ``(q_1, .., q_{d-1})`` for which ``S(record) > S(focal)``.
    """
    r = np.asarray(record, dtype=float).ravel()
    p = np.asarray(focal, dtype=float).ravel()
    if r.shape != p.shape:
        raise GeometryError("record and focal record must have the same dimensionality")
    d = r.shape[0]
    if d < 2:
        raise GeometryError("the reduced query space requires d >= 2")
    coefficients = (r[:-1] - r[-1]) - (p[:-1] - p[-1])
    offset = float(p[-1] - r[-1])
    if np.allclose(coefficients, 0.0):
        # The two records score identically up to the constant difference in
        # the last attribute: the half-space is either the whole space or
        # empty.  Such a pair is not "incomparable" in any meaningful way for
        # the arrangement; callers should have filtered it out, so we signal
        # the degenerate case explicitly.
        raise GeometryError(
            "record induces a degenerate half-space (parallel score functions); "
            "it is either a dominator or a dominee of the focal record"
        )
    return Halfspace(coefficients, offset, record_id=record_id, augmented=augmented)


def reduced_space_constraints(reduced_dim: int) -> List[Halfspace]:
    """Return the half-spaces bounding the permissible reduced query space.

    The permissible region is the open simplex ``q_i > 0`` for ``i < d`` and
    ``Σ_{i<d} q_i < 1`` (so that the eliminated weight ``q_d`` stays
    positive).  Each constraint is returned as a :class:`Halfspace` with
    ``record_id=None``.
    """
    if reduced_dim < 1:
        raise GeometryError("the reduced query space must have at least one dimension")
    constraints: List[Halfspace] = []
    for i in range(reduced_dim):
        axis = np.zeros(reduced_dim)
        axis[i] = 1.0
        constraints.append(Halfspace(axis, 0.0))
    constraints.append(Halfspace(-np.ones(reduced_dim), -1.0))
    return constraints


def reduce_query_vector(query: Sequence[float] | np.ndarray) -> np.ndarray:
    """Project a full d-dimensional permissible vector to the reduced space."""
    q = np.asarray(query, dtype=float).ravel()
    if q.shape[0] < 2:
        raise GeometryError("query vectors must have at least two weights")
    total = float(q.sum())
    if total <= 0:
        raise GeometryError("query vector weights must have a positive sum")
    return q[:-1] / total


def lift_query_vector(reduced: Sequence[float] | np.ndarray) -> np.ndarray:
    """Lift a reduced-space point back to a full normalised query vector."""
    x = np.asarray(reduced, dtype=float).ravel()
    last = 1.0 - float(x.sum())
    if (x <= 0).any() or last <= 0:
        raise GeometryError(
            "reduced point does not correspond to a permissible query vector"
        )
    return np.append(x, last)
