"""Reference (exhaustive) arrangement enumeration for small inputs.

The paper's Lemma 1 / Corollary 1 reduce MaxRank to finding the cells of the
arrangement of the incomparable records' half-spaces that are contained in
the fewest half-spaces.  Computing the complete arrangement is intractable
(``O(n^d)``), which is why the paper builds BA and AA — but for *small*
inputs an exhaustive enumeration over sign vectors is perfectly feasible and
provides an independent ground truth for testing the optimised algorithms.

:func:`enumerate_cells` walks the ``2^m`` candidate sign vectors (``m`` being
the number of half-spaces), prunes prefixes whose partial intersection is
already empty, and reports every non-empty cell together with its order and a
witness interior point.  :func:`minimum_order_cells` keeps only the cells of
minimum order, i.e. the MaxRank answer in the reduced query space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GeometryError
from .halfspace import Halfspace, reduced_space_constraints
from .lp import find_interior_point

__all__ = ["ArrangementCell", "enumerate_cells", "minimum_order_cells"]

#: Enumeration above this number of half-spaces would be astronomically
#: expensive; the reference oracle refuses rather than hang.
MAX_HALFSPACES = 22


@dataclass(frozen=True)
class ArrangementCell:
    """One non-empty cell of a half-space arrangement.

    Attributes
    ----------
    bits:
        Tuple of 0/1 flags aligned with the input half-spaces; 1 means the
        cell lies inside that half-space.
    order:
        Number of half-spaces containing the cell (the Hamming weight).
    interior_point:
        A witness point strictly inside the cell.
    """

    bits: Tuple[int, ...]
    order: int
    interior_point: np.ndarray

    def inside_ids(self, halfspaces: Sequence[Halfspace]) -> List[Optional[int]]:
        """Record ids of the half-spaces that contain this cell."""
        return [h.record_id for h, bit in zip(halfspaces, self.bits) if bit]


def _constraints_for(
    halfspaces: Sequence[Halfspace], bits: Sequence[int]
) -> List[Halfspace]:
    chosen: List[Halfspace] = []
    for h, bit in zip(halfspaces, bits):
        chosen.append(h if bit else h.complement())
    return chosen


def enumerate_cells(
    halfspaces: Sequence[Halfspace],
    *,
    lower: Optional[Sequence[float]] = None,
    upper: Optional[Sequence[float]] = None,
    restrict_to_simplex: bool = True,
    max_order: Optional[int] = None,
) -> List[ArrangementCell]:
    """Enumerate every non-empty cell of the arrangement of ``halfspaces``.

    Parameters
    ----------
    halfspaces:
        The half-spaces of the arrangement (at most :data:`MAX_HALFSPACES`).
    lower, upper:
        Bounding box of the reduced query space (defaults to the unit box).
    restrict_to_simplex:
        When true (default) the permissibility constraints ``x_i > 0`` and
        ``Σ x_i < 1`` are added, as required by the paper's query space.
    max_order:
        If given, cells of order above this bound are not reported (their
        branches are still explored only as far as necessary).

    Returns
    -------
    list[ArrangementCell]
        All (reported) non-empty cells, in lexicographic bit order.
    """
    halfspaces = list(halfspaces)
    if not halfspaces:
        raise GeometryError("enumerate_cells needs at least one half-space")
    m = len(halfspaces)
    if m > MAX_HALFSPACES:
        raise GeometryError(
            f"refusing to enumerate 2^{m} cells; the reference arrangement is "
            f"limited to {MAX_HALFSPACES} half-spaces"
        )
    dim = halfspaces[0].dim
    lo = np.zeros(dim) if lower is None else np.asarray(lower, dtype=float)
    hi = np.ones(dim) if upper is None else np.asarray(upper, dtype=float)
    base: List[Halfspace] = []
    if restrict_to_simplex:
        base.extend(reduced_space_constraints(dim))

    cells: List[ArrangementCell] = []

    def recurse(index: int, bits: List[int]) -> None:
        constraints = base + _constraints_for(halfspaces[:index], bits)
        partial = find_interior_point(constraints, lo, hi)
        if not partial.feasible:
            return
        if index == m:
            order = sum(bits)
            if max_order is not None and order > max_order:
                return
            cells.append(
                ArrangementCell(bits=tuple(bits), order=order, interior_point=partial.point)
            )
            return
        if max_order is not None and sum(bits) > max_order:
            # Only the 0-branch can still respect the order budget.
            recurse(index + 1, bits + [0])
            return
        recurse(index + 1, bits + [0])
        recurse(index + 1, bits + [1])

    recurse(0, [])
    return cells


def minimum_order_cells(
    halfspaces: Sequence[Halfspace],
    *,
    lower: Optional[Sequence[float]] = None,
    upper: Optional[Sequence[float]] = None,
    restrict_to_simplex: bool = True,
    slack: int = 0,
) -> Tuple[int, List[ArrangementCell]]:
    """Return ``(minimum order, cells)`` of the arrangement.

    With ``slack > 0`` (the iMaxRank case) every cell of order at most
    ``minimum order + slack`` is returned.
    """
    cells = enumerate_cells(
        halfspaces,
        lower=lower,
        upper=upper,
        restrict_to_simplex=restrict_to_simplex,
    )
    if not cells:
        return 0, []
    best = min(cell.order for cell in cells)
    kept = [cell for cell in cells if cell.order <= best + slack]
    return best, kept
