"""Geometry substrate: half-spaces, polytopes, intervals and LP feasibility."""

from .arrangement import ArrangementCell, enumerate_cells, minimum_order_cells
from .planar import PlanarArrangement, PlanarFace
from .clipping import box_polygon, clip_polygon, polygon_area, polygon_centroid
from .halfspace import (
    BoxRelation,
    Halfspace,
    halfspace_for_record,
    lift_query_vector,
    reduce_query_vector,
    reduced_space_constraints,
)
from .interval import Interval, IntervalSet
from .lp import FeasibilityResult, find_interior_point
from .polytope import ConvexPolytope

__all__ = [
    "Halfspace",
    "BoxRelation",
    "halfspace_for_record",
    "reduced_space_constraints",
    "reduce_query_vector",
    "lift_query_vector",
    "ConvexPolytope",
    "Interval",
    "IntervalSet",
    "FeasibilityResult",
    "find_interior_point",
    "ArrangementCell",
    "PlanarArrangement",
    "PlanarFace",
    "enumerate_cells",
    "minimum_order_cells",
    "box_polygon",
    "clip_polygon",
    "polygon_area",
    "polygon_centroid",
]
