"""Exact polygon clipping for the 2-dimensional reduced query space.

When the data dimensionality is ``d = 3`` the reduced query space is a plane
and every arrangement cell is a convex polygon.  Deciding cell emptiness and
computing cell extents can then be done exactly — and much faster than with a
linear program — by Sutherland–Hodgman clipping of the quad-tree leaf box
against the half-planes of the cell's bit-string.

The functions here operate on ``(m, 2)`` vertex arrays in counter-clockwise
order.  Degenerate results (area below :data:`MIN_AREA`) are reported as
empty, mirroring the strict-inequality semantics of the arrangement.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import GeometryError
from .halfspace import Halfspace

__all__ = ["box_polygon", "clip_polygon", "polygon_area", "polygon_centroid", "MIN_AREA"]

#: Polygons with area below this threshold are considered empty (they
#: correspond to tie hyperplanes, which carry no query-space area).
MIN_AREA = 1e-16


def box_polygon(lower: Sequence[float], upper: Sequence[float]) -> np.ndarray:
    """Return the CCW vertex array of an axis-aligned 2-D box."""
    lo = np.asarray(lower, dtype=float).ravel()
    hi = np.asarray(upper, dtype=float).ravel()
    if lo.shape[0] != 2 or hi.shape[0] != 2:
        raise GeometryError("box_polygon is only defined for 2-D boxes")
    return np.array(
        [[lo[0], lo[1]], [hi[0], lo[1]], [hi[0], hi[1]], [lo[0], hi[1]]], dtype=float
    )


def clip_polygon(vertices: np.ndarray, halfspace: Halfspace) -> Optional[np.ndarray]:
    """Clip a convex polygon against ``a · x > b`` (kept side: ``a · x ≥ b``).

    Returns the clipped vertex array, or ``None`` when nothing remains.
    The boundary is kept; emptiness of the *open* half-space intersection is
    decided afterwards by an area threshold (see :func:`polygon_area`).
    """
    if vertices is None or len(vertices) == 0:
        return None
    a = halfspace.coefficients
    b = halfspace.offset
    if a.shape[0] != 2:
        raise GeometryError("clip_polygon requires 2-D half-spaces")
    values = vertices @ a - b
    output = []
    m = len(vertices)
    for i in range(m):
        current, nxt = vertices[i], vertices[(i + 1) % m]
        val_c, val_n = values[i], values[(i + 1) % m]
        if val_c >= 0:
            output.append(current)
        # Edge crosses the supporting line: add the intersection point.
        if (val_c > 0 and val_n < 0) or (val_c < 0 and val_n > 0):
            t = val_c / (val_c - val_n)
            output.append(current + t * (nxt - current))
    if len(output) < 3:
        return None
    return np.asarray(output, dtype=float)


def polygon_area(vertices: Optional[np.ndarray]) -> float:
    """Signed-area magnitude of a polygon (0.0 for ``None`` or degenerate input)."""
    if vertices is None or len(vertices) < 3:
        return 0.0
    x = vertices[:, 0]
    y = vertices[:, 1]
    return float(abs(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))) / 2.0)


def polygon_centroid(vertices: np.ndarray) -> np.ndarray:
    """Centroid of a non-degenerate convex polygon."""
    area = polygon_area(vertices)
    if area <= MIN_AREA:
        raise GeometryError("cannot compute the centroid of a degenerate polygon")
    x = vertices[:, 0]
    y = vertices[:, 1]
    cross = x * np.roll(y, -1) - np.roll(x, -1) * y
    signed_area = float(np.sum(cross)) / 2.0
    cx = float(np.sum((x + np.roll(x, -1)) * cross)) / (6.0 * signed_area)
    cy = float(np.sum((y + np.roll(y, -1)) * cross)) / (6.0 * signed_area)
    return np.array([cx, cy])
