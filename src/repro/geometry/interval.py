"""1-dimensional interval arithmetic for the ``d = 2`` reduced query space.

When the data dimensionality is 2 the reduced query space is the open
interval ``q_1 ∈ (0, 1)`` and every half-space degenerates into a half-line
``q_1 > v`` (direction →) or ``q_1 < v`` (direction ←).  Both the first-cut
algorithm (FCA, Section 4) and the specialised 2-D advanced approach
(Section 6.3) represent MaxRank result regions as unions of such intervals.

:class:`Interval` is a simple open interval; :class:`IntervalSet` keeps a
normalised (sorted, merged) list of disjoint intervals and supports the
operations the algorithms and tests need: union, intersection, membership,
total length and sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GeometryError

__all__ = ["Interval", "IntervalSet"]

#: Intervals narrower than this are treated as empty (tie points).
MIN_LENGTH = 1e-12


@dataclass(frozen=True)
class Interval:
    """An open interval ``(low, high)`` of the 1-D reduced query space."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.low) or not np.isfinite(self.high):
            raise GeometryError("interval bounds must be finite")

    @property
    def length(self) -> float:
        """Interval length (0 when degenerate or inverted)."""
        return max(0.0, self.high - self.low)

    @property
    def is_empty(self) -> bool:
        """True when the open interval contains no usable width."""
        return self.length <= MIN_LENGTH

    @property
    def midpoint(self) -> float:
        """Centre of the interval."""
        return (self.low + self.high) / 2.0

    def contains(self, value: float, *, tol: float = 0.0) -> bool:
        """Strict containment test (open interval)."""
        return self.low + tol < value < self.high - tol

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """Intersection with another interval, or ``None`` when empty."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        candidate = Interval(low, high)
        return None if candidate.is_empty else candidate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.low:.6g}, {self.high:.6g})"


class IntervalSet:
    """A normalised union of disjoint open intervals."""

    def __init__(self, intervals: Optional[Iterable[Interval | Tuple[float, float]]] = None):
        items: List[Interval] = []
        for entry in intervals or []:
            interval = entry if isinstance(entry, Interval) else Interval(*entry)
            if not interval.is_empty:
                items.append(interval)
        self._intervals = self._normalise(items)

    @staticmethod
    def _normalise(items: List[Interval]) -> List[Interval]:
        if not items:
            return []
        items = sorted(items, key=lambda iv: (iv.low, iv.high))
        merged: List[Interval] = [items[0]]
        for interval in items[1:]:
            last = merged[-1]
            if interval.low <= last.high + MIN_LENGTH:
                merged[-1] = Interval(last.low, max(last.high, interval.high))
            else:
                merged.append(interval)
        return [iv for iv in merged if not iv.is_empty]

    # ------------------------------------------------------------- accessors
    @property
    def intervals(self) -> List[Interval]:
        """The disjoint intervals, sorted by lower bound."""
        return list(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self):
        return iter(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    @property
    def total_length(self) -> float:
        """Sum of the lengths of all member intervals."""
        return float(sum(iv.length for iv in self._intervals))

    def contains(self, value: float) -> bool:
        """True when ``value`` lies strictly inside some member interval."""
        return any(iv.contains(value) for iv in self._intervals)

    # ------------------------------------------------------------ operations
    def union(self, other: "IntervalSet | Interval") -> "IntervalSet":
        """Union with another interval or interval set."""
        extra = other.intervals if isinstance(other, IntervalSet) else [other]
        return IntervalSet(self._intervals + extra)

    def intersect(self, other: "IntervalSet | Interval") -> "IntervalSet":
        """Intersection with another interval or interval set."""
        others = other.intervals if isinstance(other, IntervalSet) else [other]
        pieces: List[Interval] = []
        for mine in self._intervals:
            for theirs in others:
                overlap = mine.intersect(theirs)
                if overlap is not None:
                    pieces.append(overlap)
        return IntervalSet(pieces)

    def sample_points(self, per_interval: int = 1, rng: Optional[np.random.Generator] = None
                      ) -> List[float]:
        """Return sample points from each interval (midpoint plus random draws)."""
        rng = rng or np.random.default_rng(0)
        points: List[float] = []
        for interval in self._intervals:
            points.append(interval.midpoint)
            for _ in range(max(0, per_interval - 1)):
                points.append(float(rng.uniform(interval.low, interval.high)))
        return points

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "IntervalSet[" + ", ".join(repr(iv) for iv in self._intervals) + "]"
