"""repro — a reproduction of "Maximum Rank Query" (Mouratidis, Zhang, Pang; VLDB 2015).

The package answers MaxRank and incremental MaxRank (iMaxRank) queries over a
multi-attribute dataset: given a focal record, it computes the best rank the
record can achieve under *any* linear preference vector, together with all
regions of the preference space where that rank is attained.

Quickstart
----------
>>> from repro import generate_independent, maxrank
>>> data = generate_independent(500, 3, seed=1)
>>> result = maxrank(data, focal=0)
>>> result.k_star, result.region_count                     # doctest: +SKIP
(42, 7)
>>> q = result.regions[0].representative_query()           # a concrete preference

Main entry points
-----------------
* :func:`repro.maxrank` / :func:`repro.imaxrank` — query facade.
* :class:`repro.MaxRankService` — the persistent serving layer: one warm
  R*-tree per dataset, LRU result caching, batched/parallel query
  execution and snapshot persistence (``python -m repro.service``).
* :class:`repro.Dataset` and the IND/COR/ANTI generators plus simulated real
  datasets (HOTEL, HOUSE, NBA, PITCH, BAT).
* ``repro.core`` — the individual algorithms (FCA, BA, AA, AA-2D, oracles).
* ``repro.experiments`` — drivers regenerating every table and figure of the
  paper's evaluation section.
"""

from .core.maxrank import ALGORITHMS, ENGINES, imaxrank, maxrank
from .core.result import MaxRankRegion, MaxRankResult
from .data.dataset import Dataset, random_permissible_vector, validate_query_vector
from .data.generators import (
    generate,
    generate_anticorrelated,
    generate_correlated,
    generate_independent,
)
from .data.realistic import REAL_DATASETS, load_real_dataset
from .engine.deadline import Deadline
from .errors import QueryTimeoutError, ReproError
from .index.rstar import RStarTree
from .service.core import MaxRankService
from .stats import CostCounters

__version__ = "1.0.0"

__all__ = [
    "maxrank",
    "imaxrank",
    "ALGORITHMS",
    "ENGINES",
    "MaxRankResult",
    "MaxRankRegion",
    "Dataset",
    "validate_query_vector",
    "random_permissible_vector",
    "generate",
    "generate_independent",
    "generate_correlated",
    "generate_anticorrelated",
    "load_real_dataset",
    "REAL_DATASETS",
    "RStarTree",
    "MaxRankService",
    "CostCounters",
    "Deadline",
    "ReproError",
    "QueryTimeoutError",
    "__version__",
]
