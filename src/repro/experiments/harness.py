"""Experiment harness: run batches of MaxRank queries and aggregate metrics.

The paper's evaluation reports, for each parameter setting, the average over
40 queries with randomly selected focal records.  :func:`run_batch`
reproduces that protocol: it builds one R*-tree per dataset, draws a fixed
number of focal records with a seeded generator, answers one MaxRank (or
iMaxRank) query per focal record, and aggregates CPU time, simulated I/O,
``k*`` and ``|T|`` into a :class:`BatchResult`.

The harness is deliberately independent of pytest-benchmark: the benchmark
files call it inside ``benchmark.pedantic`` for timing, while the experiment
drivers (``repro.experiments.figures``) call it directly to print the series
that correspond to the paper's figures and tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.maxrank import maxrank
from ..core.result import MaxRankResult
from ..data.dataset import Dataset
from ..engine.executors import make_executor
from ..errors import ExperimentError
from ..index.rstar import RStarTree
from ..stats import CostCounters

__all__ = ["QueryMeasurement", "BatchResult", "run_batch", "select_focal_records"]


@dataclass(frozen=True)
class QueryMeasurement:
    """Metrics of a single MaxRank query."""

    focal_index: int
    k_star: int
    region_count: int
    cpu_seconds: float
    io_cost: int
    dominators: int
    counters: Dict[str, float]


@dataclass
class BatchResult:
    """Aggregated metrics over a batch of queries with one parameter setting."""

    label: str
    algorithm: str
    dataset_name: str
    n: int
    d: int
    tau: int
    measurements: List[QueryMeasurement] = field(default_factory=list)
    tree_build_seconds: float = 0.0

    # ------------------------------------------------------------ aggregates
    def _values(self, attribute: str) -> np.ndarray:
        return np.array([getattr(m, attribute) for m in self.measurements], dtype=float)

    @property
    def queries(self) -> int:
        """Number of queries in the batch."""
        return len(self.measurements)

    @property
    def mean_cpu(self) -> float:
        """Average CPU seconds per query."""
        return float(self._values("cpu_seconds").mean()) if self.measurements else 0.0

    @property
    def mean_io(self) -> float:
        """Average simulated page accesses per query."""
        return float(self._values("io_cost").mean()) if self.measurements else 0.0

    @property
    def mean_k_star(self) -> float:
        """Average ``k*`` over the batch."""
        return float(self._values("k_star").mean()) if self.measurements else 0.0

    @property
    def mean_regions(self) -> float:
        """Average ``|T|`` over the batch."""
        return float(self._values("region_count").mean()) if self.measurements else 0.0

    def as_row(self) -> Dict[str, float]:
        """Flatten the aggregates into a dictionary for tabular reporting."""
        return {
            "label": self.label,
            "algorithm": self.algorithm,
            "dataset": self.dataset_name,
            "n": self.n,
            "d": self.d,
            "tau": self.tau,
            "queries": self.queries,
            "cpu_s": self.mean_cpu,
            "io": self.mean_io,
            "k_star": self.mean_k_star,
            "regions": self.mean_regions,
        }


def select_focal_records(
    dataset: Dataset,
    count: int,
    seed: int = 0,
    *,
    strategy: str = "central",
) -> List[int]:
    """Pick ``count`` focal record indices, reproducibly.

    The paper selects focal records at random from datasets of 100 K – 10 M
    records.  At the scaled-down cardinalities of this reproduction, two
    strategies are offered:

    ``"central"``
        Records whose attribute sum is close to the median — they have both
        dominators and dominees, which is the interesting (and the most
        expensive) regime, and is closest in spirit to a random pick.
    ``"strong"``
        Competitive records from the top decile of the attribute sum
        (excluding the very best ones).  Used for the high-dimensional
        datasets (NBA, PITCH, BAT), where a central record's result regions
        become so numerous that pure-Python processing is impractical — this
        mirrors the natural use case of a provider analysing a competitive
        product, and is documented as a deviation in EXPERIMENTS.md.
    """
    if count < 1:
        raise ExperimentError(f"need at least one focal record, got {count}")
    if strategy not in ("central", "strong"):
        raise ExperimentError(f"unknown focal selection strategy {strategy!r}")
    rng = np.random.default_rng(seed)
    candidates = np.arange(dataset.n)
    if dataset.n > 4 * count:
        sums = dataset.records.sum(axis=1)
        if strategy == "central":
            order = np.argsort(np.abs(sums - np.median(sums)))
            candidates = order[: max(4 * count, count)]
        else:
            pool = max(4 * count, min(dataset.n // 10, 10 * count))
            ranked = np.argsort(-sums)
            candidates = ranked[5: 5 + pool]
    picks = rng.choice(candidates, size=min(count, candidates.shape[0]), replace=False)
    return [int(i) for i in picks]


def run_batch(
    dataset: Dataset,
    *,
    algorithm: str,
    queries: int = 5,
    tau: int = 0,
    seed: int = 0,
    label: Optional[str] = None,
    tree: Optional[RStarTree] = None,
    focal_indices: Optional[Sequence[int]] = None,
    focal_strategy: str = "central",
    jobs: Optional[int] = None,
    **options,
) -> BatchResult:
    """Answer ``queries`` MaxRank queries and aggregate their metrics.

    Reproduces the paper's evaluation protocol (Section 7): one R*-tree per
    dataset, a reproducible draw of focal records, one MaxRank (or iMaxRank)
    query per focal record, and per-batch averages of CPU time, simulated
    I/O, ``k*`` and ``|T|``.  Every per-query counter dump (including the
    generation→screen→LP funnel; see
    :func:`repro.experiments.reporting.screen_funnel`) is retained in the
    returned measurements.

    Parameters
    ----------
    dataset:
        The dataset to query.
    algorithm:
        Algorithm name accepted by :func:`repro.core.maxrank.maxrank`.
    queries:
        Number of focal records (the paper uses 40; scaled-down runs use
        fewer to keep wall-clock time reasonable).
    tau:
        iMaxRank slack.
    seed:
        Seed for focal-record selection.
    label:
        Display label of the batch (defaults to ``dataset/algorithm``).
    tree:
        Optional pre-built R*-tree shared across batches on the same dataset.
    focal_indices:
        Explicit focal records (overrides ``queries``/``seed``).
    focal_strategy:
        Focal-record selection strategy of :func:`select_focal_records`.
    jobs:
        Worker processes for the within-leaf execution engine
        (:mod:`repro.engine`); one process pool is built for the whole
        batch and shared across its queries.  Only meaningful for the
        quad-tree algorithms (BA / AA / ``auto`` at ``d ≥ 3``); ignored
        elsewhere.  Results and counters are bit-identical to serial runs.
    options:
        Extra keyword arguments forwarded to the algorithm.

    Returns
    -------
    BatchResult
        One :class:`QueryMeasurement` per query plus aggregate properties
        (``mean_cpu``, ``mean_io``, ``mean_k_star``, ``mean_regions``) and
        the tree build time.
    """
    build_start = time.perf_counter()
    if tree is None:
        tree = RStarTree.build(dataset.records)
    tree_build_seconds = time.perf_counter() - build_start

    if focal_indices is None:
        focal_indices = select_focal_records(
            dataset, queries, seed=seed, strategy=focal_strategy
        )

    batch = BatchResult(
        label=label or f"{dataset.name}/{algorithm}",
        algorithm=algorithm,
        dataset_name=dataset.name,
        n=dataset.n,
        d=dataset.d,
        tau=tau,
        tree_build_seconds=tree_build_seconds,
    )
    algorithm_name = algorithm.lower()
    engine_algorithm = algorithm_name in ("aa", "aa3d", "ba") or (
        algorithm_name == "auto" and dataset.d >= 3
    )
    executor = make_executor(jobs) if engine_algorithm else None
    if executor is not None:
        options = dict(options, executor=executor)
    try:
        for focal in focal_indices:
            counters = CostCounters()
            result: MaxRankResult = maxrank(
                dataset,
                int(focal),
                algorithm=algorithm,
                tau=tau,
                tree=tree,
                counters=counters,
                **options,
            )
            batch.measurements.append(
                QueryMeasurement(
                    focal_index=int(focal),
                    k_star=result.k_star,
                    region_count=result.region_count,
                    cpu_seconds=result.cpu_seconds,
                    io_cost=result.io_cost,
                    dominators=result.dominator_count,
                    counters=counters.as_dict(),
                )
            )
    finally:
        if executor is not None:
            executor.close()
    return batch
