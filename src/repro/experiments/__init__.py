"""Experiment harness and drivers that regenerate the paper's tables and figures."""

from .figures import (
    run_fig8_cardinality,
    run_fig9_dimensionality,
    run_fig10_imaxrank,
    run_fig11_two_dimensions,
    run_fig12_score_ratio,
    run_table3_dimensionality,
    run_table4_real_datasets,
)
from .harness import BatchResult, QueryMeasurement, run_batch, select_focal_records
from .reporting import (
    construction_summary,
    format_construction_summary,
    format_screen_funnel,
    format_series,
    format_table,
    print_series,
    print_table,
    screen_funnel,
)
from .workloads import CONFIGS, ExperimentConfig, Scale, get_config

__all__ = [
    "run_batch",
    "select_focal_records",
    "BatchResult",
    "QueryMeasurement",
    "format_table",
    "format_series",
    "print_table",
    "print_series",
    "screen_funnel",
    "format_screen_funnel",
    "construction_summary",
    "format_construction_summary",
    "CONFIGS",
    "ExperimentConfig",
    "Scale",
    "get_config",
    "run_fig8_cardinality",
    "run_fig9_dimensionality",
    "run_table3_dimensionality",
    "run_table4_real_datasets",
    "run_fig10_imaxrank",
    "run_fig11_two_dimensions",
    "run_fig12_score_ratio",
]
