"""Plain-text reporting of experiment results.

The paper presents results as figures (series over a swept parameter) and
tables.  This reproduction prints the same content as aligned text tables so
the benchmark output can be diffed against the expectations recorded in
EXPERIMENTS.md without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "format_table",
    "format_series",
    "print_table",
    "print_series",
    "screen_funnel",
    "format_screen_funnel",
    "construction_summary",
    "format_construction_summary",
]


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    *,
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Format dictionaries as an aligned text table.

    Parameters
    ----------
    rows:
        One mapping per row.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional heading printed above the table.
    float_format:
        Format applied to float values.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths)) for line in rendered
    )
    parts: List[str] = []
    if title:
        parts.append(title)
    parts.extend([header, separator, body])
    return "\n".join(parts)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Format one or more metric series over a swept parameter as a table."""
    rows: List[Dict[str, object]] = []
    for index, x in enumerate(x_values):
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else ""
        rows.append(row)
    return format_table(rows, [x_label, *series.keys()], title=title, float_format=float_format)


def screen_funnel(counters: Mapping[str, float]) -> Dict[str, float]:
    """Summarise the generation→screen→LP funnel from a counter dump.

    Takes the dictionary produced by
    :meth:`repro.stats.CostCounters.as_dict` (or an aggregation of several)
    and derives the headline efficiency numbers of the within-leaf
    feasibility engine.  The funnel starts at candidate *generation*: the
    prefix-pruned DFS never materialises bit-strings that violate a pairwise
    constraint or a per-row corner-extreme bound, so the entry count of the
    funnel is the number of candidates actually emitted, with the pruning
    volume visible as cut branches rather than discarded candidates.

    ``candidates``
        Candidate bit-strings that entered the screens: those emitted by
        generation (``candidates_generated``) plus, on the legacy
        enumerate-then-filter paths, the candidates dismissed by the
        post-hoc pairwise filter (``pairwise_pruned``).
    ``prefixes_cut``
        DFS branches cut during generation; every cut skips an entire
        subtree of candidates that the funnel therefore never sees.
    ``screen_resolved``
        Candidates resolved without any LP: pairwise-pruned, accept-screen
        certified (a probe point proved the cell non-empty) or reject-screen
        dismissed (some constraint row is unsatisfiable in the leaf).
    ``screen_resolved_ratio``
        ``screen_resolved / candidates`` — the share of the feasibility
        workload the screens absorbed.  The remainder went to the exact
        Seidel LP (``lp_calls``).
    ``lines_inserted`` / ``faces_enumerated``
        Discovery volume of the ``d = 3`` planar sweep (zero elsewhere):
        half-plane boundary lines inserted into leaf arrangements and the
        faces those builds enumerated.  The sweep feeds the funnel from the
        face side — only cover sets of actual faces become candidates, so a
        large ``faces_enumerated`` with a small ``candidates`` is the planar
        analogue of a large ``prefixes_cut``.
    """
    pruned = float(counters.get("pairwise_pruned", 0))
    accepts = float(counters.get("screen_accepts", 0))
    rejects = float(counters.get("screen_rejects", 0))
    generated = float(counters.get("candidates_generated", 0))
    if not generated:
        # Counter dumps from before the DFS generator: fall back to the
        # candidates that reached the screens.
        generated = float(counters.get("cells_examined", 0))
    candidates = generated + pruned
    resolved = pruned + accepts + rejects
    return {
        "candidates": candidates,
        "candidates_generated": generated,
        "prefixes_cut": float(counters.get("prefixes_cut", 0)),
        "pairwise_pruned": pruned,
        "screen_accepts": accepts,
        "screen_rejects": rejects,
        "lines_inserted": float(counters.get("lines_inserted", 0)),
        "faces_enumerated": float(counters.get("faces_enumerated", 0)),
        "lp_calls": float(counters.get("lp_calls", 0)),
        "screen_resolved": resolved,
        "screen_resolved_ratio": resolved / candidates if candidates else 0.0,
    }


def format_screen_funnel(counters: Mapping[str, float], *, title: Optional[str] = None) -> str:
    """Render :func:`screen_funnel` as a one-row aligned table."""
    return format_table([screen_funnel(counters)], title=title)


def construction_summary(counters: Mapping[str, float]) -> Dict[str, float]:
    """Summarise quad-tree construction from a counter dump.

    Takes the dictionary of :meth:`repro.stats.CostCounters.as_dict` and
    derives the build-side headline numbers that PERFORMANCE.md's
    construction section tracks:

    ``halfspaces_inserted`` / ``nodes_created`` / ``splits_performed``
        Construction volume — inputs, materialised nodes and split events
        (both node counts are serial/parallel-invariant).
    ``nodes_per_halfspace``
        Tree blow-up factor; the quantity the cost-model split policy is
        designed to keep flat as dimensionality grows.
    ``build_tasks``
        Subtree units dispatched to worker processes (0 = serial build).
    ``build_wall_fraction``
        ``time_quadtree_build / (build + skyline + within_leaf)`` — the
        share of the tracked wall clock spent constructing the tree, 0.0
        when the dump carries no timers (e.g. merged worker counters).
    """
    inserted = float(counters.get("halfspaces_inserted", 0))
    build = float(counters.get("time_quadtree_build", 0.0))
    tracked = (
        build
        + float(counters.get("time_skyline", 0.0))
        + float(counters.get("time_within_leaf", 0.0))
    )
    return {
        "halfspaces_inserted": inserted,
        "nodes_created": float(counters.get("nodes_created", 0)),
        "splits_performed": float(counters.get("splits_performed", 0)),
        "nodes_per_halfspace": (
            float(counters.get("nodes_created", 0)) / inserted if inserted else 0.0
        ),
        "build_tasks": float(counters.get("build_tasks", 0)),
        "build_wall_fraction": build / tracked if tracked > 0.0 else 0.0,
    }


def format_construction_summary(
    counters: Mapping[str, float], *, title: Optional[str] = None
) -> str:
    """Render :func:`construction_summary` as a one-row aligned table."""
    return format_table([construction_summary(counters)], title=title)


def print_table(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None,
                *, title: Optional[str] = None) -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, columns, title=title))


def print_series(x_label: str, x_values: Sequence[object],
                 series: Mapping[str, Sequence[float]], *, title: Optional[str] = None) -> None:
    """Print :func:`format_series` output."""
    print(format_series(x_label, x_values, series, title=title))
