"""Plain-text reporting of experiment results.

The paper presents results as figures (series over a swept parameter) and
tables.  This reproduction prints the same content as aligned text tables so
the benchmark output can be diffed against the expectations recorded in
EXPERIMENTS.md without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series", "print_table", "print_series"]


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    *,
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Format dictionaries as an aligned text table.

    Parameters
    ----------
    rows:
        One mapping per row.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional heading printed above the table.
    float_format:
        Format applied to float values.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths)) for line in rendered
    )
    parts: List[str] = []
    if title:
        parts.append(title)
    parts.extend([header, separator, body])
    return "\n".join(parts)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Format one or more metric series over a swept parameter as a table."""
    rows: List[Dict[str, object]] = []
    for index, x in enumerate(x_values):
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else ""
        rows.append(row)
    return format_table(rows, [x_label, *series.keys()], title=title, float_format=float_format)


def print_table(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None,
                *, title: Optional[str] = None) -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, columns, title=title))


def print_series(x_label: str, x_values: Sequence[object],
                 series: Mapping[str, Sequence[float]], *, title: Optional[str] = None) -> None:
    """Print :func:`format_series` output."""
    print(format_series(x_label, x_values, series, title=title))
