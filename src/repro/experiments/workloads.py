"""Workload configurations for the paper's experiments.

The paper sweeps three parameters (Table 2): dataset cardinality ``n``
(100 K – 10 M), dimensionality ``d`` (2 – 8) and the iMaxRank slack ``τ``
(0 – 5), over three synthetic distributions and five real datasets.  A pure
Python substrate cannot run at those cardinalities in reasonable time, so
every experiment has two scales:

* ``SMALL`` — the default used by the test suite and the pytest-benchmark
  targets; finishes in minutes on a laptop.
* ``PAPER_SHAPE`` — a larger sweep that tracks the paper's parameter ranges
  more closely (still scaled down); used when regenerating EXPERIMENTS.md.

The *shape* of the results (which algorithm wins, how metrics trend with the
swept parameter) is the reproduction target, not absolute values; see
DESIGN.md § Substitutions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["Scale", "ExperimentConfig", "CONFIGS", "get_config"]


@dataclass(frozen=True)
class Scale:
    """One scale (small or paper-shape) of an experiment sweep."""

    cardinalities: Tuple[int, ...] = ()
    dimensionalities: Tuple[int, ...] = ()
    taus: Tuple[int, ...] = ()
    queries: int = 3
    distributions: Tuple[str, ...] = ("IND",)
    ba_cardinality_cap: int = 400


@dataclass(frozen=True)
class ExperimentConfig:
    """Description of one paper experiment and its scaled workloads."""

    experiment_id: str
    paper_reference: str
    description: str
    small: Scale
    paper_shape: Scale


CONFIGS: Dict[str, ExperimentConfig] = {
    "fig8": ExperimentConfig(
        experiment_id="fig8",
        paper_reference="Figure 8 (a)-(f)",
        description="Effect of dataset cardinality n at d=4: AA vs BA (IND), "
        "AA across IND/COR/ANTI, and the induced k*/|T| values.",
        small=Scale(
            cardinalities=(150, 300, 600),
            dimensionalities=(4,),
            queries=2,
            distributions=("IND", "COR", "ANTI"),
            ba_cardinality_cap=150,
        ),
        paper_shape=Scale(
            cardinalities=(400, 800, 1600, 3200),
            dimensionalities=(4,),
            queries=4,
            distributions=("IND", "COR", "ANTI"),
            ba_cardinality_cap=400,
        ),
    ),
    "fig9": ExperimentConfig(
        experiment_id="fig9",
        paper_reference="Figure 9 (a)-(b)",
        description="Effect of dimensionality d on AA and BA (IND data).",
        small=Scale(
            cardinalities=(300,),
            dimensionalities=(2, 3, 4),
            queries=2,
            distributions=("IND",),
            ba_cardinality_cap=120,
        ),
        paper_shape=Scale(
            cardinalities=(1000,),
            dimensionalities=(2, 3, 4, 5, 6),
            queries=3,
            distributions=("IND",),
            ba_cardinality_cap=300,
        ),
    ),
    "table3": ExperimentConfig(
        experiment_id="table3",
        paper_reference="Table 3",
        description="k* and |T| versus dimensionality (IND data, AA).",
        small=Scale(
            cardinalities=(300,),
            dimensionalities=(2, 3, 4),
            queries=2,
        ),
        paper_shape=Scale(
            cardinalities=(1000,),
            dimensionalities=(2, 3, 4, 5, 6),
            queries=3,
        ),
    ),
    "table4": ExperimentConfig(
        experiment_id="table4",
        paper_reference="Table 4",
        description="AA on the (simulated) real datasets HOTEL/HOUSE/NBA/PITCH/BAT.",
        small=Scale(cardinalities=(600,), queries=1),
        paper_shape=Scale(cardinalities=(2000,), queries=3),
    ),
    "fig10": ExperimentConfig(
        experiment_id="fig10",
        paper_reference="Figure 10 (a)-(c)",
        description="iMaxRank: CPU, I/O and |T| versus tau on IND and HOTEL.",
        small=Scale(
            cardinalities=(250,),
            dimensionalities=(4,),
            taus=(0, 1, 2),
            queries=2,
        ),
        paper_shape=Scale(
            cardinalities=(800,),
            dimensionalities=(4,),
            taus=(0, 1, 2, 3, 4, 5),
            queries=3,
        ),
    ),
    "fig11": ExperimentConfig(
        experiment_id="fig11",
        paper_reference="Figure 11 (a)-(b)",
        description="FCA versus the 2-dimensional AA on IND/COR/ANTI (d=2).",
        small=Scale(
            cardinalities=(1500,),
            dimensionalities=(2,),
            queries=2,
            distributions=("IND", "COR", "ANTI"),
        ),
        paper_shape=Scale(
            cardinalities=(8000,),
            dimensionalities=(2,),
            queries=5,
            distributions=("IND", "COR", "ANTI"),
        ),
    ),
    "fig12": ExperimentConfig(
        experiment_id="fig12",
        paper_reference="Figure 12 (appendix)",
        description="MaxScore/MinScore ratio versus dimensionality (IND).",
        small=Scale(
            cardinalities=(5000,),
            dimensionalities=tuple(range(2, 13)),
            queries=5,
        ),
        paper_shape=Scale(
            cardinalities=(20000,),
            dimensionalities=tuple(range(2, 21)),
            queries=10,
        ),
    ),
}


def get_config(experiment_id: str) -> ExperimentConfig:
    """Look up an experiment configuration by id (``fig8`` ... ``fig12``, ``table3``/``table4``)."""
    key = experiment_id.lower()
    if key not in CONFIGS:
        raise KeyError(f"unknown experiment {experiment_id!r}; choose one of {sorted(CONFIGS)}")
    return CONFIGS[key]
