"""Drivers that regenerate every table and figure of the paper's evaluation.

Each ``run_*`` function executes the corresponding experiment at the chosen
scale (``"small"`` or ``"paper_shape"``, see
:mod:`repro.experiments.workloads`), returns the raw rows, and — unless
``quiet`` — prints them in the same layout the paper uses, so the output can
be compared side by side with the original charts.  The pytest-benchmark
files under ``benchmarks/`` call these drivers; EXPERIMENTS.md records one
full run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..data.dataset import Dataset, random_permissible_vector
from ..data.generators import generate
from ..data.realistic import REAL_DATASETS, load_real_dataset
from ..index.rstar import RStarTree
from ..topk.scoring import score_ratio
from .harness import BatchResult, run_batch
from .reporting import format_table
from .workloads import Scale, get_config

__all__ = [
    "run_fig8_cardinality",
    "run_fig9_dimensionality",
    "run_table3_dimensionality",
    "run_table4_real_datasets",
    "run_fig10_imaxrank",
    "run_fig11_two_dimensions",
    "run_fig12_score_ratio",
]


def _scale(experiment_id: str, scale: str) -> Scale:
    config = get_config(experiment_id)
    if scale == "small":
        return config.small
    if scale in ("paper_shape", "paper"):
        return config.paper_shape
    raise KeyError(f"unknown scale {scale!r}; use 'small' or 'paper_shape'")


def _emit(rows: List[Dict[str, object]], title: str, quiet: bool) -> None:
    if not quiet:
        print()
        print(format_table(rows, title=title))


# --------------------------------------------------------------------- Fig 8
def run_fig8_cardinality(scale: str = "small", *, quiet: bool = False, seed: int = 0
                         ) -> List[Dict[str, object]]:
    """Figure 8: effect of cardinality ``n`` at ``d = 4``.

    Produces the AA-vs-BA comparison on IND (panels a, b), the AA series per
    distribution (panels c, d) and the induced ``k*`` / ``|T|`` values
    (panels e, f).  BA is only run up to its cardinality cap, exactly as the
    paper restricts BA to 10 K records.
    """
    workload = _scale("fig8", scale)
    d = workload.dimensionalities[0]
    rows: List[Dict[str, object]] = []
    for distribution in workload.distributions:
        for n in workload.cardinalities:
            dataset = generate(distribution, n, d, seed=seed)
            tree = RStarTree.build(dataset.records)
            batch = run_batch(
                dataset, algorithm="aa", queries=workload.queries, seed=seed, tree=tree,
                label=f"fig8/{distribution}/n={n}",
            )
            rows.append(batch.as_row())
            run_ba = distribution == "IND" and n <= workload.ba_cardinality_cap
            if run_ba:
                ba_batch = run_batch(
                    dataset, algorithm="ba", queries=workload.queries, seed=seed, tree=tree,
                    label=f"fig8/{distribution}/n={n}",
                )
                rows.append(ba_batch.as_row())
    _emit(rows, "Figure 8 — effect of cardinality n (d = 4)", quiet)
    return rows


# --------------------------------------------------------------------- Fig 9
def run_fig9_dimensionality(scale: str = "small", *, quiet: bool = False, seed: int = 0
                            ) -> List[Dict[str, object]]:
    """Figure 9: effect of dimensionality ``d`` on AA and BA (IND data).

    For ``d = 2`` the paper substitutes FCA for BA and the specialised 2-D AA
    for AA; this driver does the same.
    """
    workload = _scale("fig9", scale)
    n = workload.cardinalities[0]
    rows: List[Dict[str, object]] = []
    for d in workload.dimensionalities:
        dataset = generate("IND", n, d, seed=seed)
        tree = RStarTree.build(dataset.records)
        aa_name = "aa2d" if d == 2 else "aa"
        rows.append(
            run_batch(dataset, algorithm=aa_name, queries=workload.queries, seed=seed,
                      tree=tree, label=f"fig9/d={d}").as_row()
        )
        ba_name = "fca" if d == 2 else "ba"
        ba_dataset = generate("IND", min(n, workload.ba_cardinality_cap), d, seed=seed)
        ba_tree = RStarTree.build(ba_dataset.records)
        rows.append(
            run_batch(ba_dataset, algorithm=ba_name, queries=workload.queries, seed=seed,
                      tree=ba_tree, label=f"fig9/d={d}").as_row()
        )
    _emit(rows, "Figure 9 — effect of dimensionality d (IND)", quiet)
    return rows


# ------------------------------------------------------------------- Table 3
def run_table3_dimensionality(scale: str = "small", *, quiet: bool = False, seed: int = 0
                              ) -> List[Dict[str, object]]:
    """Table 3: ``k*`` and ``|T|`` versus dimensionality (IND, AA)."""
    workload = _scale("table3", scale)
    n = workload.cardinalities[0]
    rows: List[Dict[str, object]] = []
    for d in workload.dimensionalities:
        dataset = generate("IND", n, d, seed=seed)
        algorithm = "aa2d" if d == 2 else "aa"
        batch = run_batch(dataset, algorithm=algorithm, queries=workload.queries, seed=seed,
                          label=f"table3/d={d}")
        rows.append({"d": d, "k_star": batch.mean_k_star, "regions": batch.mean_regions,
                     "cpu_s": batch.mean_cpu, "io": batch.mean_io})
    _emit(rows, "Table 3 — effect of dimensionality on k* and |T| (IND)", quiet)
    return rows


# ------------------------------------------------------------------- Table 4
def run_table4_real_datasets(scale: str = "small", *, quiet: bool = False, seed: int = 0
                             ) -> List[Dict[str, object]]:
    """Table 4: AA on the simulated real datasets.

    For the high-dimensional datasets (NBA, PITCH, BAT — 8 or 9 attributes)
    the cardinality is reduced further and focal records are drawn from the
    competitive decile (``focal_strategy="strong"``): a central record's
    result at ``d ≥ 8`` has so many regions that pure-Python processing is
    impractical.  The deviation is recorded in EXPERIMENTS.md.
    """
    workload = _scale("table4", scale)
    cardinality = workload.cardinalities[0]
    rows: List[Dict[str, object]] = []
    for name, spec in REAL_DATASETS.items():
        n = min(cardinality, spec.default_n) if scale == "small" else spec.default_n
        strategy = "central" if spec.d <= 6 else "strong"
        if spec.d >= 7:
            n = min(n, 400 if scale == "small" else 800)
        dataset = load_real_dataset(name, n=n, seed=seed)
        batch = run_batch(dataset, algorithm="aa", queries=workload.queries, seed=seed,
                          label=f"table4/{name}", focal_strategy=strategy)
        rows.append({
            "dataset": f"{name} ({spec.d}d)",
            "n": dataset.n,
            "k_star": batch.mean_k_star,
            "regions": batch.mean_regions,
            "cpu_s": batch.mean_cpu,
            "io": batch.mean_io,
        })
    _emit(rows, "Table 4 — AA on (simulated) real datasets", quiet)
    return rows


# -------------------------------------------------------------------- Fig 10
def run_fig10_imaxrank(scale: str = "small", *, quiet: bool = False, seed: int = 0
                       ) -> List[Dict[str, object]]:
    """Figure 10: iMaxRank cost and result size versus ``τ`` (IND and HOTEL)."""
    workload = _scale("fig10", scale)
    n = workload.cardinalities[0]
    d = workload.dimensionalities[0]
    datasets = {
        "IND": generate("IND", n, d, seed=seed),
        "HOTEL": load_real_dataset("HOTEL", n=n, seed=seed),
    }
    rows: List[Dict[str, object]] = []
    for name, dataset in datasets.items():
        tree = RStarTree.build(dataset.records)
        for tau in workload.taus:
            batch = run_batch(dataset, algorithm="aa", queries=workload.queries, seed=seed,
                              tau=tau, tree=tree, label=f"fig10/{name}/tau={tau}")
            rows.append({"dataset": name, "tau": tau, "cpu_s": batch.mean_cpu,
                         "io": batch.mean_io, "regions": batch.mean_regions,
                         "k_star": batch.mean_k_star})
    _emit(rows, "Figure 10 — iMaxRank, effect of tau", quiet)
    return rows


# -------------------------------------------------------------------- Fig 11
def run_fig11_two_dimensions(scale: str = "small", *, quiet: bool = False, seed: int = 0
                             ) -> List[Dict[str, object]]:
    """Figure 11: FCA versus the 2-dimensional AA on IND/COR/ANTI."""
    workload = _scale("fig11", scale)
    n = workload.cardinalities[0]
    rows: List[Dict[str, object]] = []
    for distribution in workload.distributions:
        dataset = generate(distribution, n, 2, seed=seed)
        tree = RStarTree.build(dataset.records)
        for algorithm in ("aa2d", "fca"):
            batch = run_batch(dataset, algorithm=algorithm, queries=workload.queries, seed=seed,
                              tree=tree, label=f"fig11/{distribution}")
            rows.append({"distribution": distribution, "algorithm": algorithm,
                         "cpu_s": batch.mean_cpu, "io": batch.mean_io,
                         "k_star": batch.mean_k_star, "regions": batch.mean_regions})
    _emit(rows, "Figure 11 — FCA vs AA in the special case d = 2", quiet)
    return rows


# -------------------------------------------------------------------- Fig 12
def run_fig12_score_ratio(scale: str = "small", *, quiet: bool = False, seed: int = 0
                          ) -> List[Dict[str, object]]:
    """Figure 12 (appendix): MaxScore/MinScore ratio versus dimensionality."""
    workload = _scale("fig12", scale)
    n = workload.cardinalities[0]
    rng = np.random.default_rng(seed)
    rows: List[Dict[str, object]] = []
    for d in workload.dimensionalities:
        dataset = generate("IND", n, d, seed=seed)
        ratios = []
        for _ in range(workload.queries):
            query = random_permissible_vector(d, rng)
            ratios.append(score_ratio(dataset, query))
        rows.append({"d": d, "ratio": float(np.mean(ratios))})
    _emit(rows, "Figure 12 — MaxScore/MinScore ratio vs dimensionality (IND)", quiet)
    return rows
