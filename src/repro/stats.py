"""Cost accounting for MaxRank query processing.

The paper reports two performance metrics: CPU time (seconds) and I/O cost
(number of 4 KB disk-page accesses).  Because this reproduction simulates the
disk, the I/O cost is counted analytically: every R*-tree node occupies one
page and reading a node increments the counter.  The :class:`CostCounters`
object is threaded through the index, skyline, quad-tree and core algorithm
layers so that a single query produces one coherent cost report.

The counters also record finer-grained quantities that the paper discusses in
prose (share of CPU spent on within-leaf processing, number of records
accessed, number of half-spaces inserted, number of LP feasibility calls),
which the benchmark harness prints alongside the headline metrics.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class CostCounters:
    """Mutable bundle of per-query cost metrics.

    Attributes
    ----------
    page_reads:
        Total simulated page accesses (R*-tree nodes read).  Matches the
        paper's "I/O" metric.
    distinct_page_reads:
        Number of distinct pages touched (an infinite-buffer view).
    records_accessed:
        Number of data records materialised from the index.
    halfspaces_inserted:
        Half-spaces inserted into the quad-tree / sorted list.
    halfspaces_expanded:
        Augmented half-spaces expanded by AA.
    cells_examined:
        Candidate cells whose emptiness was tested.
    candidates_generated:
        Candidate bit-strings emitted by within-leaf candidate generation
        (the entry point of the screen→LP funnel).  With the prefix-pruned
        DFS generator this counts only the candidates that survive
        enumeration-time pruning; forbidden sign-vector subtrees are never
        materialised (they are accounted by ``prefixes_cut`` instead).
    prefixes_cut:
        DFS branches cut during candidate generation because the partial
        sign vector already violated a pairwise constraint or a per-row
        corner-extreme bound.  Every cut skips an entire subtree of
        candidate bit-strings, so this is *not* a candidate count — it is
        the number of pruning events.
    screen_accepts / screen_rejects:
        Candidate cells resolved by the vectorised accept screen (a probe
        point certified the cell non-empty) respectively the reject screen
        (some constraint row is unsatisfiable anywhere in the leaf) — these
        cells never reach the LP.  See
        :func:`repro.geometry.lp.screen_cells_batch`.
    pairwise_pruned:
        Candidate bit-strings dismissed by the pairwise binary constraints
        before any feasibility work (not part of ``cells_examined``).
    lines_inserted:
        Half-plane boundary lines inserted into planar arrangements by the
        ``d = 3`` fast path (:mod:`repro.geometry.planar`); counted once per
        build or incremental extension, never for an arrangement adopted
        verbatim from a shipped snapshot.
    faces_enumerated:
        Faces enumerated by planar-arrangement builds/extensions — the
        candidate discovery volume of the planar sweep, the counterpart of
        ``candidates_generated`` for the generic generator.
    lp_calls:
        Linear-programming feasibility calls performed.
    lp_constraint_rows:
        Total constraint rows handed to the exact max-slack solves (the
        size tally of the Seidel layer).  Tracked here — rather than as
        solver-local state — so it aggregates correctly when leaf tasks run
        on worker processes and their counters are merged back.
    leaves_processed / leaves_pruned:
        Quad-tree leaves that underwent within-leaf processing vs. leaves
        pruned by the |F_l| bound.
    cache_hits / cache_misses:
        Service-layer result-cache outcomes (:mod:`repro.service`): queries
        answered from the LRU result cache vs. queries that had to be
        computed.  Always zero for standalone :func:`repro.core.maxrank.maxrank`
        calls — these keys exist so one counter dump describes a whole
        service batch; they are *not* engine-invariant and are excluded from
        the differential equivalence checks.
    skyline_reused:
        BBS node expansions whose child entry keys were served from a warm
        per-dataset :class:`~repro.skyline.bbs.SkylineCache` instead of
        being recomputed.  Zero for cold standalone queries (nothing is
        warm); a service-layer key like ``cache_hits``.
    nodes_created / splits_performed:
        Quad-tree construction volume: nodes materialised and split events
        executed, charged exactly once per node/event no matter which
        process (serial cascade, frontier expansion, or pool worker) built
        the subtree — both are structure properties of the finished tree,
        so they are serial/parallel-invariant and participate in the
        differential equivalence checks.
    build_tasks:
        Subtree construction units dispatched through the execution engine
        by a parallel cold build (:class:`repro.quadtree.build.SubtreeBuildTask`).
        Zero for serial builds, and dependent on the jobs count — *not*
        engine-invariant, like ``worker_retries``.
    worker_retries:
        Executor batches re-dispatched after a pool worker crashed
        (``BrokenProcessPool``): one per rebuild-and-retry round, not per
        chunk.  Zero on the happy path; like the service keys, not
        engine-invariant (it depends on which process died when).
    degraded_batches:
        Executor batches that exhausted their crash-retry budget and fell
        back to in-process serial execution of the remaining chunks.
        Results stay bit-identical; only this tally records the downgrade.
    deadline_checks:
        Cooperative deadline checkpoints evaluated (scan loop, within-leaf
        funnel, AA iterations).  Always zero when no deadline is set —
        the robustness layer costs nothing unless asked for — and not
        engine-invariant (serial and task-mode runs place checkpoints at
        different granularities).

    The object is *mergeable*: :meth:`merge` / ``+=`` add another bundle's
    counts, timers and page set into this one, and merging is associative
    and order-independent, which is what lets the execution engine give
    every worker-side leaf task its own counters and still report one exact
    per-query funnel.  Counters are picklable, so they cross process
    boundaries with the task results.

    The counters also carry the observability side channels (see
    :mod:`repro.obs`): ``_tracer`` is an optional live
    :class:`~repro.obs.trace.Tracer` — when set, every :meth:`timer`
    section additionally emits a span, at the cost of one ``is None``
    check when unset — and ``_spans`` is the list of finished
    :class:`~repro.obs.trace.SpanRecord` deltas riding home from
    workers, merged by :meth:`merge` exactly like the counters.  Both
    are excluded from :meth:`as_dict` and equality, so traced and
    untraced counter reports compare bit-identically; the tracer (a
    live object full of locks) is dropped on pickle, the span records
    (plain data) cross process boundaries with the rest.
    """

    page_reads: int = 0
    records_accessed: int = 0
    halfspaces_inserted: int = 0
    halfspaces_expanded: int = 0
    cells_examined: int = 0
    nonempty_cells: int = 0
    candidates_generated: int = 0
    prefixes_cut: int = 0
    screen_accepts: int = 0
    screen_rejects: int = 0
    pairwise_pruned: int = 0
    lines_inserted: int = 0
    faces_enumerated: int = 0
    lp_calls: int = 0
    lp_constraint_rows: int = 0
    leaves_processed: int = 0
    leaves_pruned: int = 0
    skyline_updates: int = 0
    iterations: int = 0
    nodes_created: int = 0
    splits_performed: int = 0
    build_tasks: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    skyline_reused: int = 0
    worker_retries: int = 0
    degraded_batches: int = 0
    deadline_checks: int = 0
    _seen_pages: set = field(default_factory=set, repr=False)
    _timers: Dict[str, float] = field(default_factory=dict, repr=False)
    _timer_starts: Dict[str, float] = field(default_factory=dict, repr=False)
    _spans: list = field(default_factory=list, repr=False, compare=False)
    _tracer: object = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ I/O
    def count_page_read(self, page_id: int) -> None:
        """Record the read of the simulated disk page ``page_id``."""
        self.page_reads += 1
        self._seen_pages.add(page_id)

    @property
    def distinct_page_reads(self) -> int:
        """Number of distinct pages read so far."""
        return len(self._seen_pages)

    # ---------------------------------------------------------------- timers
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock time under ``name``.

        Usage::

            with counters.timer("within_leaf"):
                ...work...

        When a tracer is attached (``_tracer``), the section also emits
        a span of the same name; with no tracer the extra cost is one
        ``is None`` check.
        """
        tracer = self._tracer
        handle = tracer.begin(name) if tracer is not None else None
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._timers[name] = self._timers.get(name, 0.0) + elapsed
            if handle is not None:
                tracer.finish(handle)

    def timer_seconds(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if never used)."""
        return self._timers.get(name, 0.0)

    @property
    def timers(self) -> Dict[str, float]:
        """A copy of all named timer totals, in seconds."""
        return dict(self._timers)

    @property
    def build_wall_fraction(self) -> float:
        """Share of the tracked wall clock spent building the quad-tree.

        ``time_quadtree_build / (build + skyline + within_leaf)`` — the
        headline ratio of PERFORMANCE.md's construction section.  A derived
        *time* quantity, so deliberately a property and **not** part of
        :meth:`as_dict`: counter dictionaries must stay comparable across
        serial and parallel runs, and wall-clock shares are not.  Returns
        0.0 when nothing was timed.
        """
        build = self._timers.get("quadtree_build", 0.0)
        total = (
            build
            + self._timers.get("skyline", 0.0)
            + self._timers.get("within_leaf", 0.0)
        )
        if total <= 0.0:
            return 0.0
        return build / total

    # --------------------------------------------------------------- reports
    def as_dict(self) -> Dict[str, float]:
        """Flatten all counters and timers into a plain dictionary."""
        out: Dict[str, float] = {
            "page_reads": self.page_reads,
            "distinct_page_reads": self.distinct_page_reads,
            "records_accessed": self.records_accessed,
            "halfspaces_inserted": self.halfspaces_inserted,
            "halfspaces_expanded": self.halfspaces_expanded,
            "cells_examined": self.cells_examined,
            "nonempty_cells": self.nonempty_cells,
            "candidates_generated": self.candidates_generated,
            "prefixes_cut": self.prefixes_cut,
            "screen_accepts": self.screen_accepts,
            "screen_rejects": self.screen_rejects,
            "pairwise_pruned": self.pairwise_pruned,
            "lines_inserted": self.lines_inserted,
            "faces_enumerated": self.faces_enumerated,
            "lp_calls": self.lp_calls,
            "lp_constraint_rows": self.lp_constraint_rows,
            "leaves_processed": self.leaves_processed,
            "leaves_pruned": self.leaves_pruned,
            "skyline_updates": self.skyline_updates,
            "iterations": self.iterations,
            "nodes_created": self.nodes_created,
            "splits_performed": self.splits_performed,
            "build_tasks": self.build_tasks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "skyline_reused": self.skyline_reused,
            "worker_retries": self.worker_retries,
            "degraded_batches": self.degraded_batches,
            "deadline_checks": self.deadline_checks,
        }
        for name, seconds in self._timers.items():
            out[f"time_{name}"] = seconds
        return out

    def merge(self, other: "CostCounters") -> None:
        """Add ``other``'s counts and timers into this object."""
        self.page_reads += other.page_reads
        self.records_accessed += other.records_accessed
        self.halfspaces_inserted += other.halfspaces_inserted
        self.halfspaces_expanded += other.halfspaces_expanded
        self.cells_examined += other.cells_examined
        self.nonempty_cells += other.nonempty_cells
        self.candidates_generated += other.candidates_generated
        self.prefixes_cut += other.prefixes_cut
        self.screen_accepts += other.screen_accepts
        self.screen_rejects += other.screen_rejects
        self.pairwise_pruned += other.pairwise_pruned
        self.lines_inserted += other.lines_inserted
        self.faces_enumerated += other.faces_enumerated
        self.lp_calls += other.lp_calls
        self.lp_constraint_rows += other.lp_constraint_rows
        self.leaves_processed += other.leaves_processed
        self.leaves_pruned += other.leaves_pruned
        self.skyline_updates += other.skyline_updates
        self.iterations += other.iterations
        self.nodes_created += other.nodes_created
        self.splits_performed += other.splits_performed
        self.build_tasks += other.build_tasks
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.skyline_reused += other.skyline_reused
        self.worker_retries += other.worker_retries
        self.degraded_batches += other.degraded_batches
        self.deadline_checks += other.deadline_checks
        self._seen_pages.update(other._seen_pages)
        for name, seconds in other._timers.items():
            self._timers[name] = self._timers.get(name, 0.0) + seconds
        if other._spans:
            self._spans.extend(other._spans)

    def __iadd__(self, other: "CostCounters") -> "CostCounters":
        """``counters += other`` — alias of :meth:`merge`."""
        self.merge(other)
        return self

    # ---------------------------------------------------------------- spans
    def record_span(self, record) -> None:
        """Append one finished :class:`~repro.obs.trace.SpanRecord` delta."""
        self._spans.append(record)

    def drain_spans(self) -> list:
        """Return and clear the accumulated span records."""
        spans, self._spans = self._spans, []
        return spans

    def __getstate__(self) -> Dict[str, object]:
        """Pickle support: drop in-flight timer starts (not meaningful
        across processes) and the live tracer (a lock-bearing object —
        workers get their trace context through the task instead);
        everything else, span records included, round-trips verbatim."""
        state = dict(self.__dict__)
        state["_timer_starts"] = {}
        state["_tracer"] = None
        return state

    def reset(self) -> None:
        """Zero every counter and timer."""
        fresh = CostCounters()
        self.__dict__.update(fresh.__dict__)
