"""Test-support utilities shipped with the library.

Only :mod:`repro.testing.faults` lives here today: the deterministic
fault-injection hooks that the chaos test suite (``tests/test_faults.py``)
and the CI ``chaos-smoke`` job drive.  Nothing in this package runs unless
a fault plan is explicitly activated, so importing it from production code
paths is free.
"""

from .faults import FaultPlan, InjectedFaultError, active_plan, inject

__all__ = ["FaultPlan", "InjectedFaultError", "active_plan", "inject"]
