"""Deterministic fault injection for the chaos test suite.

The robustness layer (worker-crash retry, deadlines, crash-safe snapshots,
serve-loop isolation) is only trustworthy if its failure paths are
*exercised*, and failure paths are exactly the code that never runs by
accident in CI.  This module provides seeded, explicitly activated fault
plans that production code consults through cheap hooks:

* **chunk directives** — the pool executor *arms* a fault when it first
  dispatches chunk ``kill_worker_on_chunk`` / ``stall_chunk`` of a batch
  (:meth:`FaultPlan.arm_chunk`); the worker applies the shipped directive
  (``os._exit`` → ``BrokenProcessPool`` in the parent, or a sleep past the
  deadline).  Arming happens parent-side and *consumes* the fault budget at
  dispatch time, so a retried chunk is not re-killed forever and recovery
  can actually be observed;
* **task hooks** — :func:`on_task` counts task executions per process and
  raises / stalls at task index ``raise_in_task`` / ``stall_task``
  (reliable with in-process executors; pool runs should use chunk
  directives, because a pre-existing forked worker does not see a plan
  activated in the parent afterwards);
* **snapshot hooks** — :func:`maybe_fail_replace` makes the atomic rename
  of :func:`repro.index.diskio.save_snapshot` fail ``fail_replace`` times,
  and :func:`maybe_flip_snapshot_byte` corrupts one byte of the written
  file at a seed-chosen position in its array region (guaranteed to be
  CRC-protected, so the corruption is always *detected* on load).

Activation is explicit: either the :func:`inject` context manager, or the
``REPRO_FAULTS`` environment variable holding the plan as a JSON object —
the latter is how subprocess tests (CLI, serve loop) and the CI chaos job
arm faults.  With no active plan every hook is a module-global ``None``
check; the happy path pays nothing.
"""

from __future__ import annotations

import json
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from ..errors import ReproError

__all__ = [
    "FaultPlan",
    "ChunkDirective",
    "InjectedFaultError",
    "active_plan",
    "inject",
    "apply_chunk_directive",
    "on_task",
    "maybe_fail_replace",
    "maybe_flip_snapshot_byte",
]

#: Exit status of a deliberately killed worker (distinctive in core dumps
#: and CI logs; any nonzero status breaks the pool the same way).
KILLED_WORKER_EXIT = 17


class InjectedFaultError(ReproError):
    """An error raised on purpose by an armed fault plan (picklable)."""


@dataclass(frozen=True)
class ChunkDirective:
    """A fault shipped to a worker alongside one task chunk (picklable)."""

    kill: bool = False
    stall_seconds: float = 0.0


@dataclass
class FaultPlan:
    """One seeded, deterministic set of faults to inject.

    Fields map one-to-one onto the failure modes the chaos suite drives;
    every field defaults to "off".  Budgets (``kill_times``,
    ``fail_replace``) are consumed as faults fire, so a plan is finite by
    construction and recovery paths get to run.
    """

    seed: int = 0
    #: Kill the worker executing this chunk index (per executor batch).
    kill_worker_on_chunk: Optional[int] = None
    #: How many dispatches of that chunk die before it succeeds.
    kill_times: int = 1
    #: Stall the worker executing this chunk index before any task runs.
    stall_chunk: Optional[int] = None
    #: Raise InjectedFaultError in the Nth task executed in this process.
    raise_in_task: Optional[int] = None
    #: Sleep before the Nth task executed in this process.
    stall_task: Optional[int] = None
    #: Sleep duration for stall_chunk / stall_task.
    stall_seconds: float = 0.2
    #: Corrupt one byte of the next snapshot written (seed-chosen position).
    flip_snapshot_byte: bool = False
    #: Make the snapshot's atomic rename fail this many times.
    fail_replace: int = 0

    _kill_remaining: int = field(init=False, repr=False, default=0)
    _replace_remaining: int = field(init=False, repr=False, default=0)
    _flip_pending: bool = field(init=False, repr=False, default=False)
    _tasks_seen: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        self._kill_remaining = (
            int(self.kill_times) if self.kill_worker_on_chunk is not None else 0
        )
        self._replace_remaining = int(self.fail_replace)
        self._flip_pending = bool(self.flip_snapshot_byte)

    # ------------------------------------------------------ chunk directives
    def arm_chunk(self, chunk_index: int) -> Optional[ChunkDirective]:
        """Directive for dispatching ``chunk_index``, consuming budgets.

        Called by the pool executor in the *parent* process immediately
        before submitting the chunk; the returned directive travels with
        the chunk payload.  Consuming the kill budget here (not in the
        worker) is what lets a retried dispatch of the same chunk succeed.
        """
        kill = False
        stall = 0.0
        if chunk_index == self.kill_worker_on_chunk and self._kill_remaining > 0:
            self._kill_remaining -= 1
            kill = True
        if chunk_index == self.stall_chunk:
            stall = float(self.stall_seconds)
        if kill or stall:
            return ChunkDirective(kill=kill, stall_seconds=stall)
        return None

    # ----------------------------------------------------------- task hooks
    def on_task(self) -> None:
        """Per-process task hook: raise or stall at the configured index."""
        index = self._tasks_seen
        self._tasks_seen += 1
        if self.stall_task is not None and index == self.stall_task:
            time.sleep(float(self.stall_seconds))
        if self.raise_in_task is not None and index == self.raise_in_task:
            raise InjectedFaultError(
                f"injected failure in task {index} (seed {self.seed})"
            )

    # ------------------------------------------------------- snapshot hooks
    def consume_replace_failure(self) -> bool:
        if self._replace_remaining > 0:
            self._replace_remaining -= 1
            return True
        return False

    def consume_snapshot_flip(self) -> bool:
        if self._flip_pending:
            self._flip_pending = False
            return True
        return False


_active: Optional[FaultPlan] = None
_env_checked = False


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan, if any.

    Resolution order: a plan activated by :func:`inject` wins; otherwise
    the ``REPRO_FAULTS`` environment variable (a JSON object of
    :class:`FaultPlan` fields) is parsed once per process and cached —
    which also means fork-based pool workers inherit the parsed plan of
    their parent, each with its own task counter.
    """
    global _active, _env_checked
    if _active is None and not _env_checked:
        _env_checked = True
        raw = os.environ.get("REPRO_FAULTS", "").strip()
        if raw:
            _active = FaultPlan(**json.loads(raw))
    return _active


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of the ``with`` block (re-entrant)."""
    global _active
    previous = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = previous


# --------------------------------------------------------------- apply side
def apply_chunk_directive(directive: Optional[ChunkDirective]) -> None:
    """Worker-side application of a shipped chunk directive."""
    if directive is None:
        return
    if directive.stall_seconds:
        time.sleep(directive.stall_seconds)
    if directive.kill:
        # A hard, un-catchable death: no cleanup handlers, no exception —
        # exactly what an OOM kill or segfault looks like to the pool.
        os._exit(KILLED_WORKER_EXIT)


def on_task() -> None:
    """Module-level task hook used by :func:`repro.engine.tasks.execute_task`."""
    plan = active_plan()
    if plan is not None:
        plan.on_task()


def maybe_fail_replace(path) -> None:
    """Raise ``OSError`` in place of the snapshot's atomic rename, if armed."""
    plan = active_plan()
    if plan is not None and plan.consume_replace_failure():
        raise OSError(f"injected os.replace failure for {path}")


def maybe_flip_snapshot_byte(path) -> None:
    """Corrupt one byte of the freshly written snapshot, if armed.

    The position is chosen deterministically from the plan's seed within
    the second half of the file — always inside the ``.npy`` array region
    (the JSON header is small and leads the file), whose bytes are covered
    by the records / structure CRC-32s, so ``load_snapshot`` is guaranteed
    to *detect* the corruption rather than silently reconstruct a wrong
    tree.
    """
    plan = active_plan()
    if plan is None or not plan.consume_snapshot_flip():
        return
    target = Path(path)
    data = bytearray(target.read_bytes())
    if not data:
        return
    start = len(data) // 2
    position = start + random.Random(plan.seed).randrange(len(data) - start)
    data[position] ^= 0xFF
    target.write_bytes(bytes(data))
