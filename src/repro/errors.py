"""Exception hierarchy for the MaxRank reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so a
caller can catch library-specific failures without masking programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class InvalidDatasetError(ReproError):
    """The dataset is malformed (empty, non-numeric, ragged rows, NaNs)."""


class InvalidRecordError(ReproError):
    """A record (typically the focal record) has the wrong shape or values."""


class InvalidQueryVectorError(ReproError):
    """A query vector is not permissible (non-positive weight, wrong sum)."""


class DimensionalityError(ReproError):
    """An operation received data of an unsupported dimensionality."""


class AlgorithmError(ReproError):
    """An algorithm was invoked with parameters it does not support."""


class GeometryError(ReproError):
    """A geometric primitive was used inconsistently (e.g. mixed dims)."""


class IndexError_(ReproError):
    """An error in the spatial index layer (named with a trailing underscore
    to avoid shadowing the built-in :class:`IndexError`)."""


class SnapshotError(ReproError):
    """A persisted index/dataset snapshot is unreadable: missing file,
    wrong magic, unsupported format version, truncation or checksum
    mismatch.  Raised instead of ever returning a partially loaded tree."""


class ExperimentError(ReproError):
    """An experiment/benchmark driver received an invalid configuration."""
