"""Exception hierarchy for the MaxRank reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so a
caller can catch library-specific failures without masking programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class InvalidDatasetError(ReproError):
    """The dataset is malformed (empty, non-numeric, ragged rows, NaNs)."""


class InvalidRecordError(ReproError):
    """A record (typically the focal record) has the wrong shape or values."""


class InvalidQueryVectorError(ReproError):
    """A query vector is not permissible (non-positive weight, wrong sum)."""


class DimensionalityError(ReproError):
    """An operation received data of an unsupported dimensionality."""


class AlgorithmError(ReproError):
    """An algorithm was invoked with parameters it does not support."""


class GeometryError(ReproError):
    """A geometric primitive was used inconsistently (e.g. mixed dims)."""


class IndexError_(ReproError):
    """An error in the spatial index layer (named with a trailing underscore
    to avoid shadowing the built-in :class:`IndexError`)."""


class SnapshotError(ReproError):
    """A persisted index/dataset snapshot is unreadable: missing file,
    wrong magic, unsupported format version, truncation or checksum
    mismatch.  Raised instead of ever returning a partially loaded tree."""


class ExperimentError(ReproError):
    """An experiment/benchmark driver received an invalid configuration."""


class QueryTimeoutError(ReproError):
    """A query exceeded its wall-clock deadline and was cancelled at a
    cooperative checkpoint.

    The exception carries *where* the cancellation fired (the checkpoint
    label, e.g. ``"within_leaf_funnel"``) and the partial
    :class:`~repro.stats.CostCounters` accumulated up to that point, so an
    operator can see how far the query got before it was cut off.  Both
    attributes survive pickling — a timeout raised inside a pool worker
    reaches the parent process intact."""

    def __init__(self, message: str, *, where: str = "", counters=None) -> None:
        super().__init__(message)
        self.where = where
        self.counters = counters

    def __reduce__(self):
        # Default exception pickling re-calls __init__(*args) and would drop
        # the keyword-only attributes; ship them as post-init state instead.
        return (
            self.__class__,
            (self.args[0] if self.args else "",),
            {"where": self.where, "counters": self.counters},
        )

    def __setstate__(self, state) -> None:
        self.where = state.get("where", "")
        self.counters = state.get("counters")


class WorkerCrashError(ReproError):
    """A pool worker process died while executing a task chunk (the
    underlying ``BrokenProcessPool``), attributed to the executor batch."""


class RetryExhaustedError(WorkerCrashError):
    """Worker crashes persisted past the executor's retry budget and
    serial degradation was disabled, so the batch could not complete."""
