"""k-skyband computation.

The k-skyband generalises the skyline: it contains every record dominated by
fewer than ``k`` other records.  The paper notes (Section 2) that BBS can
compute the k-skyband as well as the skyline; the k-skyband is also a handy
companion to MaxRank because any record whose best achievable order is at
most ``k`` necessarily belongs to the k-skyband (a record dominated by ``k``
or more others can never rank above all of them).

Two implementations are provided: a best-first traversal over the R*-tree
(generalising BBS pruning to "dominated by at least ``k`` skyband records"),
and a quadratic reference used by the tests.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Union

import numpy as np

from ..index.node import LeafEntry, RStarNode
from ..index.rstar import RStarTree
from ..stats import CostCounters
from .bbs import SkylineRecord, _entry_key
from .dominance import dominates

__all__ = ["bbs_skyband", "naive_skyband"]


def naive_skyband(points: np.ndarray, k: int) -> List[int]:
    """Indices of records dominated by fewer than ``k`` others (quadratic oracle)."""
    array = np.asarray(points, dtype=float)
    n = array.shape[0]
    result: List[int] = []
    for i in range(n):
        dominated_by = 0
        for j in range(n):
            if i != j and dominates(array[j], array[i]):
                dominated_by += 1
                if dominated_by >= k:
                    break
        if dominated_by < k:
            result.append(i)
    return result


def bbs_skyband(
    tree: RStarTree,
    k: int,
    *,
    counters: Optional[CostCounters] = None,
) -> List[SkylineRecord]:
    """Compute the k-skyband with a best-first (BBS-style) traversal.

    An entry is pruned only when at least ``k`` already-reported skyband
    records dominate it; this preserves BBS's property that a popped point
    can be classified immediately, because every record that could dominate
    it has a strictly better priority and has therefore already been popped.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    heap: List = []
    tiebreak = itertools.count()

    def push(entry: Union[LeafEntry, RStarNode]) -> None:
        heapq.heappush(heap, (_entry_key(entry), next(tiebreak), entry))

    def dominated_count(target: np.ndarray) -> int:
        return sum(1 for record in skyband if dominates(record.point, target))

    skyband: List[SkylineRecord] = []
    push(tree.root)
    while heap:
        _, _, entry = heapq.heappop(heap)
        if isinstance(entry, RStarNode):
            if dominated_count(entry.mbr.upper) >= k:
                continue
            tree.disk.read_page(entry.page_id, counters)
            for child in entry.entries:
                target = child.point if isinstance(child, LeafEntry) else child.mbr.upper
                if dominated_count(target) < k:
                    push(child)
            continue
        if dominated_count(entry.point) >= k:
            continue
        if counters is not None:
            counters.records_accessed += 1
        skyband.append(SkylineRecord(entry.record_id, entry.point))
    return skyband
