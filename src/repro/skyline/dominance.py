"""Dominance relationships between records.

The paper's convention is that larger attribute values are better.  A record
``r`` *dominates* ``r'`` when ``r_i ≥ r'_i`` in every attribute and
``r_i > r'_i`` in at least one.  Dominance drives two pruning steps:

* records dominating the focal record (*dominators*) outrank it under every
  permissible preference — they only contribute their count to ``k*``;
* records dominated by the focal record (*dominees*) can never outrank it —
  they are discarded outright;
* the remaining *incomparable* records are the ones whose half-spaces form
  the arrangement MaxRank reasons about.

This module provides the pairwise tests, the three-way partition of a
dataset around a focal record (both a vectorised in-memory version and an
index-backed version that counts dominators with aggregate range counting,
charging simulated I/O), and a naive skyline used as a test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..data.dataset import Dataset
from ..index.rstar import RStarTree
from ..stats import CostCounters

__all__ = [
    "dominates",
    "DominancePartition",
    "partition_by_dominance",
    "count_dominators_with_index",
    "naive_skyline",
]


def dominates(a: Sequence[float] | np.ndarray, b: Sequence[float] | np.ndarray) -> bool:
    """True when ``a`` dominates ``b`` (``≥`` everywhere, ``>`` somewhere)."""
    a_vec = np.asarray(a, dtype=float).ravel()
    b_vec = np.asarray(b, dtype=float).ravel()
    return bool(np.all(a_vec >= b_vec) and np.any(a_vec > b_vec))


@dataclass(frozen=True)
class DominancePartition:
    """Indices of the dataset split around the focal record.

    Attributes
    ----------
    dominators:
        Indices of records that dominate the focal record.
    dominees:
        Indices of records dominated by the focal record.
    incomparable:
        Indices of records that are neither (excluding exact duplicates of
        the focal record, which tie in score everywhere and are ignored as
        per the paper's no-ties convention).
    duplicates:
        Indices of records identical to the focal record.
    """

    dominators: np.ndarray
    dominees: np.ndarray
    incomparable: np.ndarray
    duplicates: np.ndarray

    @property
    def dominator_count(self) -> int:
        """Number of dominators, i.e. the ``|D+|`` term of ``k*``."""
        return int(self.dominators.shape[0])


def partition_by_dominance(
    dataset: Dataset,
    focal: Sequence[float] | np.ndarray,
    *,
    exclude_index: Optional[int] = None,
) -> DominancePartition:
    """Partition the dataset into dominators / dominees / incomparable records.

    Parameters
    ----------
    dataset:
        The dataset ``D``.
    focal:
        The focal record ``p`` (coordinates).
    exclude_index:
        Optional record index to leave out of every class — used when the
        focal record is a member of the dataset and must not compete with
        itself.
    """
    p = dataset.validate_focal(focal)
    records = dataset.records
    geq = records >= p
    leq = records <= p
    gt_any = (records > p).any(axis=1)
    lt_any = (records < p).any(axis=1)

    dominator_mask = geq.all(axis=1) & gt_any
    dominee_mask = leq.all(axis=1) & lt_any
    duplicate_mask = geq.all(axis=1) & leq.all(axis=1)
    incomparable_mask = ~(dominator_mask | dominee_mask | duplicate_mask)

    if exclude_index is not None and 0 <= exclude_index < dataset.n:
        for mask in (dominator_mask, dominee_mask, duplicate_mask, incomparable_mask):
            mask[exclude_index] = False

    return DominancePartition(
        dominators=np.flatnonzero(dominator_mask),
        dominees=np.flatnonzero(dominee_mask),
        incomparable=np.flatnonzero(incomparable_mask),
        duplicates=np.flatnonzero(duplicate_mask),
    )


def count_dominators_with_index(
    tree: RStarTree,
    focal: Sequence[float] | np.ndarray,
    *,
    upper_bound: Optional[Sequence[float]] = None,
    counters: Optional[CostCounters] = None,
    exclude_duplicates: bool = True,
) -> int:
    """Count dominators of ``focal`` using aggregate range counting on the R*-tree.

    The dominator region is the closed box ``[focal, upper_bound]``; records
    equal to the focal record in every attribute are subtracted when
    ``exclude_duplicates`` is true (they do not dominate it).  Page accesses
    are charged to ``counters`` — this is the "factor (i)" of AA's I/O cost
    discussed in the paper's Figure 8 analysis.
    """
    p = np.asarray(focal, dtype=float).ravel()
    if upper_bound is None:
        hi = np.full_like(p, np.inf)
    else:
        hi = np.asarray(upper_bound, dtype=float).ravel()
    in_box = tree.range_count(p, hi, counters)
    if not exclude_duplicates:
        return in_box
    duplicates = tree.range_count(p, p, counters)
    return in_box - duplicates


def naive_skyline(points: np.ndarray) -> List[int]:
    """Quadratic reference skyline (indices into ``points``), used as a test oracle."""
    array = np.asarray(points, dtype=float)
    n = array.shape[0]
    result: List[int] = []
    for i in range(n):
        candidate = array[i]
        dominated = False
        for j in range(n):
            if i != j and dominates(array[j], candidate):
                dominated = True
                break
        if not dominated:
            result.append(i)
    return result
