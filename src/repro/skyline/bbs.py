"""Branch-and-Bound Skyline (BBS) over the R*-tree.

BBS [Papadias et al. 2005] is the I/O-optimal skyline algorithm the paper
uses for the advanced approach's implicit subsumption (Section 6.2): AA only
materialises the half-spaces of records that appear on the (progressively
updated) skyline of the not-yet-expanded incomparable records.

The implementation here works for *maximisation* dominance (larger attribute
values are better, matching the paper's top-k convention): entries are
explored best-first by the sum of their (upper-corner) coordinates, and an
entry is pruned as soon as some skyline record dominates it.

Pruned entries are not thrown away — they are parked under the skyline record
that dominated them.  This is what makes the incremental maintenance of
Section 6.2 possible: when AA expands (removes) a skyline record, the entries
parked under it are re-activated and processed against the remaining skyline,
without re-reading R*-tree pages that were already read.  See
:class:`IncrementalSkyline`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..index.node import LeafEntry, RStarNode
from ..index.rstar import RStarTree
from ..stats import CostCounters
from .dominance import dominates

__all__ = ["SkylineRecord", "bbs_skyline", "IncrementalSkyline"]

FilterFn = Callable[[int, np.ndarray], bool]


@dataclass(frozen=True)
class SkylineRecord:
    """A record reported on the skyline: ``(record_id, point)``."""

    record_id: int
    point: np.ndarray


def _entry_key(entry: Union[LeafEntry, RStarNode]) -> float:
    """Best-first priority: larger coordinate sums are explored earlier.

    For a node the upper corner of its MBR upper-bounds the coordinate sum of
    every contained point, so ``-max_corner_sum`` never underestimates the
    final key of a descendant — the property BBS correctness rests on.
    """
    if isinstance(entry, LeafEntry):
        return -float(np.sum(entry.point))
    return -entry.mbr.max_corner_sum()


def _dominating_record(
    entry: Union[LeafEntry, RStarNode], skyline: List[SkylineRecord]
) -> Optional[SkylineRecord]:
    """Return a skyline record dominating ``entry`` (its upper corner), if any."""
    if isinstance(entry, LeafEntry):
        target = entry.point
    else:
        target = entry.mbr.upper
    for record in skyline:
        if dominates(record.point, target):
            return record
    return None


class IncrementalSkyline:
    """BBS skyline with support for excluding (expanding) skyline records.

    Parameters
    ----------
    tree:
        R*-tree over the dataset.
    accept:
        Optional predicate ``accept(record_id, point)``; records for which it
        returns False never enter the skyline (AA passes the "is incomparable
        to the focal record" test here, so dominators/dominees are skipped).
    counters:
        Optional cost counters; every node read charges one page access and
        every accepted leaf entry one record access.

    The class maintains BBS's search heap across calls: :meth:`compute`
    processes the heap until it is exhausted, and :meth:`exclude` removes a
    skyline record, re-activates everything that was pruned because of it and
    returns the records that newly joined the skyline — exactly the behaviour
    the paper describes for AA's implicit subsumption ("BBS reuses its search
    heap to incrementally update the skyline, without re-accessing the same
    R*-tree nodes and records").
    """

    def __init__(
        self,
        tree: RStarTree,
        *,
        accept: Optional[FilterFn] = None,
        counters: Optional[CostCounters] = None,
    ) -> None:
        self._tree = tree
        self._accept = accept
        self._counters = counters
        self._heap: List[Tuple[float, int, Union[LeafEntry, RStarNode]]] = []
        self._tiebreak = itertools.count()
        self._skyline: List[SkylineRecord] = []
        self._deferred: Dict[int, List[Union[LeafEntry, RStarNode]]] = {}
        self._excluded: Set[int] = set()
        self._push(tree.root)
        self._exhausted = False

    # ------------------------------------------------------------ primitives
    def _push(self, entry: Union[LeafEntry, RStarNode]) -> None:
        heapq.heappush(self._heap, (_entry_key(entry), next(self._tiebreak), entry))

    def _defer(self, blocker: SkylineRecord, entry: Union[LeafEntry, RStarNode]) -> None:
        self._deferred.setdefault(blocker.record_id, []).append(entry)

    def _read_node(self, node: RStarNode) -> None:
        self._tree.disk.read_page(node.page_id, self._counters)

    # -------------------------------------------------------------- interface
    @property
    def skyline(self) -> List[SkylineRecord]:
        """The current skyline (of accepted, non-excluded records)."""
        return list(self._skyline)

    def compute(self) -> List[SkylineRecord]:
        """Drain the search heap and return the complete current skyline."""
        self._process_heap()
        return self.skyline

    def exclude(self, record_id: int) -> List[SkylineRecord]:
        """Remove ``record_id`` from the skyline and return newly exposed members.

        Entries that had been pruned because of the removed record are pushed
        back onto the heap and processed against the remaining skyline.  The
        removed record is ignored from now on.
        """
        self._excluded.add(record_id)
        before_ids = {record.record_id for record in self._skyline}
        self._skyline = [r for r in self._skyline if r.record_id != record_id]
        for entry in self._deferred.pop(record_id, []):
            self._push(entry)
        if self._counters is not None:
            self._counters.skyline_updates += 1
        self._process_heap()
        return [r for r in self._skyline if r.record_id not in before_ids]

    # ------------------------------------------------------------- main loop
    def _process_heap(self) -> None:
        while self._heap:
            _, _, entry = heapq.heappop(self._heap)
            if isinstance(entry, LeafEntry) and entry.record_id in self._excluded:
                continue
            blocker = _dominating_record(entry, self._skyline)
            if blocker is not None:
                self._defer(blocker, entry)
                continue
            if isinstance(entry, RStarNode):
                self._read_node(entry)
                for child in entry.entries:
                    child_blocker = _dominating_record(child, self._skyline)
                    if child_blocker is not None:
                        self._defer(child_blocker, child)
                    else:
                        self._push(child)
                continue
            # Leaf entry, not dominated by any current skyline record.
            if self._accept is not None and not self._accept(entry.record_id, entry.point):
                continue
            if self._counters is not None:
                self._counters.records_accessed += 1
            self._skyline.append(SkylineRecord(entry.record_id, entry.point))


def bbs_skyline(
    tree: RStarTree,
    *,
    accept: Optional[FilterFn] = None,
    counters: Optional[CostCounters] = None,
) -> List[SkylineRecord]:
    """One-shot BBS skyline of the records accepted by ``accept``."""
    return IncrementalSkyline(tree, accept=accept, counters=counters).compute()
