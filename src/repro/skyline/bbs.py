"""Branch-and-Bound Skyline (BBS) over the R*-tree.

BBS [Papadias et al. 2005] is the I/O-optimal skyline algorithm the paper
uses for the advanced approach's implicit subsumption (Section 6.2): AA only
materialises the half-spaces of records that appear on the (progressively
updated) skyline of the not-yet-expanded incomparable records.

The implementation here works for *maximisation* dominance (larger attribute
values are better, matching the paper's top-k convention): entries are
explored best-first by the sum of their (upper-corner) coordinates, and an
entry is pruned as soon as some skyline record dominates it.

Pruned entries are not thrown away — they are parked under the skyline record
that dominated them.  This is what makes the incremental maintenance of
Section 6.2 possible: when AA expands (removes) a skyline record, the entries
parked under it are re-activated and processed against the remaining skyline,
without re-reading R*-tree pages that were already read.  See
:class:`IncrementalSkyline`.

Two refinements keep repeated :meth:`IncrementalSkyline.exclude` calls cheap
(they dominate the d = 3 profile once the within-leaf layer is fast):

* **Resumable dominance scans.**  Skyline members are logged in acceptance
  order (an append-only *addition log*; exclusions are permanent, so the
  active set only ever loses old members and gains new ones at the end).
  Every parked entry remembers the log position up to which it is already
  known to be non-dominated, so a re-activated entry is only checked against
  members added *after* it was parked — the settled prefix is never
  re-scanned.  Dominance is static, so this is exactly equivalent to the
  full rescan, just without the quadratic re-checking across an AA run.
* **Warm expansion state.**  A :class:`SkylineCache` retains the best-first
  keys of every expanded node's children across queries on the same tree
  (the keys depend only on the tree, never on the focal record).  A MaxRank
  service that owns a dataset shares one cache over all its queries, so
  per-query BBS passes stop recomputing the traversal keys the first query
  already paid for.  Simulated I/O is still charged per query — the cache
  memoises CPU work, not page reads — so cost reports stay identical to a
  cold run except for the ``skyline_reused`` service-layer counter.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

import numpy as np

from ..errors import AlgorithmError
from ..index.node import LeafEntry, RStarNode
from ..index.rstar import RStarTree
from ..stats import CostCounters

__all__ = ["SkylineRecord", "SkylineCache", "bbs_skyline", "IncrementalSkyline"]

FilterFn = Callable[[int, np.ndarray], bool]


@dataclass(frozen=True)
class SkylineRecord:
    """A record reported on the skyline: ``(record_id, point)``."""

    record_id: int
    point: np.ndarray


def _entry_key(entry: Union[LeafEntry, RStarNode]) -> float:
    """Best-first priority: larger coordinate sums are explored earlier.

    For a node the upper corner of its MBR upper-bounds the coordinate sum of
    every contained point, so ``-max_corner_sum`` never underestimates the
    final key of a descendant — the property BBS correctness rests on.
    """
    if isinstance(entry, LeafEntry):
        return -float(np.sum(entry.point))
    return -entry.mbr.max_corner_sum()


class SkylineCache:
    """Warm, focal-independent BBS expansion state for one R*-tree.

    The best-first key of an entry (:func:`_entry_key`) depends only on the
    tree, never on the query, so a long-lived owner of a dataset (the
    :mod:`repro.service` layer) can compute each node's child keys once and
    reuse them for every subsequent query's skyline pass.  The cache is
    filled lazily by the first traversal that expands a node and is safe to
    share across any number of sequential queries; it never stores
    query-dependent state (skylines, heaps, deferral lists are all
    per-query).

    Reuse is *observable only as saved CPU*: keys served from the cache are
    bit-identical to recomputed ones, and page reads are still charged per
    query, so a warm query's results and engine-invariant counters match a
    cold run exactly.  Each expansion served from the cache increments the
    consuming query's ``skyline_reused`` counter.

    The key store is guarded by a lock, so concurrent queries of a threaded
    serving front may share one cache: two threads warming the same node
    race benignly (both compute the same keys; one write wins) and a
    mutation's :meth:`invalidate_pages` can never observe a half-updated
    map.  The lock is never held while keys are *computed*, only around the
    dict probe/store, so the warm path stays contention-free.
    """

    def __init__(self, tree: RStarTree) -> None:
        self.tree = tree
        self._lock = threading.Lock()
        self._child_keys: Dict[int, List[float]] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._child_keys)

    def child_keys(self, node: RStarNode) -> Tuple[List[float], bool]:
        """Keys of ``node``'s children, plus whether they came from the cache."""
        with self._lock:
            keys = self._child_keys.get(node.page_id)
        if keys is not None:
            return keys, True
        keys = [_entry_key(child) for child in node.entries]
        with self._lock:
            self._child_keys[node.page_id] = keys
        return keys, False

    def invalidate_pages(self, page_ids) -> int:
        """Drop the warm keys of ``page_ids``; returns how many were dropped.

        Called by the mutable service layer after an R*-tree insert/delete
        with the tree's dirty-page set (mutated nodes plus their ancestors —
        a child MBR change alters the parent's child keys).  Page ids are
        never reused by the :class:`~repro.index.diskio.DiskSimulator`, so
        dropping exactly the dirty pages is sound: every surviving key still
        describes an unchanged node.
        """
        dropped = 0
        with self._lock:
            for page_id in page_ids:
                if self._child_keys.pop(page_id, None) is not None:
                    dropped += 1
        return dropped


class IncrementalSkyline:
    """BBS skyline with support for excluding (expanding) skyline records.

    Parameters
    ----------
    tree:
        R*-tree over the dataset.
    accept:
        Optional predicate ``accept(record_id, point)``; records for which it
        returns False never enter the skyline (AA passes the "is incomparable
        to the focal record" test here, so dominators/dominees are skipped).
    counters:
        Optional cost counters; every node read charges one page access and
        every accepted leaf entry one record access.
    cache:
        Optional :class:`SkylineCache` built for the *same* tree: node
        expansions then reuse the warm child keys instead of recomputing
        them (each such reuse charges ``skyline_reused``).  Results are
        bit-identical with and without a cache.

    The class maintains BBS's search heap across calls: :meth:`compute`
    processes the heap until it is exhausted, and :meth:`exclude` removes a
    skyline record, re-activates everything that was pruned because of it and
    returns the records that newly joined the skyline — exactly the behaviour
    the paper describes for AA's implicit subsumption ("BBS reuses its search
    heap to incrementally update the skyline, without re-accessing the same
    R*-tree nodes and records").

    Internally the skyline is an append-only *addition log* plus an active
    set: every parked entry stores the log position up to which it is known
    non-dominated, so repeated ``exclude`` calls only check re-activated
    entries against members added since they were parked.  Because an
    excluded record never returns and new members only append, the skipped
    prefix can never dominate — the incremental scan is exactly equivalent
    to re-scanning from scratch.
    """

    def __init__(
        self,
        tree: RStarTree,
        *,
        accept: Optional[FilterFn] = None,
        counters: Optional[CostCounters] = None,
        cache: Optional[SkylineCache] = None,
    ) -> None:
        if cache is not None and cache.tree is not tree:
            raise AlgorithmError(
                "the skyline cache was built for a different R*-tree; "
                "warm expansion keys are only valid for their own tree"
            )
        self._tree = tree
        self._accept = accept
        self._counters = counters
        self._cache = cache
        # Heap items: (key, tiebreak, entry, resume) — ``resume`` is the
        # addition-log index from which dominance checking must resume.
        self._heap: List[Tuple[float, int, Union[LeafEntry, RStarNode], int]] = []
        self._tiebreak = itertools.count()
        # Addition log: every record ever accepted, in acceptance order.
        self._additions: List[SkylineRecord] = []
        self._points = np.empty((16, tree.dim), dtype=float)
        self._active_idx: List[int] = []      # ascending addition indices
        self._active_np: Optional[np.ndarray] = None
        self._id_to_idx: Dict[int, int] = {}
        # blocker record_id -> [(entry, resume), ...]
        self._deferred: Dict[int, List[Tuple[Union[LeafEntry, RStarNode], int]]] = {}
        self._excluded: Set[int] = set()
        self._push(tree.root, 0)

    # ------------------------------------------------------------ primitives
    def _push(
        self,
        entry: Union[LeafEntry, RStarNode],
        resume: int,
        key: Optional[float] = None,
    ) -> None:
        if key is None:
            key = _entry_key(entry)
        heapq.heappush(self._heap, (key, next(self._tiebreak), entry, resume))

    def _defer(
        self, blocker_idx: int, entry: Union[LeafEntry, RStarNode]
    ) -> None:
        """Park ``entry`` under the skyline member at addition index
        ``blocker_idx``; everything before it is settled (non-dominating)."""
        record_id = self._additions[blocker_idx].record_id
        self._deferred.setdefault(record_id, []).append((entry, blocker_idx + 1))

    def _read_node(self, node: RStarNode) -> None:
        self._tree.disk.read_page(node.page_id, self._counters)

    @staticmethod
    def _target(entry: Union[LeafEntry, RStarNode]) -> np.ndarray:
        return entry.point if isinstance(entry, LeafEntry) else entry.mbr.upper

    def _first_dominator(self, target: np.ndarray, resume: int) -> Optional[int]:
        """Addition index of the first active member at or after ``resume``
        that dominates ``target``, or ``None``.

        Scans in addition (acceptance) order — the same order the skyline
        list grows in — so deferral parks an entry under the same member a
        full front-to-back rescan would pick.
        """
        active = self._active_np
        if active is None:
            active = self._active_np = np.asarray(self._active_idx, dtype=np.intp)
        if active.size == 0:
            return None
        pos = int(np.searchsorted(active, resume, side="left"))
        if pos >= active.size:
            return None
        candidates = active[pos:]
        points = self._points[candidates]
        dominated = (points >= target).all(axis=1) & (points > target).any(axis=1)
        hits = np.flatnonzero(dominated)
        if hits.size == 0:
            return None
        return int(candidates[hits[0]])

    def _accept_record(self, entry: LeafEntry) -> None:
        index = len(self._additions)
        record = SkylineRecord(entry.record_id, entry.point)
        self._additions.append(record)
        if index >= self._points.shape[0]:
            grown = np.empty((2 * self._points.shape[0], self._points.shape[1]))
            grown[:index] = self._points[:index]
            self._points = grown
        self._points[index] = entry.point
        self._active_idx.append(index)
        self._active_np = None
        self._id_to_idx[entry.record_id] = index

    # -------------------------------------------------------------- interface
    @property
    def skyline(self) -> List[SkylineRecord]:
        """The current skyline (of accepted, non-excluded records)."""
        return [self._additions[i] for i in self._active_idx]

    def compute(self) -> List[SkylineRecord]:
        """Drain the search heap and return the complete current skyline."""
        self._process_heap()
        return self.skyline

    def exclude(self, record_id: int) -> List[SkylineRecord]:
        """Remove ``record_id`` from the skyline and return newly exposed members.

        Entries that had been parked under the removed record are pushed
        back onto the heap and processed against the remaining skyline —
        resuming their dominance scans where they stopped, so the settled
        prefix of the skyline is not re-checked.  The removed record is
        ignored from now on.
        """
        self._excluded.add(record_id)
        index = self._id_to_idx.get(record_id)
        if index is not None:
            try:
                self._active_idx.remove(index)
                self._active_np = None
            except ValueError:
                pass  # already excluded earlier
        before = len(self._additions)
        for entry, resume in self._deferred.pop(record_id, []):
            self._push(entry, resume)
        if self._counters is not None:
            self._counters.skyline_updates += 1
        self._process_heap()
        return self._additions[before:]

    # ------------------------------------------------------ mutation repair
    def remove_record(self, record_id: int) -> List[SkylineRecord]:
        """Repair the skyline after ``record_id`` was deleted from the dataset.

        Deletion repair is exclusion: the record leaves the skyline (if it
        was on it), everything parked under it is re-activated against the
        remaining members, and the record is permanently ignored — the same
        mechanics AA's expansion uses, applied for a different reason.
        Works whether the record is currently active, parked, or was never
        seen (a record still buried in the heap is guarded by the exclusion
        set).  Returns the members the removal newly exposed.
        """
        return self.exclude(record_id)

    def insert_record(self, record_id: int, point: np.ndarray) -> List[SkylineRecord]:
        """Repair the skyline after ``(record_id, point)`` was inserted.

        The new record is processed exactly as a freshly popped leaf entry
        would be: dropped if the accept predicate rejects it, parked under
        the first dominating skyline member if one exists (resumable like
        every other parked entry — it surfaces if that member is later
        removed), and accepted otherwise.  An accepted insert additionally
        *demotes* every active member it dominates: the member leaves the
        skyline and is parked under the new record with its settled prefix
        preserved, so excluding the insert later restores it through the
        ordinary re-activation path.  Returns the newly added members (the
        inserted record itself, when accepted).
        """
        self._process_heap()  # settle pending search state first
        p = np.asarray(point, dtype=float).ravel()
        if record_id in self._excluded:
            return []
        if record_id in self._id_to_idx:
            raise AlgorithmError(
                f"record {record_id} is already on the skyline; inserts need "
                f"a fresh record id"
            )
        if self._accept is not None and not self._accept(record_id, p):
            return []
        entry = LeafEntry(record_id, p)
        blocker = self._first_dominator(entry.point, 0)
        if blocker is not None:
            self._defer(blocker, entry)
            return []
        new_index = len(self._additions)
        before = new_index
        self._accept_record(entry)
        # Demote active members the insert dominates (antichain invariant):
        # they park under the new record — everything before it is settled
        # (the active set was an antichain), everything after gets checked
        # on re-activation.
        demoted = [
            index
            for index in self._active_idx
            if index != new_index
            and (self._points[index] <= entry.point).all()
            and (self._points[index] < entry.point).any()
        ]
        for index in demoted:
            self._active_idx.remove(index)
            self._active_np = None
            member = self._additions[index]
            self._deferred.setdefault(record_id, []).append(
                (LeafEntry(member.record_id, member.point), new_index + 1)
            )
        if self._counters is not None:
            self._counters.skyline_updates += 1
        return self._additions[before:]

    # ------------------------------------------------------------- main loop
    def _process_heap(self) -> None:
        counters = self._counters
        while self._heap:
            _, _, entry, resume = heapq.heappop(self._heap)
            if isinstance(entry, LeafEntry) and entry.record_id in self._excluded:
                continue
            blocker = self._first_dominator(self._target(entry), resume)
            if blocker is not None:
                self._defer(blocker, entry)
                continue
            if isinstance(entry, RStarNode):
                self._read_node(entry)
                keys: Optional[List[float]] = None
                if self._cache is not None:
                    keys, warm = self._cache.child_keys(entry)
                    if warm and counters is not None:
                        counters.skyline_reused += 1
                for position, child in enumerate(entry.entries):
                    child_blocker = self._first_dominator(self._target(child), 0)
                    if child_blocker is not None:
                        self._defer(child_blocker, child)
                    else:
                        self._push(
                            child,
                            0,
                            key=keys[position] if keys is not None else None,
                        )
                continue
            # Leaf entry, not dominated by any current skyline record.
            if self._accept is not None and not self._accept(entry.record_id, entry.point):
                continue
            if counters is not None:
                counters.records_accessed += 1
            self._accept_record(entry)


def bbs_skyline(
    tree: RStarTree,
    *,
    accept: Optional[FilterFn] = None,
    counters: Optional[CostCounters] = None,
) -> List[SkylineRecord]:
    """One-shot BBS skyline of the records accepted by ``accept``."""
    return IncrementalSkyline(tree, accept=accept, counters=counters).compute()
