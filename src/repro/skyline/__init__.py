"""Skyline substrate: dominance partitioning, BBS, incremental skyline and k-skyband."""

from .bbs import IncrementalSkyline, SkylineRecord, bbs_skyline
from .dominance import (
    DominancePartition,
    count_dominators_with_index,
    dominates,
    naive_skyline,
    partition_by_dominance,
)
from .skyband import bbs_skyband, naive_skyband

__all__ = [
    "dominates",
    "DominancePartition",
    "partition_by_dominance",
    "count_dominators_with_index",
    "naive_skyline",
    "SkylineRecord",
    "bbs_skyline",
    "IncrementalSkyline",
    "bbs_skyband",
    "naive_skyband",
]
