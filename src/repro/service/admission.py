"""Admission control for concurrent MaxRank traffic: single-flight + waves.

A threaded transport hands the serving front many simultaneous requests.
Letting each transport thread call :meth:`MaxRankService.query` directly
would be correct (the service is thread-safe) but wasteful under the two
load shapes that actually occur:

* **Duplicate hot keys.**  Interactive what-if traffic is skewed: many
  clients ask about the *same* focal record at the same time.  The result
  cache only helps the requests that arrive after the first computation
  finishes; everything that arrives *while* it runs would recompute the
  identical answer.  The admission layer makes concurrent duplicates
  **single-flight**: the first request computes, the rest park on the same
  flight and receive the very same result object (counted in
  ``coalesced``).
* **Concurrent distinct keys.**  Distinct concurrent requests are coalesced
  into **waves** executed through :meth:`MaxRankService.query_batch`
  (optionally with whole-query process parallelism, ``jobs=N``), so the
  batch path's dedup/merge machinery — not N independent locks — absorbs
  the concurrency.  When more requests are pending than one wave admits,
  the pending queue is shuffled with a seeded RNG before slicing — the
  MRV-style randomized split (Faria & Pereira, SIGMOD 2023): hotspot load
  is spread across physical units at random instead of letting arrival
  order serialise one hot focal's followers behind each other, so a skewed
  workload cannot pin every wave to the same key while distinct cold keys
  starve.

Answers are untouched on the way through: a flight's result is exactly what
``query_batch`` returned, and ``query_batch`` is bit-identical to
standalone :func:`repro.maxrank` — the admission layer only decides *when*
and *together with whom* a computation runs, never *what* it computes.

Wave leadership is cooperative: the first thread to find no wave running
becomes the leader, briefly holds the door open (``wave_window_s``) so
concurrent arrivals join its wave, executes the batch, distributes the
results and hands leadership to whoever is waiting next.  There is no
background dispatcher thread to manage or leak.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..errors import AlgorithmError
from .cache import query_key

__all__ = ["AdmissionController"]


class _Flight:
    """One admitted query: parameters in, shared (result | error) out."""

    __slots__ = (
        "key", "service", "focal", "tau", "algorithm", "engine", "options",
        "timeout", "use_cache", "done", "result", "error", "cache_hit",
        "tracer", "ctx",
    )

    def __init__(self, key, service, focal, tau, algorithm, engine,
                 options, timeout, use_cache, tracer=None, ctx=None):
        self.key = key
        self.service = service
        self.focal = focal
        self.tau = tau
        self.algorithm = algorithm
        self.engine = engine
        self.options = options
        self.timeout = timeout
        self.use_cache = use_cache
        self.done = False
        self.result = None
        self.error: Optional[BaseException] = None
        self.cache_hit = False
        #: optional tracing of the request that opened this flight: the
        #: tracer itself plus the submit span's context, so the wave
        #: leader (a different thread) can parent its spans correctly
        self.tracer = tracer
        self.ctx = ctx


class AdmissionController:
    """Coalesces concurrent requests into single flights and batch waves.

    Parameters
    ----------
    wave_size:
        Maximum distinct queries per wave (one ``query_batch`` call).
    wave_window_s:
        How long a freshly elected wave leader keeps the wave open for
        concurrent arrivals before executing it.  Zero disables the wait
        (every wave departs immediately with whatever is pending).
    jobs:
        Whole-query process parallelism passed to ``query_batch`` for each
        wave (``None`` = serial batch execution).
    seed:
        Seed of the RNG used for the randomized hot-key spread; fixed by
        default so tests and benchmarks see a reproducible shuffle
        sequence.

    One controller guards one routing slot (see
    :class:`repro.service.router.DatasetRouter`); requests for every
    dataset of that slot flow through the same pending queue, and a wave
    may mix datasets — it is grouped per service before execution.
    """

    def __init__(
        self,
        *,
        wave_size: int = 16,
        wave_window_s: float = 0.002,
        jobs: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if wave_size < 1:
            raise AlgorithmError(f"wave_size must be >= 1, got {wave_size}")
        if wave_window_s < 0:
            raise AlgorithmError(
                f"wave_window_s must be >= 0, got {wave_window_s}"
            )
        self.wave_size = int(wave_size)
        self.wave_window_s = float(wave_window_s)
        self.jobs = jobs
        self._rng = random.Random(seed)
        self._cond = threading.Condition()
        self._flights: Dict[object, _Flight] = {}
        self._pending: List[_Flight] = []
        self._wave_active = False
        #: requests admitted (including coalesced duplicates)
        self.admitted = 0
        #: concurrent duplicates that attached to an existing flight
        self.coalesced = 0
        #: waves executed / total distinct jobs they carried
        self.waves = 0
        self.wave_jobs = 0
        #: randomized hot-key spreads (pending exceeded one wave)
        self.spread_shuffles = 0

    # ------------------------------------------------------------------ API
    def submit(
        self,
        service,
        dataset_id: str,
        focal,
        *,
        tau: int = 0,
        algorithm: Optional[str] = None,
        engine: Optional[str] = None,
        timeout: Optional[float] = None,
        use_cache: bool = True,
        tracer=None,
        **options,
    ):
        """Admit one query; block until its flight lands; return the result.

        Exceptions raised by the computation (validation errors, timeouts,
        worker crashes) propagate to *every* request coalesced onto the
        failing flight.

        ``tracer`` (optional, see :mod:`repro.obs.trace`) records the
        admission spans of this request.  It is deliberately *not* part
        of the flight key, and a traced request coalescing onto an
        untraced flight still records its own submit span — the trace
        then shows the wait without the computation, which is exactly
        what happened from that request's point of view.
        """
        algorithm = algorithm or service.algorithm
        engine = engine or service.engine
        key = (
            dataset_id,
            query_key(focal, int(tau), algorithm, engine, options),
        )
        handle = (
            tracer.begin("admission.submit") if tracer is not None else None
        )
        coalesced = False
        try:
            with self._cond:
                self.admitted += 1
                flight = self._flights.get(key)
                if flight is not None:
                    self.coalesced += 1
                    coalesced = True
                else:
                    flight = _Flight(
                        key, service, focal, int(tau), algorithm, engine,
                        dict(options), timeout, use_cache,
                        tracer=tracer,
                        ctx=tracer.context() if tracer is not None else None,
                    )
                    self._flights[key] = flight
                    self._pending.append(flight)
                    self._cond.notify_all()
            return self._await(flight)
        finally:
            if handle is not None:
                tracer.finish(handle, coalesced=coalesced)

    def stats(self) -> Dict[str, int]:
        """Admission counters (see the attribute docs)."""
        with self._cond:
            return {
                "admitted": self.admitted,
                "coalesced": self.coalesced,
                "waves": self.waves,
                "wave_jobs": self.wave_jobs,
                "spread_shuffles": self.spread_shuffles,
                "in_flight": len(self._flights),
            }

    # ------------------------------------------------------------ mechanics
    def _await(self, flight: _Flight):
        """Wait for ``flight`` to land, leading waves whenever one is idle.

        Every parked thread is a potential leader: if no wave is running
        and work is pending, the first to notice takes leadership, so
        progress never depends on a dedicated dispatcher being scheduled.
        """
        while True:
            wave: Optional[List[_Flight]] = None
            with self._cond:
                while True:
                    if flight.done:
                        if flight.error is not None:
                            raise flight.error
                        return flight.result, flight.cache_hit
                    if self._pending and not self._wave_active:
                        self._wave_active = True
                        wave = self._collect_wave_locked()
                        break
                    self._cond.wait(0.05)
            # Leader path: execute outside the lock, then re-park.
            try:
                self._run_wave(wave)
            finally:
                with self._cond:
                    self._wave_active = False
                    self._cond.notify_all()

    def _collect_wave_locked(self) -> List[_Flight]:
        """Hold the wave open briefly, then slice one wave off the queue."""
        if self.wave_window_s > 0:
            door_closes = time.monotonic() + self.wave_window_s
            while len(self._pending) < self.wave_size:
                remaining = door_closes - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
        if len(self._pending) > self.wave_size:
            # MRV-style randomized spread: shuffle before slicing so a hot
            # key's backlog does not monopolise consecutive waves.
            self._rng.shuffle(self._pending)
            self.spread_shuffles += 1
        wave = self._pending[: self.wave_size]
        del self._pending[: self.wave_size]
        self.waves += 1
        self.wave_jobs += len(wave)
        return wave

    def _run_wave(self, wave: List[_Flight]) -> None:
        """Execute one wave as per-service ``query_batch`` calls.

        Jobs are grouped by (service, query parameters): each group is one
        batch, so its answers are bit-identical to standalone computation
        by the batch path's existing contract.  A failing group fails only
        its own flights.
        """
        groups: Dict[Tuple, List[_Flight]] = {}
        for job in wave:
            group = (
                id(job.service), job.tau, job.algorithm, job.engine,
                tuple(sorted(job.options.items())), job.timeout,
                job.use_cache,
                # A traced flight gets its own batch: the tracer threads
                # through query_batch, and mixing traced and untraced
                # flights would attribute the whole group's spans to one
                # request's trace.  id(None) groups untraced flights as
                # before.
                id(job.tracer),
            )
            groups.setdefault(group, []).append(job)
        for jobs in groups.values():
            service = jobs[0].service
            lead = jobs[0]
            wave_handle = None
            if lead.tracer is not None:
                # The leader runs on some waiter's thread; parent the wave
                # span explicitly under the opening request's submit span.
                wave_handle = lead.tracer.begin(
                    "admission.wave", parent=lead.ctx
                )
            try:
                # Probe which keys are already cached *before* the batch so
                # every answer can report hit/computed truthfully.
                hits = [
                    lead.use_cache and job.key[1] in service.cache
                    for job in jobs
                ]
                results = service.query_batch(
                    [job.focal for job in jobs],
                    tau=lead.tau,
                    algorithm=lead.algorithm,
                    engine=lead.engine,
                    jobs=self.jobs,
                    use_cache=lead.use_cache,
                    timeout=lead.timeout,
                    tracer=lead.tracer,
                    **lead.options,
                )
            except BaseException as exc:  # propagate to every waiter
                self._land(jobs, error=exc)
            else:
                for job, result, hit in zip(jobs, results, hits):
                    job.result = result
                    job.cache_hit = bool(hit)
                self._land(jobs)
            finally:
                if wave_handle is not None:
                    lead.tracer.finish(wave_handle, wave_jobs=len(jobs))

    def _land(self, jobs: List[_Flight], error: Optional[BaseException] = None) -> None:
        with self._cond:
            for job in jobs:
                job.error = error
                job.done = True
                self._flights.pop(job.key, None)
            self._cond.notify_all()
