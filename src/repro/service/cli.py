"""Command-line front end of the MaxRank service.

Three subcommands drive the service end-to-end (``python -m repro.service``):

``build``
    Generate (or load) a dataset, build the R*-tree once and persist the
    snapshot — the expensive cold-start paid ahead of serving time::

        python -m repro.service build --dist IND --n 400 --d 3 --out idx.rprs
        python -m repro.service build --real NBA --sample 200 --out nba.rprs

``query``
    Load a snapshot and answer a batch of queries (explicit focal indices,
    or a reproducible auto-selected batch with ``--batch``), optionally in
    parallel (``--jobs``) and optionally re-checking every unique answer
    against a from-scratch standalone ``maxrank()`` run
    (``--verify-standalone``, the CI smoke gate)::

        python -m repro.service query --snapshot idx.rprs --focal 3 --focal 17
        python -m repro.service query --snapshot idx.rprs --batch 16 --jobs 2 \
            --tau 1 --verify-standalone

``serve``
    A long-running loop reading JSON queries from stdin, one per line
    (``{"focal": 5, "tau": 1}`` or ``{"focal": [0.4, 0.3, 0.3]}``), writing
    JSON answers to stdout — the minimal shape of a network service without
    binding the library to any transport::

        printf '{"focal": 5}\n{"focal": 5}\n' | \
            python -m repro.service serve --snapshot idx.rprs
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

import numpy as np

from ..core.maxrank import maxrank
from ..data.generators import generate
from ..data.realistic import load_real_dataset
from ..errors import ReproError
from ..stats import CostCounters
from .core import MaxRankService, result_fingerprint

__all__ = ["main"]


def _build(args: argparse.Namespace) -> int:
    if args.real:
        dataset = load_real_dataset(args.real, n=args.sample, seed=args.seed)
    else:
        dataset = generate(args.dist, args.n, args.d, seed=args.seed)
    start = time.perf_counter()
    service = MaxRankService(dataset)
    service.save_snapshot(args.out)
    elapsed = time.perf_counter() - start
    print(
        f"built {dataset.name} (n={dataset.n}, d={dataset.d}) and wrote "
        f"snapshot to {args.out} in {elapsed:.2f}s "
        f"(tree build {service.tree_build_seconds:.2f}s)"
    )
    service.close()
    return 0


def _select_focals(service: MaxRankService, args: argparse.Namespace) -> List[int]:
    if args.focal:
        return [int(f) for f in args.focal]
    from ..experiments.harness import select_focal_records

    unique = args.unique or max(1, args.batch // 2)
    picks = select_focal_records(service.dataset, unique, seed=args.seed)
    # Cycle the unique picks to the requested batch size so the batch
    # exercises the result cache the way repeated user traffic would.
    return [picks[i % len(picks)] for i in range(args.batch)]


def _query(args: argparse.Namespace) -> int:
    with MaxRankService.from_snapshot(args.snapshot, cache_size=args.cache_size) as service:
        focals = _select_focals(service, args)
        start = time.perf_counter()
        results = service.query_batch(focals, tau=args.tau, jobs=args.jobs)
        wall = time.perf_counter() - start
        rows = []
        for focal, result in zip(focals, results):
            rows.append(
                {
                    "focal": int(focal),
                    "k_star": result.k_star,
                    "regions": result.region_count,
                    "dominators": result.dominator_count,
                    "tau": result.tau,
                }
            )
        stats = service.stats()
        if args.json:
            print(json.dumps({"queries": rows, "wall_s": wall, "stats": stats}))
        else:
            for row in rows:
                print(
                    f"focal={row['focal']:>6}  k*={row['k_star']:>5}  "
                    f"|T|={row['regions']:>4}  dominators={row['dominators']}"
                )
            print(
                f"batch of {len(focals)} in {wall:.3f}s — computed "
                f"{stats['queries_computed']}, cache hits {stats['cache_hits']}, "
                f"skyline reuse {stats['skyline_reused']}"
            )
        if args.verify_standalone:
            return _verify_standalone(service, focals, results, args)
    return 0


def _verify_standalone(
    service: MaxRankService,
    focals: List[int],
    results,
    args: argparse.Namespace,
) -> int:
    """Re-run every unique query standalone (fresh tree) and compare bit-exactly."""
    checked = {}
    failures = 0
    for focal, served in zip(focals, results):
        if focal in checked:
            reference = checked[focal]
        else:
            counters = CostCounters()
            reference = maxrank(
                service.dataset, int(focal), tau=args.tau, counters=counters
            )
            checked[focal] = reference
        if result_fingerprint(served) != result_fingerprint(reference):
            print(f"MISMATCH: focal {focal} differs from standalone maxrank()",
                  file=sys.stderr)
            failures += 1
    label = "jobs=%s" % (args.jobs or 1)
    if failures:
        print(f"verify-standalone: {failures} mismatches ({label})", file=sys.stderr)
        return 1
    print(
        f"verify-standalone: all {len(checked)} unique queries bit-identical "
        f"to standalone maxrank() ({label}, batch {len(focals)})"
    )
    return 0


def _serve(args: argparse.Namespace) -> int:
    with MaxRankService.from_snapshot(args.snapshot, cache_size=args.cache_size) as service:
        meta = {
            "ready": True,
            "dataset": service.dataset.name,
            "n": service.dataset.n,
            "d": service.dataset.d,
        }
        print(json.dumps(meta), flush=True)
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError(
                        "request must be a JSON object, e.g. {\"focal\": 5}"
                    )
                if request.get("cmd") == "stats":
                    print(json.dumps(service.stats()), flush=True)
                    continue
                if request.get("cmd") == "quit":
                    break
                focal = request["focal"]
                if isinstance(focal, list):
                    focal = np.asarray(focal, dtype=float)
                hits_before = service.cache.hits
                result = service.query(focal, tau=int(request.get("tau", 0)))
                answer = {
                    "k_star": result.k_star,
                    "regions": result.region_count,
                    "dominators": result.dominator_count,
                    "tau": result.tau,
                    "cache_hit": service.cache.hits > hits_before,
                    "representative": [
                        round(float(w), 9)
                        for w in result.regions[0].representative_query()
                    ]
                    if result.regions
                    else None,
                }
                print(json.dumps(answer), flush=True)
            except (ReproError, KeyError, ValueError, TypeError) as exc:
                print(json.dumps({"error": str(exc)}), flush=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=__doc__.split("\n", 1)[0],
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="build a dataset snapshot")
    build.add_argument("--dist", default="IND", choices=("IND", "COR", "ANTI"),
                       help="synthetic distribution (default IND)")
    build.add_argument("--n", type=int, default=400, help="records (default 400)")
    build.add_argument("--d", type=int, default=3, help="attributes (default 3)")
    build.add_argument("--real", default=None, metavar="NAME",
                       help="use a simulated real dataset (NBA, HOTEL, ...) "
                            "instead of a synthetic one")
    build.add_argument("--sample", type=int, default=None, metavar="N",
                       help="sample size for --real datasets")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--out", required=True, help="snapshot output path")
    build.set_defaults(handler=_build)

    query = commands.add_parser("query", help="answer a batch from a snapshot")
    query.add_argument("--snapshot", required=True)
    query.add_argument("--focal", action="append", type=int, metavar="IDX",
                       help="explicit focal record index (repeatable)")
    query.add_argument("--batch", type=int, default=16,
                       help="auto-selected batch size when no --focal is given "
                            "(default 16)")
    query.add_argument("--unique", type=int, default=None,
                       help="unique focals in the auto batch (default batch/2, "
                            "so the batch exercises the result cache)")
    query.add_argument("--tau", type=int, default=0)
    query.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="whole-query process parallelism for the batch")
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--cache-size", type=int, default=256)
    query.add_argument("--json", action="store_true", help="machine-readable output")
    query.add_argument("--verify-standalone", action="store_true",
                       help="re-run every unique query standalone and require "
                            "bit-identical answers (CI smoke gate)")
    query.set_defaults(handler=_query)

    serve = commands.add_parser("serve", help="serve JSON queries from stdin")
    serve.add_argument("--snapshot", required=True)
    serve.add_argument("--cache-size", type=int, default=256)
    serve.set_defaults(handler=_serve)

    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
