"""Command-line front end of the MaxRank service.

Three subcommands drive the service end-to-end (``python -m repro.service``):

``build``
    Generate (or load) a dataset, build the R*-tree once and persist the
    snapshot — the expensive cold-start paid ahead of serving time::

        python -m repro.service build --dist IND --n 400 --d 3 --out idx.rprs
        python -m repro.service build --real NBA --sample 200 --out nba.rprs

``query``
    Load a snapshot and answer a batch of queries (explicit focal indices,
    or a reproducible auto-selected batch with ``--batch``), optionally in
    parallel (``--jobs``) and optionally re-checking every unique answer
    against a from-scratch standalone ``maxrank()`` run
    (``--verify-standalone``, the CI smoke gate)::

        python -m repro.service query --snapshot idx.rprs --focal 3 --focal 17
        python -m repro.service query --snapshot idx.rprs --batch 16 --jobs 2 \
            --tau 1 --verify-standalone

``insert`` / ``delete``
    Mutate a snapshot in place (or into ``--out``): load, apply one
    incremental insert / delete (R*-tree maintained in place, no rebuild)
    and re-save, reporting the new size and the scoped cache-invalidation
    outcome as JSON::

        python -m repro.service insert --snapshot idx.rprs --record 0.4 0.2 0.7
        python -m repro.service delete --snapshot idx.rprs --record-id 17

``serve``
    A long-running loop reading JSON queries from stdin, one per line
    (``{"focal": 5, "tau": 1}`` or ``{"focal": [0.4, 0.3, 0.3]}``), writing
    JSON answers to stdout — the minimal shape of a network service without
    binding the library to any transport.  Mutation requests ride the same
    loop: ``{"cmd": "insert", "record": [0.4, 0.2, 0.7]}`` and
    ``{"cmd": "delete", "record_id": 17}`` mutate the served dataset
    between queries and answer with the new size plus the scoped
    cache-invalidation counters::

        printf '{"focal": 5}\n{"focal": 5}\n' | \
            python -m repro.service serve --snapshot idx.rprs

    With ``--listen HOST:PORT`` the same protocol is served over TCP to
    many concurrent clients: requests route through a consistent-hash
    sharded front (``--shard NAME=PATH``, repeatable; requests address a
    shard with ``{"dataset": "name", ...}``) and an admission layer that
    coalesces duplicate in-flight queries (single-flight) and batches
    distinct concurrent ones into ``query_batch`` waves::

        python -m repro.service serve --listen 127.0.0.1:7117 \
            --shard nba=nba.rprs --shard hotel=hotel.rprs

    Introspection verbs ride the same loop in both modes:
    ``{"cmd": "stats"}`` returns the raw per-layer counters,
    ``{"cmd": "metrics"}`` one consolidated serving snapshot plus the
    metrics registry, and ``{"cmd": "trace"}`` answers the query *and*
    attaches its complete span tree (render with ``tools/trace_view.py``).
    ``--metrics-port`` additionally exposes the registry in Prometheus
    text format over HTTP (``GET /metrics``), and
    ``--slow-query-threshold S`` traces every query, dumping the span
    tree of any that take ``>= S`` seconds as one structured log line.

Failure contract (see ``docs/ARCHITECTURE.md``, *Failure model*): every
command exits non-zero with a one-line ``error: {"code": ..., "message":
...}`` diagnostic on stderr — exit code 3 for a query that exceeded its
``--timeout`` budget, 2 for any other :class:`~repro.errors.ReproError`.
``serve`` isolates requests: a malformed or failing request answers
``{"error": {"code": ..., "message": ...}}`` on its own line and the loop
keeps serving; SIGTERM / SIGINT drain gracefully (finish the in-flight
request, emit a ``{"shutdown": ...}`` line, exit 0).
"""

from __future__ import annotations

import argparse
import io
import json
import os
import selectors
import signal
import sys
import threading
import time
from typing import List, Optional

import numpy as np

from ..core.maxrank import maxrank
from ..data.generators import generate
from ..data.realistic import load_real_dataset
from ..errors import (
    AlgorithmError,
    InvalidRecordError,
    QueryTimeoutError,
    ReproError,
    SnapshotError,
    WorkerCrashError,
)
from ..obs import MetricsRegistry, Tracer, configure_logging, get_logger
from ..obs.snapshot import install_serving_collector, serving_snapshot
from ..stats import CostCounters
from .core import MaxRankService, result_fingerprint

__all__ = ["main", "error_code"]


def error_code(exc: BaseException) -> str:
    """Stable machine-readable code for an error (CLI + serve contract).

    ``timeout`` — deadline expiry; ``snapshot`` — unreadable / corrupt
    snapshot; ``worker_crash`` — crash recovery exhausted its retries;
    ``bad_request`` — malformed input (validation, JSON shape, unknown
    names); ``internal`` — any other library error.
    """
    if isinstance(exc, QueryTimeoutError):
        return "timeout"
    if isinstance(exc, SnapshotError):
        return "snapshot"
    if isinstance(exc, WorkerCrashError):
        return "worker_crash"
    if isinstance(exc, (InvalidRecordError, AlgorithmError,
                        KeyError, ValueError, TypeError)):
        return "bad_request"
    return "internal"


def _error_payload(exc: BaseException) -> dict:
    message = f"missing field {exc}" if isinstance(exc, KeyError) else str(exc)
    return {"code": error_code(exc), "message": message}


def _build(args: argparse.Namespace) -> int:
    if args.real:
        dataset = load_real_dataset(args.real, n=args.sample, seed=args.seed)
    else:
        dataset = generate(args.dist, args.n, args.d, seed=args.seed)
    start = time.perf_counter()
    service = MaxRankService(dataset)
    service.save_snapshot(args.out)
    elapsed = time.perf_counter() - start
    print(
        f"built {dataset.name} (n={dataset.n}, d={dataset.d}) and wrote "
        f"snapshot to {args.out} in {elapsed:.2f}s "
        f"(tree build {service.tree_build_seconds:.2f}s)"
    )
    service.close()
    return 0


def _select_focals(service: MaxRankService, args: argparse.Namespace) -> List[int]:
    if args.focal:
        return [int(f) for f in args.focal]
    from ..experiments.harness import select_focal_records

    unique = args.unique or max(1, args.batch // 2)
    picks = select_focal_records(service.dataset, unique, seed=args.seed)
    # Cycle the unique picks to the requested batch size so the batch
    # exercises the result cache the way repeated user traffic would.
    return [picks[i % len(picks)] for i in range(args.batch)]


def _query(args: argparse.Namespace) -> int:
    with MaxRankService.from_snapshot(args.snapshot, cache_size=args.cache_size) as service:
        focals = _select_focals(service, args)
        start = time.perf_counter()
        results = service.query_batch(
            focals, tau=args.tau, jobs=args.jobs, timeout=args.timeout
        )
        wall = time.perf_counter() - start
        rows = []
        for focal, result in zip(focals, results):
            rows.append(
                {
                    "focal": int(focal),
                    "k_star": result.k_star,
                    "regions": result.region_count,
                    "dominators": result.dominator_count,
                    "tau": result.tau,
                }
            )
        stats = service.stats()
        if args.json:
            print(json.dumps({"queries": rows, "wall_s": wall, "stats": stats}))
        else:
            for row in rows:
                print(
                    f"focal={row['focal']:>6}  k*={row['k_star']:>5}  "
                    f"|T|={row['regions']:>4}  dominators={row['dominators']}"
                )
            print(
                f"batch of {len(focals)} in {wall:.3f}s — computed "
                f"{stats['queries_computed']}, cache hits {stats['cache_hits']}, "
                f"skyline reuse {stats['skyline_reused']}"
            )
        if args.verify_standalone:
            return _verify_standalone(service, focals, results, args)
    return 0


def _verify_standalone(
    service: MaxRankService,
    focals: List[int],
    results,
    args: argparse.Namespace,
) -> int:
    """Re-run every unique query standalone (fresh tree) and compare bit-exactly."""
    checked = {}
    failures = 0
    for focal, served in zip(focals, results):
        if focal in checked:
            reference = checked[focal]
        else:
            counters = CostCounters()
            reference = maxrank(
                service.dataset, int(focal), tau=args.tau, counters=counters
            )
            checked[focal] = reference
        if result_fingerprint(served) != result_fingerprint(reference):
            print(f"MISMATCH: focal {focal} differs from standalone maxrank()",
                  file=sys.stderr)
            failures += 1
    label = "jobs=%s" % (args.jobs or 1)
    if failures:
        print(f"verify-standalone: {failures} mismatches ({label})", file=sys.stderr)
        return 1
    print(
        f"verify-standalone: all {len(checked)} unique queries bit-identical "
        f"to standalone maxrank() ({label}, batch {len(focals)})"
    )
    return 0


def _mutation_summary(service: MaxRankService, action: str, detail: dict) -> dict:
    """JSON summary shared by the mutate subcommands and serve requests."""
    summary = {action: True, "n": service.dataset.n}
    summary.update(detail)
    summary["invalidated"] = service.cache.invalidated
    summary["retained"] = service.cache.retained
    return summary


def _insert(args: argparse.Namespace) -> int:
    with MaxRankService.from_snapshot(args.snapshot) as service:
        new_id = service.insert(np.asarray(args.record, dtype=float))
        service.save_snapshot(args.out or args.snapshot)
        print(json.dumps(_mutation_summary(service, "inserted", {"record_id": new_id})))
    return 0


def _delete(args: argparse.Namespace) -> int:
    with MaxRankService.from_snapshot(args.snapshot) as service:
        point = service.delete(args.record_id)
        service.save_snapshot(args.out or args.snapshot)
        print(json.dumps(_mutation_summary(
            service, "deleted",
            {"record_id": args.record_id,
             "record": [round(float(v), 9) for v in point]},
        )))
    return 0


def _answer_payload(result, cache_hit: bool) -> dict:
    """The JSON answer of one query (shared by stdin and TCP serving)."""
    return {
        "k_star": result.k_star,
        "regions": result.region_count,
        "dominators": result.dominator_count,
        "tau": result.tau,
        "cache_hit": bool(cache_hit),
        "representative": [
            round(float(w), 9)
            for w in result.regions[0].representative_query()
        ]
        if result.regions
        else None,
    }


def _parse_focal(request: dict):
    focal = request["focal"]
    if isinstance(focal, list):
        focal = np.asarray(focal, dtype=float)
    return focal


class _ServeObservability:
    """Per-serve-loop observability: the metrics registry + slow-query log.

    One instance per serve loop, shared by the backend, the error paths
    and the optional Prometheus HTTP endpoint.  Every answered query
    observes one sample of the per-shard latency histogram; when a slow
    threshold is set, every query runs traced so a slow one can dump its
    complete span tree as a single structured log line.
    """

    def __init__(self, slow_threshold: Optional[float] = None):
        self.registry = MetricsRegistry()
        self.slow_threshold = slow_threshold
        self.logger = get_logger("repro.serve")
        self.slow_queries = 0
        self._lock = threading.Lock()

    def observe_query(self, shard: str, elapsed: float) -> None:
        self.registry.counter(
            "repro_requests_total",
            "Queries answered, by shard", shard=shard,
        ).inc()
        self.registry.histogram(
            "repro_query_latency_seconds",
            "Wall-clock latency of answered queries, by shard", shard=shard,
        ).observe(elapsed)

    def observe_error(self, code: str) -> None:
        self.registry.counter(
            "repro_request_errors_total",
            "Requests answered with a structured error, by code", code=code,
        ).inc()

    def maybe_log_slow(self, tracer: Tracer, elapsed: float,
                       request: dict, shard: str) -> None:
        if self.slow_threshold is None or elapsed < self.slow_threshold:
            return
        with self._lock:
            self.slow_queries += 1
        self.logger.warning(
            "slow query",
            extra={
                "event": "slow_query",
                "shard": shard,
                "elapsed_s": round(elapsed, 6),
                "threshold_s": self.slow_threshold,
                "request": {k: v for k, v in request.items() if k != "cmd"},
                "trace": tracer.export(),
            },
        )


def _start_metrics_http(registry: MetricsRegistry, port: int):
    """Expose ``registry`` on ``GET /metrics`` (Prometheus text format).

    Binds loopback only — metrics are host-local introspection, not part
    of the serving protocol.  Returns the started server; its kernel-
    picked port (``--metrics-port 0``) is in ``server_address``.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - http.server API
            if self.path.rstrip("/") not in ("", "/metrics"):
                self.send_error(404)
                return
            body = registry.render_prometheus().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format, *args):  # scrapes are not log-worthy
            pass

    server = ThreadingHTTPServer(("127.0.0.1", port), Handler)
    threading.Thread(
        target=server.serve_forever, name="metrics-http", daemon=True
    ).start()
    return server


class _ObservedBackend:
    """The query/trace/metrics surface shared by both serve backends.

    Subclasses implement ``_query(request, tracer) -> (payload, shard)``
    and ``_serving_view()``; this base adds the wall-clock timing, the
    per-shard latency metrics, the slow-query log, and the ``trace`` /
    ``metrics`` protocol verbs on top.
    """

    obs: _ServeObservability

    def query(self, request: dict) -> dict:
        return self._observed(request, want_trace=False)

    def trace(self, request: dict) -> dict:
        """Answer the query and attach its complete span tree."""
        return self._observed(request, want_trace=True)

    def metrics(self, request: dict) -> dict:
        """One coherent snapshot: consolidated stats + the registry."""
        return {
            "serving": self._serving_view(),
            "metrics": self.obs.registry.snapshot(),
            "slow_queries": self.obs.slow_queries,
        }

    def _observed(self, request: dict, want_trace: bool) -> dict:
        obs = self.obs
        traced = want_trace or obs.slow_threshold is not None
        tracer = Tracer() if traced else None
        start = time.perf_counter()
        if tracer is not None:
            handle = tracer.begin("request")
            try:
                payload, shard = self._query(request, tracer)
            finally:
                tracer.finish(handle)
        else:
            payload, shard = self._query(request, None)
        elapsed = time.perf_counter() - start
        obs.observe_query(shard, elapsed)
        if tracer is not None:
            obs.maybe_log_slow(tracer, elapsed, request, shard)
        if want_trace:
            payload["trace"] = tracer.export()
        return payload


class _ServiceBackend(_ObservedBackend):
    """Serve-protocol backend over one :class:`MaxRankService` (stdin mode)."""

    def __init__(self, service: MaxRankService, default_timeout: Optional[float],
                 obs: Optional[_ServeObservability] = None):
        self.service = service
        self.default_timeout = default_timeout
        self.obs = obs if obs is not None else _ServeObservability()
        self.served = 0

    def _query(self, request: dict, tracer: Optional[Tracer]) -> tuple:
        hits_before = self.service.cache.hits
        result = self.service.query(
            _parse_focal(request),
            tau=int(request.get("tau", 0)),
            timeout=request.get("timeout", self.default_timeout),
            tracer=tracer,
        )
        self.served += 1
        payload = _answer_payload(result, self.service.cache.hits > hits_before)
        return payload, self.service.dataset.name

    def _serving_view(self) -> dict:
        return self.service.stats()

    def insert(self, request: dict) -> dict:
        new_id = self.service.insert(np.asarray(request["record"], dtype=float))
        return _mutation_summary(self.service, "inserted", {"record_id": new_id})

    def delete(self, request: dict) -> dict:
        record_id = request["record_id"]
        self.service.delete(record_id)
        return _mutation_summary(
            self.service, "deleted", {"record_id": int(record_id)}
        )

    def stats(self, request: dict) -> dict:
        return self.service.stats()


class _RouterBackend(_ObservedBackend):
    """Serve-protocol backend over a :class:`DatasetRouter` (network mode).

    Identical request schema plus an optional ``"dataset"`` field naming
    the shard; it may be omitted when the router serves exactly one.
    """

    def __init__(self, router, default_timeout: Optional[float],
                 obs: Optional[_ServeObservability] = None):
        self.router = router
        self.default_timeout = default_timeout
        self.obs = obs if obs is not None else _ServeObservability()
        #: transport server, attached by ``_serve_listen`` once bound, so
        #: the consolidated snapshot can include connection totals
        self.server = None
        self.served = 0
        self._served_lock = threading.Lock()

    def _dataset(self, request: dict) -> str:
        dataset = request.get("dataset")
        if dataset is not None:
            return str(dataset)
        ids = self.router.dataset_ids
        if len(ids) == 1:
            return ids[0]
        raise ValueError(
            "request must name a dataset "
            f"(\"dataset\": ...); this server has: {', '.join(ids)}"
        )

    def _query(self, request: dict, tracer: Optional[Tracer]) -> tuple:
        dataset = self._dataset(request)
        result, cache_hit = self.router.query(
            dataset,
            _parse_focal(request),
            tau=int(request.get("tau", 0)),
            timeout=request.get("timeout", self.default_timeout),
            tracer=tracer,
        )
        with self._served_lock:
            self.served += 1
        return _answer_payload(result, cache_hit), dataset

    def _serving_view(self) -> dict:
        return serving_snapshot(self.router, self.server)

    def insert(self, request: dict) -> dict:
        dataset = self._dataset(request)
        new_id = self.router.insert(
            dataset, np.asarray(request["record"], dtype=float)
        )
        return _mutation_summary(
            self.router.service(dataset), "inserted",
            {"dataset": dataset, "record_id": new_id},
        )

    def delete(self, request: dict) -> dict:
        dataset = self._dataset(request)
        record_id = request["record_id"]
        self.router.delete(dataset, record_id)
        return _mutation_summary(
            self.router.service(dataset), "deleted",
            {"dataset": dataset, "record_id": int(record_id)},
        )

    def stats(self, request: dict) -> dict:
        return self.router.stats()


def _handle_request(backend, request) -> tuple:
    """Dispatch one parsed request; returns ``(payload or None, quit)``."""
    if not isinstance(request, dict):
        raise ValueError(
            "request must be a JSON object, e.g. {\"focal\": 5}"
        )
    cmd = request.get("cmd")
    if cmd == "stats":
        return backend.stats(request), False
    if cmd == "metrics":
        return backend.metrics(request), False
    if cmd == "trace":
        return backend.trace(request), False
    if cmd == "quit":
        return None, True
    if cmd == "insert":
        return backend.insert(request), False
    if cmd == "delete":
        return backend.delete(request), False
    return backend.query(request), False


def _request_lines(should_stop):
    """Yield stdin lines, polling so a drain signal is honoured promptly.

    A plain ``for line in sys.stdin`` blocks in a buffered read that a
    signal handler cannot interrupt (PEP 475 restarts it), so a SIGTERM
    would only take effect at the *next* request.  When stdin has a real
    file descriptor we poll it with a selector and do our own line
    splitting; otherwise (in-process tests feeding a ``StringIO``) we fall
    back to plain iteration with a per-line stop check.
    """
    try:
        fd = sys.stdin.fileno()
    except (AttributeError, OSError, ValueError, io.UnsupportedOperation):
        for line in sys.stdin:
            if should_stop():
                return
            yield line
        return
    sel = selectors.DefaultSelector()
    sel.register(fd, selectors.EVENT_READ)
    buffer = b""
    try:
        while not should_stop():
            if not sel.select(0.2):
                continue
            chunk = os.read(fd, 65536)
            if not chunk:
                if buffer.strip():
                    yield buffer.decode("utf-8", "replace")
                return
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                yield line.decode("utf-8", "replace")
                if should_stop():
                    return
    finally:
        sel.close()


def _serve_stdin(args: argparse.Namespace) -> int:
    draining = {"flag": False, "signal": None}

    def _drain(signum, frame):
        draining["flag"] = True
        draining["signal"] = signal.Signals(signum).name

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _drain)
        except (ValueError, OSError):  # not the main thread / unsupported
            pass

    obs = _ServeObservability(args.slow_query_threshold)
    metrics_server = None
    if args.metrics_port is not None:
        metrics_server = _start_metrics_http(obs.registry, args.metrics_port)
    try:
        with MaxRankService.from_snapshot(
            args.snapshot, cache_size=args.cache_size
        ) as service:
            backend = _ServiceBackend(service, args.timeout, obs)
            meta = {
                "ready": True,
                "dataset": service.dataset.name,
                "n": service.dataset.n,
                "d": service.dataset.d,
            }
            if metrics_server is not None:
                meta["metrics_port"] = metrics_server.server_address[1]
            print(json.dumps(meta), flush=True)
            for line in _request_lines(lambda: draining["flag"]):
                line = line.strip()
                if not line:
                    continue
                # Request isolation: any failure answers a structured error
                # on the request's own line and the loop keeps serving.
                try:
                    payload, quit_ = _handle_request(backend, json.loads(line))
                    if quit_:
                        break
                    print(json.dumps(payload), flush=True)
                except (ReproError, KeyError, ValueError, TypeError) as exc:
                    payload = _error_payload(exc)
                    obs.observe_error(payload["code"])
                    print(json.dumps({"error": payload}), flush=True)
            shutdown = {
                "shutdown": True,
                "reason": draining["signal"] or "eof",
                "queries_answered": backend.served,
            }
            print(json.dumps(shutdown), flush=True)
    finally:
        if metrics_server is not None:
            metrics_server.shutdown()
            metrics_server.server_close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0


def _parse_shards(args: argparse.Namespace) -> dict:
    """Build the ``dataset id -> snapshot path`` table from the CLI flags."""
    from pathlib import Path

    shards = {}
    if args.snapshot:
        shards[Path(args.snapshot).stem] = args.snapshot
    for spec in args.shard or ():
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise AlgorithmError(
                f"invalid --shard {spec!r}; expected NAME=SNAPSHOT_PATH"
            )
        if name in shards:
            raise AlgorithmError(f"duplicate shard name {name!r}")
        shards[name] = path
    if not shards:
        raise AlgorithmError("serve --listen needs --snapshot or --shard")
    return shards


def _serve_listen(args: argparse.Namespace) -> int:
    """The network front: transport -> router -> admission -> services."""
    from .router import DatasetRouter
    from .transport import ThreadedLineServer, parse_hostport

    host, port = parse_hostport(args.listen)
    shards = _parse_shards(args)
    with DatasetRouter(
        shards,
        slots=args.slots,
        wave_size=args.wave_size,
        wave_window_s=args.wave_window,
        jobs=args.jobs,
        service_options={"cache_size": args.cache_size},
    ) as router:
        obs = _ServeObservability(args.slow_query_threshold)
        backend = _RouterBackend(router, args.timeout, obs)

        def handler(line: str):
            payload, quit_ = _handle_request(backend, json.loads(line))
            return (None if payload is None else json.dumps(payload)), quit_

        def greeting() -> str:
            return json.dumps({
                "ready": True,
                "datasets": list(router.dataset_ids),
                "slots": args.slots,
            })

        def farewell(reason: str):
            return json.dumps({
                "shutdown": True,
                "reason": reason,
                "queries_answered": backend.served,
            })

        def on_error(exc: BaseException) -> str:
            payload = _error_payload(exc)
            obs.observe_error(payload["code"])
            return json.dumps({"error": payload})

        server = ThreadedLineServer(
            host, port, handler,
            greeting=greeting, farewell=farewell, on_error=on_error,
        )
        backend.server = server
        install_serving_collector(obs.registry, router, server)
        metrics_server = None
        if args.metrics_port is not None:
            metrics_server = _start_metrics_http(obs.registry, args.metrics_port)

        def _drain(signum, frame):
            server.shutdown(signal.Signals(signum).name)

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, _drain)
            except (ValueError, OSError):  # not the main thread / unsupported
                pass
        try:
            # The bound address on stdout lets a parent process (tests, the
            # CI smoke) learn the kernel-picked port when --listen used :0.
            listening = {
                "listening": list(server.address),
                "datasets": list(router.dataset_ids),
            }
            if metrics_server is not None:
                listening["metrics_port"] = metrics_server.server_address[1]
            print(json.dumps(listening), flush=True)
            server.serve_forever()
        finally:
            if metrics_server is not None:
                metrics_server.shutdown()
                metrics_server.server_close()
            for signum, handler_ in previous.items():
                signal.signal(signum, handler_)
        print(json.dumps({
            "shutdown": True,
            "reason": server.drain_reason,
            "connections": server.connections_accepted,
            "requests": server.requests_handled,
            "queries_answered": backend.served,
            "slow_queries": obs.slow_queries,
        }), flush=True)
    return 0


def _serve(args: argparse.Namespace) -> int:
    if args.listen:
        return _serve_listen(args)
    if args.shard:
        raise AlgorithmError("--shard requires --listen (stdin mode serves "
                            "exactly the --snapshot dataset)")
    if not args.snapshot:
        raise AlgorithmError("serve needs --snapshot (or --listen with --shard)")
    return _serve_stdin(args)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=__doc__.split("\n", 1)[0],
    )
    parser.add_argument("--log-level", default="warning",
                        choices=("debug", "info", "warning", "error"),
                        help="stderr log verbosity (default warning; library "
                             "use stays quiet — only the CLI configures "
                             "logging)")
    parser.add_argument("--log-format", default="json",
                        choices=("json", "text"),
                        help="log line format (default json)")
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="build a dataset snapshot")
    build.add_argument("--dist", default="IND", choices=("IND", "COR", "ANTI"),
                       help="synthetic distribution (default IND)")
    build.add_argument("--n", type=int, default=400, help="records (default 400)")
    build.add_argument("--d", type=int, default=3, help="attributes (default 3)")
    build.add_argument("--real", default=None, metavar="NAME",
                       help="use a simulated real dataset (NBA, HOTEL, ...) "
                            "instead of a synthetic one")
    build.add_argument("--sample", type=int, default=None, metavar="N",
                       help="sample size for --real datasets")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--out", required=True, help="snapshot output path")
    build.set_defaults(handler=_build)

    query = commands.add_parser("query", help="answer a batch from a snapshot")
    query.add_argument("--snapshot", required=True)
    query.add_argument("--focal", action="append", type=int, metavar="IDX",
                       help="explicit focal record index (repeatable)")
    query.add_argument("--batch", type=int, default=16,
                       help="auto-selected batch size when no --focal is given "
                            "(default 16)")
    query.add_argument("--unique", type=int, default=None,
                       help="unique focals in the auto batch (default batch/2, "
                            "so the batch exercises the result cache)")
    query.add_argument("--tau", type=int, default=0)
    query.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="whole-query process parallelism for the batch")
    query.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="wall-clock budget in seconds shared by the whole "
                            "batch (expiry exits 3 with a structured error)")
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--cache-size", type=int, default=256)
    query.add_argument("--json", action="store_true", help="machine-readable output")
    query.add_argument("--verify-standalone", action="store_true",
                       help="re-run every unique query standalone and require "
                            "bit-identical answers (CI smoke gate)")
    query.set_defaults(handler=_query)

    insert = commands.add_parser("insert", help="insert one record into a snapshot")
    insert.add_argument("--snapshot", required=True)
    insert.add_argument("--record", required=True, type=float, nargs="+",
                        metavar="V", help="attribute values of the new record")
    insert.add_argument("--out", default=None,
                        help="output snapshot path (default: overwrite --snapshot)")
    insert.set_defaults(handler=_insert)

    delete = commands.add_parser("delete", help="delete one record from a snapshot")
    delete.add_argument("--snapshot", required=True)
    delete.add_argument("--record-id", required=True, type=int, metavar="IDX",
                        help="row index of the record to delete (later ids "
                             "shift down by one)")
    delete.add_argument("--out", default=None,
                        help="output snapshot path (default: overwrite --snapshot)")
    delete.set_defaults(handler=_delete)

    serve = commands.add_parser(
        "serve", help="serve JSON queries from stdin or over TCP (--listen)"
    )
    serve.add_argument("--snapshot", default=None,
                       help="snapshot to serve (stdin mode: required; with "
                            "--listen it becomes a shard named after the file)")
    serve.add_argument("--cache-size", type=int, default=256)
    serve.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="default per-request wall-clock budget in seconds "
                            "(a request's own \"timeout\" field overrides it)")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="serve newline-delimited JSON over TCP instead of "
                            "stdin (port 0 = kernel-picked, reported on stdout)")
    serve.add_argument("--shard", action="append", metavar="NAME=PATH",
                       help="add a dataset shard served from PATH under the id "
                            "NAME (repeatable; requires --listen); requests "
                            "pick a shard with their \"dataset\" field")
    serve.add_argument("--slots", type=int, default=2,
                       help="admission slots on the consistent-hash ring "
                            "(default 2)")
    serve.add_argument("--wave-size", type=int, default=16,
                       help="max distinct queries batched per admission wave "
                            "(default 16)")
    serve.add_argument("--wave-window", type=float, default=0.002, metavar="S",
                       help="how long a wave leader holds the wave open for "
                            "concurrent arrivals (default 0.002s)")
    serve.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="whole-query process parallelism per wave")
    serve.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                       help="expose the metrics registry in Prometheus text "
                            "format on http://127.0.0.1:PORT/metrics "
                            "(0 = kernel-picked, reported in the ready line)")
    serve.add_argument("--slow-query-threshold", type=float, default=None,
                       metavar="S",
                       help="trace every query and log the full span tree of "
                            "any that take >= S seconds (one structured log "
                            "line per slow query)")
    serve.set_defaults(handler=_serve)

    args = parser.parse_args(argv)
    configure_logging(level=args.log_level, fmt=args.log_format)
    try:
        return args.handler(args)
    except QueryTimeoutError as exc:
        print(f"error: {json.dumps(_error_payload(exc))}", file=sys.stderr)
        return 3
    except ReproError as exc:
        print(f"error: {json.dumps(_error_payload(exc))}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
