"""LRU result cache of the MaxRank service layer.

The cache maps a fully resolved query identity — focal record, iMaxRank
slack ``tau``, algorithm, within-leaf engine and any algorithm options — to
the :class:`~repro.core.result.MaxRankResult` a previous computation
produced.  Hits return the stored result object unchanged, so a cached
answer is trivially bit-identical to the original computation.

Tau-monotone reuse
------------------
iMaxRank answers are *monotone* in ``tau``: a ``tau = 4`` result reports
every arrangement cell whose order is within 4 of the optimum — the
``(k* + 4)``-skyband of cells — so the regions of any ``tau ≤ 4`` query on
the same record are the order-filtered subset of that answer, with the same
``k*`` and the same dominator count.  :meth:`QueryCache.get` exploits this
when ``tau_monotone=True``: a miss at ``tau`` is served by filtering the
tightest cached superset answer (smallest cached ``tau' > tau``).

The derived answer is *canonically* identical to a fresh computation (same
``k*``, same arrangement cells identified by ``(cell_order, outscored_by)``)
but not necessarily *bit*-identical: the quad-tree fragments cells by leaf,
and a ``tau = 4`` run may split leaves differently than a ``tau = 2`` run
would.  That is why tau-monotone reuse is an opt-in policy on the service
(``tau_policy="monotone"``) while the default (``"exact"``) only serves
exact-key hits and preserves the service's bit-identity contract.

Scoped mutation invalidation
----------------------------
When the owning service inserts or deletes a record ``r``, a cached answer
for focal ``f`` survives only if the mutation provably cannot change *any
byte* of it (the provenance-scoping pattern: derive, per cached answer, the
data region that could affect it and skip the rest).  Three cases:

* ``f`` weakly dominates ``r`` (duplicates included): ``r`` is not
  incomparable to ``f`` and contributes net zero to the dominator count, so
  it never participates in the computation at all → **retain**.
* ``r`` strictly dominates ``f``: the dominator count (hence ``k*``)
  changes → **evict**.
* ``r`` is incomparable to ``f``: retain only if some record ``d`` that is
  itself incomparable to ``f``, strictly dominates ``r`` and was *never
  materialised* by the cached computation
  (:attr:`~repro.core.result.MaxRankResult.materialised_ids`) exists.  BBS
  accepts records in decreasing coordinate-sum order and ``d`` — or an
  active member transitively dominating it — is on the progressive skyline
  whenever ``r`` would be checked, so ``r`` can never surface, the same
  half-spaces are expanded in the same order, and the reported regions and
  every dataset-derived counter are byte-identical with or without ``r``.

Answers without a provenance scope (``materialised_ids is None`` — BA, FCA,
the oracles, tau-monotone derivations) take the full-flush fallback: any
mutation evicts them.

Thread safety
-------------
Every public entry point — lookups, insertions, the mutation-invalidation
sweeps and the length/containment probes — serialises on one internal
:class:`threading.RLock`, so the LRU order, the bounded size and the
hit/miss/eviction tallies stay exact under concurrent callers (an unlocked
``OrderedDict`` corrupts under racing ``move_to_end``/``popitem``).  The
lock is held only for dict bookkeeping, never while computing a result, so
it is invisible to single-threaded users.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..core.result import MaxRankRegion, MaxRankResult
from ..errors import AlgorithmError
from ..stats import CostCounters

__all__ = ["QueryCache", "query_key", "derive_lower_tau"]

#: Cache key: (focal identity, tau, algorithm, engine, frozen options).
CacheKey = Tuple[Hashable, int, str, str, Tuple[Tuple[str, Hashable], ...]]


def _focal_identity(focal) -> Hashable:
    """Hashable identity of a focal argument (index vs. explicit vector).

    An index and the coordinates of the same record are deliberately
    *distinct* identities: equality of derived answers would hold, but the
    cache only ever serves results whose inputs were equal as given.
    """
    if isinstance(focal, (int, np.integer)):
        return ("idx", int(focal))
    vector = np.asarray(focal, dtype=float).ravel()
    return ("vec", vector.tobytes())


def query_key(
    focal,
    tau: int,
    algorithm: str,
    engine: str,
    options: Optional[Dict[str, object]] = None,
) -> CacheKey:
    """Build the cache key of one query.

    ``options`` are the algorithm tuning knobs (``split_threshold``,
    ``use_pairwise``, …); anything that can change the reported regions must
    be part of the key.  Executor/parallelism settings are *not* keyed —
    results are bit-identical across executors, which is exactly why a
    result computed at ``jobs=4`` may serve a later serial query.
    """
    frozen: List[Tuple[str, Hashable]] = []
    for name in sorted(options or {}):
        value = options[name]
        if isinstance(value, (list, np.ndarray)):
            value = tuple(np.asarray(value).ravel().tolist())
        frozen.append((name, value))
    return (_focal_identity(focal), int(tau), algorithm, engine, tuple(frozen))


def derive_lower_tau(result: MaxRankResult, tau: int) -> MaxRankResult:
    """Derive the ``tau``-answer from a cached answer with a larger slack.

    Keeps every region whose order is within ``tau`` of ``k*`` — the
    definition of the iMaxRank answer (paper, Definition 2) applied to the
    superset the cached result already materialised.  ``k*``, the dominator
    count and the minimum cell order are unchanged by construction.  The
    derived result carries fresh counters (the CPU was spent by the cached
    computation, not this call).
    """
    if tau > result.tau:
        raise AlgorithmError(
            f"cannot derive tau={tau} from a cached tau={result.tau} answer; "
            f"monotone reuse only narrows the slack"
        )
    regions = [region for region in result.regions if region.order <= result.k_star + tau]
    return MaxRankResult(
        k_star=result.k_star,
        regions=regions,
        dominator_count=result.dominator_count,
        minimum_cell_order=result.minimum_cell_order,
        tau=tau,
        algorithm=result.algorithm,
        counters=CostCounters(),
        cpu_seconds=0.0,
        focal=result.focal,
    )


def _mutation_leaves_result_intact(
    records: np.ndarray,
    result: MaxRankResult,
    point: np.ndarray,
    exclude_index: Optional[int] = None,
) -> bool:
    """True when touching ``point`` provably cannot change ``result``.

    Implements the three-way scoped-invalidation predicate of the module
    docstring.  ``records`` is the *pre-mutation* record matrix (its row
    indices align with the cached answer's ``materialised_ids``);
    ``exclude_index`` is the deleted row for delete mutations (a record
    cannot witness its own removal).
    """
    focal = result.focal
    materialised = result.materialised_ids
    if focal is None or materialised is None:
        return False  # no provenance scope: full-flush fallback
    if point.shape[0] != focal.shape[0]:
        return False
    if (focal >= point).all():
        return True   # dominated by / duplicate of the focal record
    if (point >= focal).all() and (point > focal).any():
        return False  # dominates the focal record: k* changes
    # Incomparable: look for a never-materialised incomparable dominator.
    geq = (records >= focal).all(axis=1)
    leq = (records <= focal).all(axis=1)
    witnesses = ~(geq | leq)
    witnesses &= (records >= point).all(axis=1) & (records > point).any(axis=1)
    if exclude_index is not None:
        witnesses[exclude_index] = False
    if materialised and witnesses.any():
        for record_id in materialised:
            if record_id < witnesses.shape[0]:
                witnesses[record_id] = False
    return bool(witnesses.any())


def _shift_ids_after_delete(result: MaxRankResult, removed_id: int) -> MaxRankResult:
    """Re-label record ids above ``removed_id`` in a retained cached answer.

    Record ids are dataset row indices, so deleting row ``j`` shifts every
    later id down by one.  A retained answer never references the removed
    record itself (retention implies it was never materialised), so the
    shift is a pure re-labelling: geometry, orders and representative
    points are byte-identical.  Returns a *new* result (results already
    handed to callers are never mutated).
    """
    regions = [
        MaxRankRegion(
            geometry=region.geometry,
            cell_order=region.cell_order,
            order=region.order,
            outscored_by=tuple(
                rid - 1 if rid > removed_id else rid for rid in region.outscored_by
            ),
        )
        for region in result.regions
    ]
    materialised = result.materialised_ids
    if materialised is not None:
        materialised = frozenset(
            rid - 1 if rid > removed_id else rid for rid in materialised
        )
    return MaxRankResult(
        k_star=result.k_star,
        regions=regions,
        dominator_count=result.dominator_count,
        minimum_cell_order=result.minimum_cell_order,
        tau=result.tau,
        algorithm=result.algorithm,
        counters=result.counters,
        cpu_seconds=result.cpu_seconds,
        focal=result.focal,
        materialised_ids=materialised,
    )


class QueryCache:
    """Bounded LRU cache of MaxRank results with optional tau-monotone reuse.

    Parameters
    ----------
    maxsize:
        Maximum number of cached results; the least recently used entry is
        evicted first.  ``0`` disables caching (every lookup misses).
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 0:
            raise AlgorithmError(f"cache maxsize must be >= 0, got {maxsize}")
        self.maxsize = int(maxsize)
        #: Reentrant so ``get`` may call ``put`` (tau-monotone derivation)
        #: without self-deadlocking.
        self._lock = threading.RLock()
        self._entries: "OrderedDict[CacheKey, MaxRankResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.monotone_hits = 0
        self.evictions = 0
        #: entries evicted / kept by scoped mutation invalidation
        self.invalidated = 0
        self.retained = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: CacheKey, *, tau_monotone: bool = False) -> Optional[MaxRankResult]:
        """Look up a result; ``None`` on a miss.

        With ``tau_monotone=True`` a miss falls back to the tightest cached
        answer of the same query at a larger ``tau`` and derives the
        requested answer from it (see :func:`derive_lower_tau`); the derived
        answer is also inserted so subsequent identical queries hit exactly.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
            if tau_monotone:
                focal_id, tau, algorithm, engine, options = key
                best: Optional[CacheKey] = None
                for candidate in self._entries:
                    if (
                        candidate[0] == focal_id
                        and candidate[2] == algorithm
                        and candidate[3] == engine
                        and candidate[4] == options
                        and candidate[1] > tau
                        and (best is None or candidate[1] < best[1])
                    ):
                        best = candidate
                if best is not None:
                    derived = derive_lower_tau(self._entries[best], tau)
                    self._entries.move_to_end(best)
                    self.hits += 1
                    self.monotone_hits += 1
                    self.put(key, derived)
                    return derived
            self.misses += 1
            return None

    def put(self, key: CacheKey, result: MaxRankResult) -> None:
        """Insert (or refresh) a result, evicting the LRU entry when full."""
        if self.maxsize == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every cached result (hit/miss statistics are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------- mutation invalidation
    def invalidate_for_insert(
        self, records_before: np.ndarray, point: np.ndarray
    ) -> Tuple[int, int]:
        """Scoped eviction for the insertion of ``point``.

        ``records_before`` is the record matrix *before* the insertion (the
        matrix the cached answers were computed against).  Returns the
        ``(invalidated, retained)`` pair for this mutation and accumulates
        both counters.
        """
        point = np.asarray(point, dtype=float).ravel()
        with self._lock:
            survivors: "OrderedDict[CacheKey, MaxRankResult]" = OrderedDict()
            dropped = 0
            for key, result in self._entries.items():
                if _mutation_leaves_result_intact(records_before, result, point):
                    survivors[key] = result
                else:
                    dropped += 1
            self._entries = survivors
            self.invalidated += dropped
            self.retained += len(survivors)
            return dropped, len(survivors)

    def invalidate_for_delete(
        self, records_before: np.ndarray, removed_id: int, point: np.ndarray
    ) -> Tuple[int, int]:
        """Scoped eviction for the deletion of record ``removed_id``.

        Must run *before* the dataset is renumbered (``records_before`` row
        indices align with the cached provenance scopes).  Answers whose
        focal is the removed record are always evicted; every surviving
        entry is re-keyed and re-labelled for the post-delete id space (row
        indices above ``removed_id`` shift down by one).  Returns the
        ``(invalidated, retained)`` pair and accumulates both counters.
        """
        point = np.asarray(point, dtype=float).ravel()
        removed_id = int(removed_id)
        with self._lock:
            survivors: "OrderedDict[CacheKey, MaxRankResult]" = OrderedDict()
            dropped = 0
            for key, result in self._entries.items():
                identity = key[0]
                if identity[0] == "idx" and identity[1] == removed_id:
                    dropped += 1  # the focal record itself is gone
                    continue
                if not _mutation_leaves_result_intact(
                    records_before, result, point, exclude_index=removed_id
                ):
                    dropped += 1
                    continue
                if identity[0] == "idx" and identity[1] > removed_id:
                    key = (("idx", identity[1] - 1),) + key[1:]
                survivors[key] = _shift_ids_after_delete(result, removed_id)
            self._entries = survivors
            self.invalidated += dropped
            self.retained += len(survivors)
            return dropped, len(survivors)
