"""repro.service — persistent, cache-aware MaxRank query serving.

The algorithms in :mod:`repro.core` are per-query, like the paper's
experiments: every call rebuilds all dataset-level state.  This package is
the serving layer on top of them — a :class:`MaxRankService` owns a dataset
for its lifetime, keeps the R*-tree and warm BBS traversal state across
queries, caches results in an LRU keyed by the full query identity, runs
batches through the execution engine's process pools (whole queries as work
units), and cold-starts from on-disk snapshots
(:func:`repro.index.diskio.save_snapshot`).

Quickstart
----------
>>> from repro import generate
>>> from repro.service import MaxRankService
>>> service = MaxRankService(generate("IND", 500, 3, seed=1))
>>> results = service.query_batch([3, 17, 3], tau=1)   # third answer is a hit
>>> service.save_snapshot("idx.rprs")                  # doctest: +SKIP
>>> warm = MaxRankService.from_snapshot("idx.rprs")    # doctest: +SKIP

Everything the service computes (or serves from an exact cache hit) is
bit-identical to standalone :func:`repro.maxrank` — same ``k*``, regions,
representative points and engine-invariant counters.  A thin CLI
(``python -m repro.service build | query | serve``) drives it end-to-end.
"""

from .admission import AdmissionController
from .batch import QueryTask
from .cache import QueryCache, derive_lower_tau, query_key
from .core import MaxRankService, result_fingerprint
from .router import ConsistentHashRing, DatasetRouter
from .transport import ThreadedLineServer

__all__ = [
    "MaxRankService",
    "QueryCache",
    "QueryTask",
    "query_key",
    "derive_lower_tau",
    "result_fingerprint",
    "AdmissionController",
    "ConsistentHashRing",
    "DatasetRouter",
    "ThreadedLineServer",
]
