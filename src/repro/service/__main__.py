"""``python -m repro.service`` entry point (see :mod:`repro.service.cli`)."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
