"""Multi-dataset routing: consistent hashing over admission slots.

One serving process fronts several datasets ("shards").  The router owns
the mapping in three layers:

* **Shard table** — ``dataset id -> snapshot path`` (or a prebuilt
  :class:`~repro.service.core.MaxRankService`).  Services cold-start
  lazily: the first request for a dataset pays the snapshot load, under a
  per-dataset lock so concurrent first requests load it exactly once.
* **Consistent-hash ring** — dataset ids hash onto a fixed set of
  *admission slots* via a ring with virtual nodes.  Adding or removing a
  slot remaps only the datasets that hashed to it; everything else keeps
  its slot, so warm admission queues (and their counters) survive a
  resize.  The ring is deterministic across processes and Python runs —
  it hashes with BLAKE2b, not the seeded builtin ``hash``.
* **Admission slots** — one :class:`~repro.service.admission.AdmissionController`
  per slot.  Datasets sharing a slot share one wave queue (their requests
  can ride the same wave; execution is still grouped per service), while
  datasets on different slots never contend on admission at all.

Mutations bypass admission: ``insert``/``delete`` go straight to the
owning service, whose reader-writer gate already serialises them against
that shard's in-flight queries.  Other shards are untouched — per-shard
isolation is structural, not scheduled.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..errors import AlgorithmError
from .admission import AdmissionController
from .core import MaxRankService

__all__ = ["ConsistentHashRing", "DatasetRouter"]


def _ring_hash(data: str) -> int:
    """Position on the ring: stable across runs, processes and platforms."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """A consistent-hash ring with virtual nodes.

    Each slot is placed at ``vnodes`` pseudo-random ring positions; a key
    maps to the first slot position at or after its own hash (wrapping).
    Virtual nodes keep the key distribution even with few slots, and
    consistent hashing keeps it *stable*: removing a slot reassigns only
    the keys that slot owned, adding one steals only the keys it now owns.
    """

    def __init__(self, slots: Iterable[str] = (), *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise AlgorithmError(f"vnodes must be >= 1, got {vnodes}")
        self._vnodes = int(vnodes)
        self._points: List[Tuple[int, str]] = []
        self._slots: Dict[str, None] = {}
        for slot in slots:
            self.add_slot(slot)

    @property
    def slots(self) -> Tuple[str, ...]:
        """The member slots, in insertion order."""
        return tuple(self._slots)

    def __len__(self) -> int:
        return len(self._slots)

    def add_slot(self, name: str) -> None:
        if name in self._slots:
            raise AlgorithmError(f"slot {name!r} is already on the ring")
        self._slots[name] = None
        for vnode in range(self._vnodes):
            bisect.insort(self._points, (_ring_hash(f"{name}#{vnode}"), name))

    def remove_slot(self, name: str) -> None:
        if name not in self._slots:
            raise AlgorithmError(f"slot {name!r} is not on the ring")
        del self._slots[name]
        self._points = [point for point in self._points if point[1] != name]

    def slot_for(self, key: str) -> str:
        """The slot owning ``key`` (first ring point at/after its hash)."""
        if not self._points:
            raise AlgorithmError("the ring has no slots")
        index = bisect.bisect_left(self._points, (_ring_hash(key), ""))
        if index == len(self._points):
            index = 0  # wrap past the highest point to the ring's start
        return self._points[index][1]


ShardSource = Union[str, "MaxRankService"]


class DatasetRouter:
    """Routes requests for many datasets onto sharded admission slots.

    Parameters
    ----------
    shards:
        ``dataset id -> snapshot path`` (lazy cold-start via
        :meth:`MaxRankService.from_snapshot`) or ``dataset id -> service``
        (adopted as-is; the router closes it with the rest).
    slots:
        Number of admission slots on the ring (default 2).
    vnodes:
        Virtual nodes per slot.
    wave_size / wave_window_s / jobs / seed:
        Forwarded to each slot's :class:`AdmissionController`.
    service_options:
        Extra keyword arguments for ``from_snapshot`` cold-starts
        (``cache_size=…``, ``algorithm=…``, …).

    Thread safety: every public method may be called from any transport
    thread.  The router's own bookkeeping is mutex-protected; query
    execution and snapshot loading happen outside the mutex.
    """

    def __init__(
        self,
        shards: Mapping[str, ShardSource],
        *,
        slots: int = 2,
        vnodes: int = 64,
        wave_size: int = 16,
        wave_window_s: float = 0.002,
        jobs: Optional[int] = None,
        seed: int = 0,
        service_options: Optional[Dict[str, object]] = None,
    ) -> None:
        if not shards:
            raise AlgorithmError("the router needs at least one shard")
        if slots < 1:
            raise AlgorithmError(f"slots must be >= 1, got {slots}")
        self._shards: Dict[str, ShardSource] = dict(shards)
        self._ring = ConsistentHashRing(
            (f"slot-{i}" for i in range(slots)), vnodes=vnodes
        )
        self._admissions: Dict[str, AdmissionController] = {
            name: AdmissionController(
                wave_size=wave_size,
                wave_window_s=wave_window_s,
                jobs=jobs,
                seed=seed + index,
            )
            for index, name in enumerate(self._ring.slots)
        }
        self._service_options = dict(service_options or {})
        self._services: Dict[str, MaxRankService] = {}
        self._loads: Dict[str, threading.Lock] = {}
        self._lock = threading.Lock()
        self._closed = False
        #: lazy snapshot loads performed
        self.cold_starts = 0
        #: queries routed (before admission coalescing)
        self.routed = 0
        for dataset_id, source in self._shards.items():
            if isinstance(source, MaxRankService):
                self._services[dataset_id] = source

    # ------------------------------------------------------------------ API
    def __enter__(self) -> "DatasetRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def dataset_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._shards))

    def slot_for(self, dataset_id: str) -> str:
        """The admission slot serving ``dataset_id``."""
        self._check_known(dataset_id)
        return self._ring.slot_for(dataset_id)

    def service(self, dataset_id: str) -> MaxRankService:
        """The shard's service, cold-starting it from its snapshot once.

        Concurrent first requests for the same dataset block on one
        per-dataset lock: exactly one thread loads, the rest adopt its
        service.  Loads for *different* datasets proceed in parallel.
        """
        with self._lock:
            if self._closed:
                raise AlgorithmError("the router is closed")
            service = self._services.get(dataset_id)
            if service is not None:
                return service
            self._check_known(dataset_id)
            load_lock = self._loads.setdefault(dataset_id, threading.Lock())
        with load_lock:
            with self._lock:
                service = self._services.get(dataset_id)
                if service is not None:
                    return service
            source = self._shards[dataset_id]
            service = MaxRankService.from_snapshot(
                source, **self._service_options
            )
            with self._lock:
                self._services[dataset_id] = service
                self.cold_starts += 1
            return service

    def query(
        self,
        dataset_id: str,
        focal,
        **params,
    ):
        """Route one query through its slot's admission controller.

        Returns ``(result, cache_hit)`` — the result bit-identical to a
        standalone computation, and whether it was served from the shard's
        result cache (pre-wave probe) or coalesced onto another request's
        flight.
        """
        service = self.service(dataset_id)
        admission = self._admissions[self._ring.slot_for(dataset_id)]
        with self._lock:
            self.routed += 1
        return admission.submit(service, dataset_id, focal, **params)

    def insert(self, dataset_id: str, record) -> int:
        """Insert into one shard; other shards are structurally unaffected."""
        return self.service(dataset_id).insert(record)

    def delete(self, dataset_id: str, record_id: int):
        """Delete from one shard; other shards are structurally unaffected."""
        return self.service(dataset_id).delete(record_id)

    def stats(self) -> Dict[str, object]:
        """Router, per-slot admission, and per-loaded-shard service stats."""
        with self._lock:
            loaded = dict(self._services)
            datasets = {
                dataset_id: self._ring.slot_for(dataset_id)
                for dataset_id in self._shards
            }
            out: Dict[str, object] = {
                "datasets": datasets,
                "loaded": sorted(loaded),
                "cold_starts": self.cold_starts,
                "routed": self.routed,
            }
        out["slots"] = {
            name: admission.stats()
            for name, admission in self._admissions.items()
        }
        out["services"] = {
            dataset_id: service.stats() for dataset_id, service in loaded.items()
        }
        return out

    def close(self) -> None:
        """Close every loaded service (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            services = list(self._services.values())
            self._services.clear()
        for service in services:
            service.close()

    # ------------------------------------------------------------- internal
    def _check_known(self, dataset_id: str) -> None:
        if dataset_id not in self._shards:
            known = ", ".join(sorted(self._shards))
            raise AlgorithmError(
                f"unknown dataset {dataset_id!r}; this router serves: {known}"
            )
