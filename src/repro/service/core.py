"""The persistent, cache-aware MaxRank query service.

Standalone :func:`repro.maxrank` is shaped like the paper's experiments: one
query, all dataset-level state (R*-tree, BBS passes) built from scratch and
thrown away.  :class:`MaxRankService` is the serving-layer shape: it owns a
dataset for its lifetime and amortises everything that does not depend on
the focal record across the queries it answers —

* the **R*-tree** is built once (or loaded from a snapshot; see
  :func:`repro.index.diskio.save_snapshot`) and shared by every query;
* the **BBS skyline passes** share a warm
  :class:`~repro.skyline.bbs.SkylineCache`, so per-query dominance passes
  stop recomputing the traversal keys the first query already paid for;
* **results** land in an LRU :class:`~repro.service.cache.QueryCache`, so
  repeated queries are answered without touching the algorithms at all, and
  (opt-in) lower-``tau`` queries are derived from cached superset answers;
* **batches** (:meth:`MaxRankService.query_batch`) run their cache-missing
  queries through the execution engine's executors — whole queries as work
  units — with deterministic submission-order merge;
* the dataset is **mutable** (:meth:`MaxRankService.insert` /
  :meth:`MaxRankService.delete`): the R*-tree is maintained incrementally,
  only the warm skyline keys of structurally touched pages are dropped, and
  cached answers survive a mutation whenever their provenance scope proves
  the touched record cannot affect them (see :mod:`repro.service.cache`).

Identity contract
-----------------
Every answer the service computes or serves from an exact cache hit is
**bit-identical** to a standalone ``maxrank()`` call with the same
parameters: same ``k*``, same regions (including representative-point
bytes), same engine-invariant cost counters.  Service-layer counters
(``cache_hits``, ``cache_misses``, ``skyline_reused``) are additional keys,
zero in standalone runs.  The one deliberate exception is the opt-in
``tau_policy="monotone"`` derivation, which guarantees canonical identity
(same ``k*``, same arrangement cells) but may fragment regions differently
— see :mod:`repro.service.cache`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.maxrank import ALGORITHMS, ENGINES, maxrank
from ..core.result import MaxRankResult
from ..data.dataset import Dataset
from ..engine.deadline import Deadline
from ..engine.executors import LeafTaskExecutor, make_executor
from ..errors import AlgorithmError, QueryTimeoutError, SnapshotError
from ..index.diskio import load_snapshot, save_snapshot
from ..index.rstar import RStarTree
from ..obs.log import get_logger
from ..obs.trace import Tracer
from ..skyline.bbs import SkylineCache
from ..stats import CostCounters
from .batch import QueryTask, register_state, unregister_state
from .cache import QueryCache, query_key

__all__ = ["MaxRankService", "result_fingerprint"]

logger = get_logger("repro.service")

Focal = Union[int, Sequence[float], np.ndarray]

#: Valid tau reuse policies of the result cache.
TAU_POLICIES = ("exact", "monotone")


def result_fingerprint(result: MaxRankResult):
    """Bit-exact identity of a result: ``k*`` plus every region's order,
    outscored set and representative-query bytes, in canonical order.

    Two results with equal fingerprints are interchangeable answers down to
    the representative preference vectors.  Used by the differential tests
    and the CLI's ``--verify-standalone`` smoke mode.
    """
    return (
        result.k_star,
        result.dominator_count,
        result.minimum_cell_order,
        sorted(
            (
                region.cell_order,
                tuple(region.outscored_by),
                region.representative_query().tobytes(),
            )
            for region in result.regions
        ),
    )


class _ReadWriteGate:
    """Many concurrent readers (queries) or one exclusive writer (mutation).

    The serving front answers queries from multiple transport threads, but a
    mutation swaps the dataset, maintains the R*-tree in place and sweeps
    the caches — none of which may interleave with an in-flight query.  The
    gate gives queries shared access and mutations exclusive access.  Read
    acquisition is reentrant per thread (``query_batch`` calls ``query`` on
    its serial path), tracked in a thread-local depth counter.  Writers are
    preferred: a waiting writer blocks *new* top-level readers, so a tight
    query loop cannot starve a mutation by keeping the reader count forever
    nonzero (cache hits are fast enough that overlapping readers otherwise
    never drain).  Nested re-entry by a thread already holding a read lease
    never blocks — blocking it behind the waiting writer would deadlock,
    since the writer is waiting for that very lease to release.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._local = threading.local()

    @contextmanager
    def read(self):
        depth = getattr(self._local, "depth", 0)
        if depth == 0:
            with self._cond:
                while self._writer_active or self._writers_waiting:
                    self._cond.wait()
                self._readers += 1
        self._local.depth = depth + 1
        try:
            yield
        finally:
            self._local.depth -= 1
            if self._local.depth == 0:
                with self._cond:
                    self._readers -= 1
                    if self._readers == 0:
                        self._cond.notify_all()

    @contextmanager
    def write(self):
        if getattr(self._local, "depth", 0):
            raise AlgorithmError(
                "cannot mutate the service from inside one of its own queries"
            )
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
                self._cond.notify_all()  # readers held back by the wait
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class MaxRankService:
    """A long-lived MaxRank query service over one dataset.

    Parameters
    ----------
    dataset:
        The dataset to own.  The R*-tree is built immediately (unless
        supplied), so construction cost is the cold-start cost.
    tree:
        Optional pre-built R*-tree over ``dataset.records`` (record ids must
        be row indices, as produced by :meth:`RStarTree.build`).
    algorithm / engine:
        Defaults applied to every query (overridable per call); the usual
        :func:`repro.maxrank` values.
    cache_size:
        LRU result-cache capacity (``0`` disables result caching).
    tau_policy:
        ``"exact"`` (default) — only exact-key cache hits, preserving the
        bit-identity contract.  ``"monotone"`` — additionally derive
        lower-``tau`` answers from cached superset answers (canonical
        identity only; see :mod:`repro.service.cache`).
    name:
        Optional service label (defaults to the dataset name).

    Use as a context manager (or call :meth:`close`) to release the batch
    process pools and the shared-state registration.

    Thread-safety contract
    ----------------------
    The service is safe to share across threads.  Queries take *shared*
    access (any number run concurrently; the caches and the aggregate
    counters serialise on an internal mutex, so ``stats()`` totals stay
    exact) while :meth:`insert` / :meth:`delete` take *exclusive* access —
    a mutation waits for in-flight queries to drain and blocks new ones
    until the dataset swap, tree maintenance and cache sweeps are complete.
    The mutex is never held while a result is computed, so concurrent
    distinct queries genuinely overlap; coalescing concurrent *duplicate*
    queries is the admission layer's job (:mod:`repro.service.admission`).
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        tree: Optional[RStarTree] = None,
        algorithm: str = "auto",
        engine: str = "auto",
        cache_size: int = 256,
        tau_policy: str = "exact",
        name: Optional[str] = None,
    ) -> None:
        if tau_policy not in TAU_POLICIES:
            raise AlgorithmError(
                f"unknown tau_policy {tau_policy!r}; choose one of {TAU_POLICIES}"
            )
        self.dataset = dataset
        self.algorithm = algorithm
        self.engine = engine
        self.tau_policy = tau_policy
        self.name = name or dataset.name
        build_start = time.perf_counter()
        self.tree = tree if tree is not None else RStarTree.build(dataset.records)
        self.tree_build_seconds = (
            time.perf_counter() - build_start if tree is None else 0.0
        )
        self.skyline_cache = SkylineCache(self.tree)
        self.cache = QueryCache(cache_size)
        #: Aggregate counters over every query the service answered
        #: (computed queries merge their full cost; cache hits charge only
        #: ``cache_hits``).
        self.counters = CostCounters()
        self.queries_served = 0
        self.queries_computed = 0
        self.batches_served = 0
        #: queries cancelled by their wall-clock budget
        self.query_timeouts = 0
        #: set by from_snapshot when a broken snapshot was rebuilt from data
        self.snapshot_fallback = False
        self.snapshot_error: Optional[str] = None
        self.inserts = 0
        self.deletes = 0
        self._token = register_state(dataset, self.tree, self.skyline_cache)
        self._executors: Dict[int, LeafTaskExecutor] = {}
        self._closed = False
        #: Serialises counter/cache bookkeeping (never held during compute).
        self._mutex = threading.RLock()
        #: Queries shared / mutations exclusive (see the class docstring).
        self._gate = _ReadWriteGate()

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def from_snapshot(
        cls,
        path: Union[str, Path],
        *,
        fallback_dataset: Optional[Dataset] = None,
        strict: bool = False,
        **kwargs,
    ) -> "MaxRankService":
        """Cold-start a service from a snapshot file (no STR rebuild).

        The snapshot (see :func:`repro.index.diskio.load_snapshot`) restores
        the record matrix, the dataset identity (name, attribute names) and
        a node-for-node identical R*-tree, so a service loaded from disk
        answers every query byte-identically to the service that saved it.

        Parameters
        ----------
        fallback_dataset:
            Optional dataset to rebuild from when the snapshot is missing
            or corrupt (:class:`~repro.errors.SnapshotError`).  The
            degraded cold-start pays the full R*-tree build but keeps the
            service *up*; the event is logged and surfaced through
            ``stats()`` (``snapshot_fallback`` / ``snapshot_error``).
            Answers are identical either way — the tree is rebuilt over the
            same records.
        strict:
            ``True`` re-raises the :class:`~repro.errors.SnapshotError`
            even when a fallback dataset is available (opt out of graceful
            degradation, e.g. in CI where a corrupt snapshot is a bug).
        """
        try:
            payload = load_snapshot(path)
        except SnapshotError as exc:
            if strict or fallback_dataset is None:
                raise
            logger.warning(
                "snapshot unusable; rebuilding from fallback dataset",
                extra={
                    "event": "snapshot_fallback",
                    "snapshot": str(path),
                    "error": str(exc),
                    "dataset": fallback_dataset.name,
                },
            )
            service = cls(fallback_dataset, **kwargs)
            service.snapshot_fallback = True
            service.snapshot_error = str(exc)
            return service
        metadata = payload.metadata
        dataset = Dataset(
            payload.records,
            attribute_names=metadata.get("attribute_names"),
            name=str(metadata.get("dataset_name", "dataset")),
        )
        service = cls(dataset, tree=payload.tree, **kwargs)
        return service

    def save_snapshot(self, path: Union[str, Path]) -> None:
        """Persist the record matrix and built R*-tree to ``path``."""
        metadata: Dict[str, object] = {"dataset_name": self.dataset.name}
        if self.dataset.attribute_names is not None:
            metadata["attribute_names"] = list(self.dataset.attribute_names)
        save_snapshot(path, self.tree, self.dataset.records, metadata=metadata)

    def close(self) -> None:
        """Release process pools and the shared-state registration (idempotent)."""
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            unregister_state(self._token)
            executors = list(self._executors.values())
            self._executors.clear()
        for executor in executors:
            executor.close()

    def __enter__(self) -> "MaxRankService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return self.dataset.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MaxRankService(name={self.name!r}, n={self.dataset.n}, "
            f"d={self.dataset.d}, cached={len(self.cache)}, "
            f"served={self.queries_served})"
        )

    # -------------------------------------------------------------- queries
    def _key(self, focal: Focal, tau: int, algorithm: str, engine: str, options):
        return query_key(focal, tau, algorithm, engine, options)

    def _validate_request(
        self, focal: Focal, tau: int, algorithm: str, engine: str
    ) -> None:
        """Reject malformed requests before any cache-key or tree work.

        Raises a :class:`~repro.errors.ReproError` subclass for NaN /
        infinite / wrong-dimensional focal vectors, out-of-range focal
        indices, negative or non-integral ``tau`` and unknown algorithm or
        engine names, so service callers (and the JSON-lines ``serve``
        loop) get a structured, catchable error instead of a deep
        traceback from the middle of a tree descent.
        """
        self.dataset.validate_focal(focal)
        if isinstance(tau, bool) or not isinstance(tau, (int, np.integer)):
            raise AlgorithmError(f"tau must be a non-negative integer, got {tau!r}")
        if tau < 0:
            raise AlgorithmError(f"tau must be non-negative, got {tau}")
        if algorithm not in ALGORITHMS:
            raise AlgorithmError(
                f"unknown algorithm {algorithm!r}; choose one of {ALGORITHMS}"
            )
        if engine not in ENGINES:
            raise AlgorithmError(
                f"unknown engine {engine!r}; choose one of {ENGINES}"
            )

    @staticmethod
    def _coerce_deadline(timeout) -> Optional[Deadline]:
        if timeout is None:
            return None
        if isinstance(timeout, Deadline):
            return timeout
        return Deadline.after(float(timeout))

    def _compute(
        self,
        focal: Focal,
        tau: int,
        algorithm: str,
        engine: str,
        options: Dict[str, object],
        jobs: Optional[int] = None,
        deadline: Optional[Deadline] = None,
        tracer: Optional[Tracer] = None,
    ) -> MaxRankResult:
        counters = CostCounters()
        counters.cache_misses += 1
        handle = None
        if tracer is not None:
            # The tracer rides the counters into the engine: timer sections
            # and leaf/build tasks emit spans against it, and worker-side
            # span deltas come back inside the counters merge.
            handle = tracer.begin("compute")
            counters._tracer = tracer
        try:
            result = maxrank(
                self.dataset,
                focal,
                algorithm=algorithm,
                engine=engine,
                tau=tau,
                tree=self.tree,
                counters=counters,
                jobs=jobs,
                skyline_cache=self.skyline_cache,
                deadline=deadline,
                **options,
            )
        finally:
            if tracer is not None:
                tracer.finish(handle)
                counters._tracer = None
                # Keep spans out of the service aggregate counters: they
                # belong to this trace, not to ``self.counters``.
                tracer.absorb(counters.drain_spans())
        return result

    def query(
        self,
        focal: Focal,
        *,
        tau: int = 0,
        algorithm: Optional[str] = None,
        engine: Optional[str] = None,
        use_cache: bool = True,
        jobs: Optional[int] = None,
        timeout: Optional[Union[float, Deadline]] = None,
        tracer: Optional[Tracer] = None,
        **options,
    ) -> MaxRankResult:
        """Answer one MaxRank / iMaxRank query against the owned dataset.

        Identical semantics to :func:`repro.maxrank` with the service's
        dataset and warm state; ``jobs`` parallelises *within* the query
        (leaf tasks).  Cached answers are returned as stored — treat results
        as read-only, as two calls may share region objects.

        ``timeout`` is a wall-clock budget in seconds (or a prebuilt
        :class:`~repro.engine.Deadline`); expiry raises
        :class:`~repro.errors.QueryTimeoutError`, whose partial counters
        are still merged into the service aggregates.  The budget is *not*
        part of the cache key — a cached answer is served regardless of
        the timeout, and a computed answer is cached for timeout-free
        callers too (the answer does not depend on the budget).

        ``tracer`` (optional, see :mod:`repro.obs.trace`) records a span
        tree for the query — service, engine phases, worker tasks — and
        never affects the answer, the counters or the cache key.
        """
        if self._closed:
            raise AlgorithmError("the service is closed")
        algorithm = algorithm or self.algorithm
        engine = engine or self.engine
        self._validate_request(focal, tau, algorithm, engine)
        deadline = self._coerce_deadline(timeout)
        key = self._key(focal, tau, algorithm, engine, options)
        handle = tracer.begin("service.query") if tracer is not None else None
        cache_hit = False
        try:
            with self._gate.read():
                with self._mutex:
                    self.queries_served += 1
                    if use_cache:
                        cached = self.cache.get(
                            key, tau_monotone=self.tau_policy == "monotone"
                        )
                        if cached is not None:
                            self.counters.cache_hits += 1
                            cache_hit = True
                            return cached
                try:
                    result = self._compute(
                        focal, tau, algorithm, engine, options,
                        jobs=jobs, deadline=deadline, tracer=tracer,
                    )
                except QueryTimeoutError as exc:
                    with self._mutex:
                        self.query_timeouts += 1
                        if exc.counters is not None:
                            self.counters += exc.counters
                    raise
                with self._mutex:
                    self.queries_computed += 1
                    self.counters += result.counters
                    if use_cache:
                        self.cache.put(key, result)
                return result
        finally:
            if handle is not None:
                tracer.finish(handle, cache_hit=cache_hit)

    def query_batch(
        self,
        focals: Sequence[Focal],
        *,
        tau: int = 0,
        algorithm: Optional[str] = None,
        engine: Optional[str] = None,
        jobs: Optional[int] = None,
        use_cache: bool = True,
        timeout: Optional[Union[float, Deadline]] = None,
        tracer: Optional[Tracer] = None,
        **options,
    ) -> List[MaxRankResult]:
        """Answer a batch of queries, amortising and (optionally) parallelising.

        Duplicate focal records within the batch are always computed once —
        even with ``use_cache=False``, which only bypasses the *persistent*
        result cache, not the batch-local dedup.  Cached answers (from this
        batch, earlier batches or single queries) are served without
        computation.  With ``jobs >= 2`` the cache-missing queries run as
        whole-query tasks on the execution engine's process pool — results
        are merged in submission order and are bit-identical to a serial
        batch, which in turn is bit-identical to standalone ``maxrank()``
        calls.

        ``timeout`` is one shared wall-clock budget for the *whole batch*
        (seconds or a :class:`~repro.engine.Deadline`): every query checks
        the same deadline, so a batch is cancelled as a unit rather than
        letting each member burn a full budget in sequence.

        Returns one result per input focal, in input order.
        """
        if self._closed:
            raise AlgorithmError("the service is closed")
        algorithm = algorithm or self.algorithm
        engine = engine or self.engine
        for focal in focals:
            self._validate_request(focal, tau, algorithm, engine)
        deadline = self._coerce_deadline(timeout)
        with self._gate.read():
            with self._mutex:
                self.batches_served += 1

            if jobs is None or jobs <= 1:
                # Same dedup semantics as the parallel path: occurrences
                # beyond the first of a key are served from the batch-local
                # map.
                local: Dict[object, MaxRankResult] = {}
                ordered: List[MaxRankResult] = []
                for focal in focals:
                    key = self._key(focal, tau, algorithm, engine, options)
                    if key in local:
                        with self._mutex:
                            self.queries_served += 1
                            if use_cache:
                                self.counters.cache_hits += 1
                        ordered.append(local[key])
                        continue
                    result = self.query(
                        focal,
                        tau=tau,
                        algorithm=algorithm,
                        engine=engine,
                        use_cache=use_cache,
                        timeout=deadline,
                        tracer=tracer,
                        **options,
                    )
                    local[key] = result
                    ordered.append(result)
                return ordered

            # Whole-query parallelism: dedupe, serve hits, schedule misses.
            keys = [
                self._key(focal, tau, algorithm, engine, options)
                for focal in focals
            ]
            results: Dict[object, MaxRankResult] = {}
            pending: List[Focal] = []
            pending_keys: List[object] = []
            with self._mutex:
                for focal, key in zip(focals, keys):
                    if key in results or key in pending_keys:
                        continue
                    cached = (
                        self.cache.get(
                            key, tau_monotone=self.tau_policy == "monotone"
                        )
                        if use_cache
                        else None
                    )
                    if cached is not None:
                        self.counters.cache_hits += 1
                        results[key] = cached
                    else:
                        pending.append(focal)
                        pending_keys.append(key)

            if pending:
                frozen_options = tuple(sorted(options.items()))
                # Traced batches: each task carries a TraceContext under one
                # batch span; its tag (submission position) makes the
                # worker-minted span ids schedule-independent.
                batch_handle = None
                batch_trace = None
                if tracer is not None:
                    batch_handle = tracer.begin("service.batch")
                    batch_trace = tracer.context()
                tasks = [
                    self._make_task(
                        focal, tau, algorithm, engine, frozen_options,
                        deadline, trace=batch_trace, trace_tag=f"Q{index}",
                    )
                    for index, focal in enumerate(pending)
                ]
                with self._mutex:
                    executor = self._executors.get(jobs)
                    if executor is None:
                        executor = make_executor(jobs)
                        self._executors[jobs] = executor
                try:
                    task_results = executor.run(tasks)
                except QueryTimeoutError as exc:
                    with self._mutex:
                        self.query_timeouts += 1
                        if exc.counters is not None:
                            if tracer is not None:
                                tracer.absorb(exc.counters.drain_spans())
                            self.counters += exc.counters
                    raise
                finally:
                    if batch_handle is not None:
                        tracer.finish(batch_handle, tasks=len(tasks))
                    # Attribute crash-recovery events of this batch (worker
                    # retries, serial degradation) to the service
                    # aggregates, whether the batch finished or timed out.
                    with self._mutex:
                        for name, value in executor.drain_events().items():
                            setattr(
                                self.counters,
                                name,
                                getattr(self.counters, name) + value,
                            )
                with self._mutex:
                    for key, result in zip(pending_keys, task_results):
                        self.queries_computed += 1
                        if tracer is not None:
                            # Spans belong to the trace, not the aggregate.
                            tracer.absorb(result.counters.drain_spans())
                        self.counters += result.counters
                        if use_cache:
                            self.cache.put(key, result)
                        results[key] = result

            with self._mutex:
                self.queries_served += len(keys)
                # Occurrences beyond the first of each key are served from
                # the batch-local result map; with caching on, the aggregate
                # counters report that amortisation as cache hits (matching
                # the serial path).  With use_cache=False nothing is
                # attributed to the cache.
                if use_cache:
                    self.counters.cache_hits += len(keys) - len(results)
            return [results[key] for key in keys]

    def _make_task(
        self,
        focal: Focal,
        tau: int,
        algorithm: str,
        engine: str,
        frozen_options,
        deadline: Optional[Deadline] = None,
        trace=None,
        trace_tag: str = "",
    ) -> QueryTask:
        if isinstance(focal, (int, np.integer)):
            return QueryTask(
                self._token,
                focal_index=int(focal),
                tau=tau,
                algorithm=algorithm,
                engine=engine,
                options=frozen_options,
                deadline=deadline,
                trace=trace,
                trace_tag=trace_tag,
            )
        return QueryTask(
            self._token,
            focal_vector=np.asarray(focal, dtype=float).ravel(),
            tau=tau,
            algorithm=algorithm,
            engine=engine,
            options=frozen_options,
            deadline=deadline,
            trace=trace,
            trace_tag=trace_tag,
        )

    # ------------------------------------------------------------- mutations
    def _replace_dataset(self, records: np.ndarray) -> None:
        """Swap in a mutated record matrix and refresh every shared handle.

        The batch-worker registry and any live process pools hold (or have
        forked with) the *old* dataset object; both must be refreshed or a
        subsequent ``jobs >= 2`` batch would silently answer against the
        pre-mutation records.
        """
        self.dataset = Dataset(
            records,
            attribute_names=(
                list(self.dataset.attribute_names)
                if self.dataset.attribute_names is not None
                else None
            ),
            name=self.dataset.name,
        )
        unregister_state(self._token)
        self._token = register_state(self.dataset, self.tree, self.skyline_cache)
        for executor in self._executors.values():
            executor.close()
        self._executors.clear()

    def insert(self, record: Sequence[float] | np.ndarray) -> int:
        """Insert ``record`` into the owned dataset; returns its record id.

        Incremental end to end: the R*-tree absorbs the new leaf entry in
        place, the warm skyline keys of the touched pages (and only those)
        are dropped, and cached answers survive whenever the new record
        provably cannot change them (see
        :meth:`repro.service.cache.QueryCache.invalidate_for_insert`).
        After the call the service is indistinguishable from one freshly
        built over the mutated dataset: every answer it returns — computed
        or served from a retained cache entry — is bit-identical to that
        oracle's.
        """
        if self._closed:
            raise AlgorithmError("the service is closed")
        point = np.asarray(record, dtype=float).ravel()
        if point.shape[0] != self.dataset.d:
            raise AlgorithmError(
                f"record has {point.shape[0]} attributes, dataset has {self.dataset.d}"
            )
        if not np.all(np.isfinite(point)):
            raise AlgorithmError("record attributes must be finite numbers")
        with self._gate.write():
            records_before = self.dataset.records
            self.cache.invalidate_for_insert(records_before, point)
            new_id = self.dataset.n
            self.tree.insert(point, new_id)
            self.skyline_cache.invalidate_pages(self.tree.drain_dirty_pages())
            self._replace_dataset(
                np.vstack([records_before, point[np.newaxis, :]])
            )
            self.inserts += 1
            return new_id

    def delete(self, record_id: int) -> np.ndarray:
        """Delete record ``record_id``; returns the removed point.

        Record ids are dataset row indices, so every id above ``record_id``
        shifts down by one — in the dataset, in the R*-tree leaf entries and
        in the keys and region labels of retained cache entries.  Cache
        invalidation runs against the *pre-delete* matrix (provenance scopes
        align with old row indices); the R*-tree removes the leaf entry and
        condenses under-full nodes in place.  The bit-identity contract of
        :meth:`insert` holds here too.
        """
        if self._closed:
            raise AlgorithmError("the service is closed")
        if isinstance(record_id, bool) or not isinstance(record_id, (int, np.integer)):
            raise AlgorithmError(f"record_id must be an integer, got {record_id!r}")
        record_id = int(record_id)
        with self._gate.write():
            if not 0 <= record_id < self.dataset.n:
                raise AlgorithmError(
                    f"record_id {record_id} out of range [0, {self.dataset.n})"
                )
            if self.dataset.n <= 1:
                raise AlgorithmError("cannot delete the last record of a dataset")
            records_before = self.dataset.records
            point = records_before[record_id].copy()
            self.cache.invalidate_for_delete(records_before, record_id, point)
            self.tree.delete(point, record_id)
            self.tree.renumber_after_delete(record_id)
            self.skyline_cache.invalidate_pages(self.tree.drain_dirty_pages())
            self._replace_dataset(np.delete(records_before, record_id, axis=0))
            self.deletes += 1
            return point

    # ---------------------------------------------------------------- stats
    def stats(self) -> Dict[str, object]:
        """Service-level statistics (cache behaviour, amortisation, sizes).

        Taken under the bookkeeping mutex, so the snapshot is consistent
        even while other threads are mid-query.
        """
        with self._mutex:
            return self._stats_locked()

    def _stats_locked(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "n": self.dataset.n,
            "d": self.dataset.d,
            "queries_served": self.queries_served,
            "queries_computed": self.queries_computed,
            "batches_served": self.batches_served,
            "cache_hits": self.counters.cache_hits,
            "cache_misses": self.counters.cache_misses,
            "cache_monotone_hits": self.cache.monotone_hits,
            "cache_evictions": self.cache.evictions,
            "cache_entries": len(self.cache),
            "inserts": self.inserts,
            "deletes": self.deletes,
            "invalidated": self.cache.invalidated,
            "retained": self.cache.retained,
            "skyline_reused": self.counters.skyline_reused,
            "skyline_nodes_warm": len(self.skyline_cache),
            "nodes_created": self.counters.nodes_created,
            "splits_performed": self.counters.splits_performed,
            "build_tasks": self.counters.build_tasks,
            "build_wall_fraction": round(self.counters.build_wall_fraction, 6),
            "tree_build_seconds": round(self.tree_build_seconds, 6),
            "query_timeouts": self.query_timeouts,
            "deadline_checks": self.counters.deadline_checks,
            "worker_retries": self.counters.worker_retries,
            "degraded_batches": self.counters.degraded_batches,
            "snapshot_fallback": self.snapshot_fallback,
            "snapshot_error": self.snapshot_error,
        }
