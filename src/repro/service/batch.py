"""Whole-query work units scheduled through the execution engine.

The within-leaf engine (:mod:`repro.engine`) parallelises *inside* one
query.  A service batch has a second, coarser axis: the queries themselves
are independent, so ``MaxRankService.query_batch(..., jobs=N)`` wraps each
cache-missing query in a :class:`QueryTask` and hands the batch to the same
executors that schedule leaf tasks — same chunked dispatch, same
submission-order merge, hence the same determinism story (results come back
in task order regardless of worker scheduling).

Shipping a dataset and R*-tree to every task would drown the win in
pickling, so tasks reference the service's per-dataset state through a
module-level registry instead: the service registers ``(dataset, tree,
skyline cache)`` under a token *before* any pool exists, and the engine's
fork-based workers inherit the registry (and the warm state) at fork time.
A :class:`QueryTask` therefore pickles as a few scalars.  On a platform
without ``fork`` the lookup fails loudly (clear error, no silent fallback
to a rebuilt tree — a rebuilt tree could change simulated-I/O accounting).

Inside a worker the task forces the *serial* within-leaf path: the worker
is already one of N processes, and the serial scan is bit-identical to the
pooled one, so nesting pools would add cost without changing results.  It
also must not inherit a ``REPRO_JOBS`` pool object across the fork (a
forked copy of a parent's pool is not usable).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.maxrank import maxrank
from ..core.result import MaxRankResult
from ..data.dataset import Dataset
from ..engine.deadline import Deadline
from ..engine.executors import SerialExecutor
from ..errors import AlgorithmError
from ..index.rstar import RStarTree
from ..obs.trace import TraceContext, Tracer, worker_span
from ..skyline.bbs import SkylineCache
from ..stats import CostCounters

__all__ = ["QueryTask", "register_state", "unregister_state", "SharedQueryState"]


@dataclass(frozen=True)
class SharedQueryState:
    """The per-dataset state a batch's query tasks execute against."""

    dataset: Dataset
    tree: RStarTree
    skyline_cache: Optional[SkylineCache] = None


#: token -> shared state; populated in the service process, inherited by
#: fork-based workers.  Never mutated from workers.
_REGISTRY: Dict[int, SharedQueryState] = {}
_TOKENS = itertools.count(1)


def register_state(
    dataset: Dataset,
    tree: RStarTree,
    skyline_cache: Optional[SkylineCache] = None,
) -> int:
    """Register shared state and return its token (see module docstring)."""
    token = next(_TOKENS)
    _REGISTRY[token] = SharedQueryState(dataset, tree, skyline_cache)
    return token


def unregister_state(token: int) -> None:
    """Drop a registered state (idempotent)."""
    _REGISTRY.pop(token, None)


@dataclass(frozen=True)
class QueryTask:
    """One self-contained MaxRank query of a service batch.

    Attributes
    ----------
    token:
        Registry token of the owning service's shared state.
    focal_index / focal_vector:
        Exactly one is set: the focal record as a dataset index, or as
        explicit coordinates (the what-if case).
    tau, algorithm, engine:
        The query parameters, exactly as the service façade received them.
    options:
        Frozen algorithm options (``split_threshold``, ``use_pairwise``, …)
        as a sorted tuple of pairs — hashable and picklable.
    deadline:
        Optional wall-clock budget shared by the whole batch.  Deadlines
        carry an *absolute* monotonic-clock expiry, so the pickled copy a
        forked worker receives expires at the same instant as the
        service's (``CLOCK_MONOTONIC`` is system-wide on one host).
    trace / trace_tag:
        Optional tracing: the batch span's :class:`TraceContext` plus
        this task's deterministic span-id suffix (submission position).
        A traced task anchors a worker-local :class:`Tracer` under its
        pre-allocated span id, so the engine-phase spans it emits nest
        correctly and never collide with another task's — whatever
        worker runs it.  The finished spans ride home inside the result
        counters, the same merge path as every other counter.
    """

    token: int
    focal_index: Optional[int] = None
    focal_vector: Optional[np.ndarray] = None
    tau: int = 0
    algorithm: str = "auto"
    engine: str = "auto"
    options: Tuple[Tuple[str, object], ...] = field(default=())
    deadline: Optional[Deadline] = None
    trace: Optional[TraceContext] = None
    trace_tag: str = ""

    def run(self) -> MaxRankResult:
        """Execute the query against the registered shared state.

        Called by :func:`repro.engine.tasks.execute_task` — in the service
        process for serial batches, in a forked worker for ``jobs >= 2``.
        The within-leaf engine is pinned to the serial executor (see module
        docstring); results are bit-identical either way.
        """
        state = _REGISTRY.get(self.token)
        if state is None:
            raise AlgorithmError(
                "service query task found no registered dataset state "
                f"(token {self.token}); whole-query parallelism requires "
                "fork-based worker processes that inherit the service's "
                "registry — run the batch with jobs=None on this platform"
            )
        focal = self.focal_index if self.focal_index is not None else self.focal_vector
        counters = CostCounters()
        counters.cache_misses += 1
        tracer = None
        span_start = 0.0
        if self.trace is not None:
            # Anchor a worker-local tracer under this task's pre-allocated
            # span id: engine-phase spans nest under it with worker-local
            # ordinals that cannot collide across tasks.
            span_start = time.perf_counter()
            parent = self.trace.parent_id
            anchor_id = f"{parent}.{self.trace_tag}" if parent else self.trace_tag
            tracer = Tracer(anchor=TraceContext(self.trace.trace_id, anchor_id))
            counters._tracer = tracer
        options = dict(self.options)
        name = self.algorithm.lower()
        if name in ("aa", "aa3d", "ba") or (
            name == "auto" and state.dataset.d >= 3
        ):
            # Pin the within-leaf engine to the serial path: this process is
            # already one of N batch workers, and a REPRO_JOBS pool object
            # inherited across the fork would not be usable anyway.
            options.setdefault("executor", SerialExecutor())
        try:
            return maxrank(
                state.dataset,
                focal,
                algorithm=self.algorithm,
                engine=self.engine,
                tau=self.tau,
                tree=state.tree,
                counters=counters,
                skyline_cache=state.skyline_cache,
                deadline=self.deadline,
                **options,
            )
        finally:
            if tracer is not None:
                counters._tracer = None
                counters.record_span(worker_span(
                    self.trace,
                    self.trace_tag,
                    "query_task",
                    span_start,
                    time.perf_counter(),
                ))
                for record in tracer.records():
                    counters.record_span(record)
