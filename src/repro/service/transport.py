"""Threaded line-oriented TCP transport for the serving front.

The stdin serve loop (``python -m repro.service serve``) already defines
the protocol: newline-delimited JSON requests in, one JSON line out per
request, a greeting line on attach, a shutdown line on detach, and strict
request isolation.  This module carries the *same* protocol over TCP —
it moves bytes and threads only; what a line means is decided by the
handler callable the CLI passes in, so the transport never imports JSON,
services or routers.

Contract carried over from the stdin loop:

* **Trailing line at EOF.**  A final request line whose newline never
  arrived (client wrote ``{"focal": 5}`` and closed) is still a request:
  it is handled at connection EOF exactly as the stdin loop handles an
  unterminated final line — processed if valid, answered with a
  ``bad_request`` error line if truncated mid-JSON.  Never dropped.
* **Graceful drain.**  ``shutdown(reason)`` stops the accept loop, lets
  every connection finish the requests it has already received (buffered
  complete lines included — they were sent before the drain began), sends
  each client a farewell line and only then closes.  The CLI wires this
  to SIGTERM/SIGINT, mirroring the stdin loop's drain.
* **Isolation.**  A handler exception answers that request's line with an
  error produced by ``on_error`` and the connection keeps serving; one
  client's malformed traffic never tears down another's connection.

Every connection gets its own thread; handlers are expected to be
thread-safe (the router/admission stack is — see
``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, List, Optional, Tuple

__all__ = ["ThreadedLineServer", "parse_hostport"]

#: handler(line) -> (response line or None, close-this-connection flag)
LineHandler = Callable[[str], Tuple[Optional[str], bool]]


def parse_hostport(spec: str, *, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """Parse ``HOST:PORT`` / ``:PORT`` / ``PORT`` into ``(host, port)``.

    Port 0 is allowed (the kernel picks a free port; read it back from
    :attr:`ThreadedLineServer.address`).
    """
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        host, port_text = default_host, spec
    host = host or default_host
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"invalid listen address {spec!r}; expected HOST:PORT"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port {port} out of range in listen address {spec!r}")
    return host, port


class ThreadedLineServer:
    """A thread-per-connection newline-delimited line server.

    Parameters
    ----------
    host / port:
        Bind address; port 0 asks the kernel for a free port — the bound
        address is :attr:`address`.
    handler:
        ``handler(line) -> (response, close)``: called once per received
        line (stripped of its newline, blank lines skipped); the response
        string (if any) is sent back followed by ``\\n``; ``close=True``
        ends the connection after the response (the protocol's ``quit``).
    greeting:
        Optional zero-argument callable; its return value is sent as the
        first line of every fresh connection (the ``ready`` metadata).
    farewell:
        Optional ``farewell(reason)``; its return value is sent as the
        connection's last line.  ``reason`` is ``"eof"`` when the client
        closed, ``"quit"`` for a handler-requested close, or the reason
        given to :meth:`shutdown` during a drain.
    on_error:
        ``on_error(exc)`` maps a handler exception to the error-response
        line (request isolation).  Without it, handler exceptions close
        the connection.
    """

    def __init__(
        self,
        host: str,
        port: int,
        handler: LineHandler,
        *,
        greeting: Optional[Callable[[], str]] = None,
        farewell: Optional[Callable[[str], Optional[str]]] = None,
        on_error: Optional[Callable[[BaseException], str]] = None,
        backlog: int = 64,
    ) -> None:
        self._handler = handler
        self._greeting = greeting
        self._farewell = farewell
        self._on_error = on_error
        self._listener = socket.create_server((host, port), backlog=backlog)
        self._listener.settimeout(0.2)  # poll so shutdown() is honoured
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._stopping = threading.Event()
        self._drain_reason = "shutdown"
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        #: lifetime counters (under ``_lock``)
        self.connections_accepted = 0
        self.requests_handled = 0

    # ------------------------------------------------------------------ API
    def serve_forever(self) -> None:
        """Accept until :meth:`shutdown`, then drain every connection.

        Returns only after all connection threads have finished their
        buffered requests and said farewell — the caller can exit cleanly
        the moment this returns.
        """
        try:
            while not self._stopping.is_set():
                try:
                    conn, _addr = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed under us during shutdown
                with self._lock:
                    self.connections_accepted += 1
                    thread = threading.Thread(
                        target=self._serve_connection,
                        args=(conn,),
                        name=f"repro-serve-conn-{self.connections_accepted}",
                        daemon=True,
                    )
                    self._threads.append(thread)
                thread.start()
        finally:
            self._listener.close()
            with self._lock:
                threads = list(self._threads)
            for thread in threads:
                thread.join()

    def shutdown(self, reason: str = "shutdown") -> None:
        """Begin a graceful drain (signal-handler safe: only sets a flag)."""
        self._drain_reason = reason
        self._stopping.set()

    @property
    def drain_reason(self) -> str:
        """The reason given to :meth:`shutdown` (``"shutdown"`` before one)."""
        return self._drain_reason

    # ------------------------------------------------------------- internal
    def _serve_connection(self, conn: socket.socket) -> None:
        reason: Optional[str] = None
        try:
            conn.settimeout(0.2)  # poll so a drain is honoured promptly
            if self._greeting is not None:
                self._send(conn, self._greeting())
            buffer = b""
            while reason is None:
                if self._stopping.is_set():
                    reason = self._drain_reason
                    break
                try:
                    chunk = conn.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    return  # peer vanished; nothing left to say
                if not chunk:
                    # EOF with an unterminated final line: still a request.
                    if buffer.strip():
                        self._handle_line(conn, buffer)
                    reason = "eof"
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if not line.strip():
                        continue
                    keep_open, close_reason = self._handle_line(conn, line)
                    if not keep_open:
                        reason = close_reason
                        break
            if self._farewell is not None:
                line = self._farewell(reason)
                if line is not None:
                    self._send(conn, line)
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _handle_line(self, conn: socket.socket, raw: bytes) -> Tuple[bool, str]:
        """Handle one request line; returns (keep-connection-open, reason)."""
        text = raw.decode("utf-8", "replace").strip()
        with self._lock:
            self.requests_handled += 1
        try:
            response, close = self._handler(text)
        except Exception as exc:
            if self._on_error is None:
                raise
            response, close = self._on_error(exc), False
        if response is not None:
            if not self._send(conn, response):
                return False, "eof"
        return (not close), ("quit" if close else "eof")

    @staticmethod
    def _send(conn: socket.socket, line: str) -> bool:
        try:
            conn.sendall(line.encode("utf-8") + b"\n")
            return True
        except OSError:
            return False  # client went away mid-response
