"""Simulators for the paper's real datasets.

The original evaluation (Table 4) uses five real datasets that are not
redistributable here: HOTEL (hotelsbase.org), HOUSE (ipums.org), NBA
(basketballreference.com), PITCH and BAT (baseball1.com).  The MaxRank
algorithms only depend on the *statistical shape* of the data — its
dimensionality, cardinality and inter-attribute correlation structure — so
each dataset is replaced by a documented generator that mimics those
characteristics (see DESIGN.md, "Substitutions").

Each simulator accepts an ``n`` override so benchmarks can run at
laptop-scale cardinality while keeping the native dimensionality and
correlation pattern.  The default cardinalities are scaled-down versions of
the real ones, preserving their relative sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from .dataset import Dataset
from .generators import SeedLike, _rng

__all__ = ["RealDatasetSpec", "REAL_DATASETS", "load_real_dataset"]


@dataclass(frozen=True)
class RealDatasetSpec:
    """Description of one simulated real dataset.

    Attributes
    ----------
    name:
        Dataset label as used in the paper.
    d:
        Native dimensionality (number of scoring attributes used in Table 4).
    paper_n:
        Cardinality of the original dataset.
    default_n:
        Scaled-down cardinality used by this reproduction's benchmarks.
    attributes:
        Human-readable attribute names.
    generator:
        Callable ``(n, rng) -> np.ndarray`` producing the records.
    """

    name: str
    d: int
    paper_n: int
    default_n: int
    attributes: tuple
    generator: Callable[[int, np.random.Generator], np.ndarray]


def _hotel(n: int, rng: np.random.Generator) -> np.ndarray:
    """HOTEL: 4 attributes — stars, price, rooms, facilities.

    Stars and facilities are positively correlated; price is loosely
    anti-correlated with value (cheaper hotels have fewer stars); room counts
    follow a heavy-tailed distribution.  Attributes are oriented so that
    larger is better (price is inverted), matching the paper's convention.
    """
    stars = np.clip(rng.normal(3.2, 1.0, n), 1.0, 5.0)
    facilities = np.clip(stars * 4 + rng.normal(0, 3, n), 0, 30)
    price = np.clip(40 + stars * 45 + rng.lognormal(2.5, 0.6, n), 30, 1200)
    rooms = np.clip(rng.lognormal(3.6, 0.8, n), 5, 900)
    value_for_money = price.max() - price
    return np.column_stack([stars, value_for_money, rooms, facilities])


def _house(n: int, rng: np.random.Generator) -> np.ndarray:
    """HOUSE: 6 household-expenditure attributes, moderately correlated.

    Household spending categories are all driven by a latent income factor,
    so the simulated attributes share a common positive component with
    per-category noise — a mildly correlated distribution, as the paper's
    discussion of HOUSE implies.
    """
    income = rng.lognormal(10.4, 0.55, n)
    shares = rng.dirichlet(np.array([4.0, 5.0, 2.0, 3.0, 2.5, 3.5]), size=n)
    spend = shares * income[:, None]
    noise = rng.lognormal(0.0, 0.25, size=spend.shape)
    return spend * noise


def _nba(n: int, rng: np.random.Generator) -> np.ndarray:
    """NBA: 8 per-player performance statistics, weakly correlated.

    Players at different positions trade off statistics (guards assist,
    centers rebound and block), which produces the weak correlation and the
    large ``|T|`` the paper reports for NBA.  We draw a latent "minutes
    played" factor plus a position archetype mixture.
    """
    minutes = np.clip(rng.normal(22, 9, n), 2, 42)
    position = rng.integers(0, 3, n)  # 0 guard, 1 forward, 2 center
    base = minutes / 42.0
    points = base * rng.gamma(6.0, 2.2, n)
    rebounds = base * rng.gamma(2.0 + 2.5 * position, 1.2, n)
    assists = base * rng.gamma(5.0 - 1.6 * position, 1.0, n)
    steals = base * rng.gamma(2.0, 0.5, n)
    blocks = base * rng.gamma(0.6 + 0.9 * position, 0.5, n)
    fg_pct = np.clip(rng.normal(0.44 + 0.02 * position, 0.06, n), 0.2, 0.75)
    ft_pct = np.clip(rng.normal(0.76 - 0.04 * position, 0.09, n), 0.3, 0.95)
    three_made = base * rng.gamma(np.maximum(2.2 - 1.0 * position, 0.2), 0.9, n)
    return np.column_stack(
        [points, rebounds, assists, steals, blocks, fg_pct, ft_pct, three_made]
    )


def _pitch(n: int, rng: np.random.Generator) -> np.ndarray:
    """PITCH: 8 pitcher statistics, more correlated than NBA.

    All pitchers perform the same role, so statistics are largely driven by a
    single workload/skill factor — the paper attributes PITCH's smaller
    ``|T|`` (relative to NBA) to this higher correlation.
    """
    workload = rng.gamma(4.0, 0.5, n)          # innings-pitched factor
    skill = np.clip(rng.normal(1.0, 0.18, n), 0.4, 1.8)
    innings = workload * 45
    strikeouts = innings * skill * rng.normal(0.85, 0.08, n)
    wins = np.clip(workload * skill * rng.normal(2.2, 0.5, n), 0, 25)
    saves = np.where(rng.random(n) < 0.15, rng.gamma(2.0, 6.0, n), rng.gamma(0.2, 1.0, n))
    games = workload * rng.normal(11, 1.5, n)
    complete_games = np.clip(workload * skill * rng.normal(0.8, 0.4, n), 0, 20)
    shutouts = np.clip(complete_games * rng.uniform(0.0, 0.5, n), 0, 10)
    era_inverted = np.clip(skill * rng.normal(6.0, 0.8, n), 0.5, 10.0)
    return np.column_stack(
        [wins, innings, strikeouts, saves, games, complete_games, shutouts, era_inverted]
    )


def _bat(n: int, rng: np.random.Generator) -> np.ndarray:
    """BAT: 9 batter statistics driven by an at-bats factor plus power/contact mix."""
    at_bats = np.clip(rng.gamma(3.0, 120.0, n), 10, 700)
    contact = np.clip(rng.normal(0.26, 0.035, n), 0.15, 0.38)
    power = np.clip(rng.normal(0.12, 0.06, n), 0.0, 0.35)
    hits = at_bats * contact
    doubles = hits * rng.normal(0.2, 0.04, n)
    triples = hits * np.clip(rng.normal(0.02, 0.015, n), 0, 0.12)
    home_runs = at_bats * power * rng.normal(0.25, 0.06, n)
    runs = hits * rng.normal(0.55, 0.1, n) + home_runs
    rbi = hits * rng.normal(0.45, 0.1, n) + 1.5 * home_runs
    walks = at_bats * np.clip(rng.normal(0.09, 0.03, n), 0, 0.25)
    stolen_bases = np.clip((1.0 - power * 2.0), 0, 1) * rng.gamma(1.2, 6.0, n)
    games = np.clip(at_bats / rng.normal(3.4, 0.3, n), 5, 162)
    return np.column_stack(
        [games, at_bats, runs, hits, doubles, triples, home_runs, rbi,
         walks + stolen_bases]
    )


REAL_DATASETS: Dict[str, RealDatasetSpec] = {
    "HOTEL": RealDatasetSpec(
        name="HOTEL", d=4, paper_n=418_843, default_n=4000,
        attributes=("stars", "value_for_money", "rooms", "facilities"),
        generator=_hotel,
    ),
    "HOUSE": RealDatasetSpec(
        name="HOUSE", d=6, paper_n=315_265, default_n=3000,
        attributes=("gas", "electricity", "water", "heating", "insurance", "property_tax"),
        generator=_house,
    ),
    "NBA": RealDatasetSpec(
        name="NBA", d=8, paper_n=21_961, default_n=1500,
        attributes=("points", "rebounds", "assists", "steals", "blocks",
                    "fg_pct", "ft_pct", "threes"),
        generator=_nba,
    ),
    "PITCH": RealDatasetSpec(
        name="PITCH", d=8, paper_n=43_058, default_n=2000,
        attributes=("wins", "innings", "strikeouts", "saves", "games",
                    "complete_games", "shutouts", "era_inv"),
        generator=_pitch,
    ),
    "BAT": RealDatasetSpec(
        name="BAT", d=9, paper_n=99_847, default_n=2500,
        attributes=("games", "at_bats", "runs", "hits", "doubles", "triples",
                    "home_runs", "rbi", "walks_steals"),
        generator=_bat,
    ),
}


def load_real_dataset(
    name: str,
    n: Optional[int] = None,
    seed: SeedLike = 7,
    *,
    normalise: bool = True,
) -> Dataset:
    """Instantiate a simulated real dataset by name.

    Parameters
    ----------
    name:
        One of ``HOTEL``, ``HOUSE``, ``NBA``, ``PITCH``, ``BAT``.
    n:
        Cardinality override (defaults to the spec's scaled-down size).
    seed:
        Seed or generator for reproducibility.
    normalise:
        If true (default), rescale every attribute to ``[0, 1]``, matching
        the paper's presentation convention.
    """
    key = name.upper()
    if key not in REAL_DATASETS:
        raise KeyError(f"unknown real dataset {name!r}; choose one of {sorted(REAL_DATASETS)}")
    spec = REAL_DATASETS[key]
    rng = _rng(seed)
    cardinality = int(n) if n is not None else spec.default_n
    records = spec.generator(cardinality, rng)
    dataset = Dataset(records, attribute_names=spec.attributes, name=spec.name)
    return dataset.normalised() if normalise else dataset
