"""Dataset container used throughout the library.

A :class:`Dataset` is an immutable wrapper around an ``(n, d)`` float array of
records.  Records are treated as vectors; larger attribute values are better
(the paper's convention), and linear top-k scores are dot products with a
permissible query vector.

The container performs the validation that every algorithm would otherwise
repeat (finite values, consistent dimensionality, at least one record) and
provides convenience accessors (record lookup, attribute bounds, normalised
copies) plus the permissibility checks for query vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import (
    DimensionalityError,
    InvalidDatasetError,
    InvalidQueryVectorError,
    InvalidRecordError,
)

__all__ = ["Dataset", "validate_query_vector", "random_permissible_vector"]


class _RecordMatrix(np.ndarray):
    """Records array with a *row-consistent* matrix–vector product.

    BLAS evaluates an ``(n, d) @ (d,)`` product with blocked, FMA-vectorised
    kernels whose per-row rounding depends on the whole matrix, so
    ``(records @ q)[i]`` can differ from ``records[i] @ q`` by one ulp.  That
    discrepancy is fatal for rank computations: a focal record drawn from the
    dataset may then appear to strictly outscore itself, shifting its order by
    one.  This subclass redefines the matrix–vector product as one dot product
    per row — bit-identical to scoring the row on its own — so exact score
    ties (in particular self-ties) stay exact under the strict comparisons
    used throughout the library.  All other operations behave like a plain
    ``ndarray``.

    The per-row loop trades raw matrix–vector throughput for that exactness,
    so it is reserved for the *scoring* surface (``Dataset.scores``,
    ``order_of``, top-k), where calls are per-query and ``n`` is the only
    large factor.  The geometry hot paths (quad-tree, screens, LPs) operate
    on plain coefficient arrays and never pass through this class.
    """

    def __matmul__(self, other):
        other_arr = np.asarray(other)
        if self.ndim == 2 and other_arr.ndim == 1:
            base = np.asarray(self)
            return np.array([row @ other_arr for row in base])
        return super().__matmul__(other)


def _as_record_array(records: Iterable[Sequence[float]] | np.ndarray) -> np.ndarray:
    array = np.asarray(records, dtype=float)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise InvalidDatasetError(
            f"records must form a 2-dimensional array, got ndim={array.ndim}"
        )
    if array.shape[0] == 0 or array.shape[1] == 0:
        raise InvalidDatasetError("dataset must contain at least one record and one attribute")
    if not np.isfinite(array).all():
        raise InvalidDatasetError("dataset contains NaN or infinite attribute values")
    return array


@dataclass(frozen=True)
class Dataset:
    """An immutable set of ``n`` records with ``d`` numeric attributes.

    Parameters
    ----------
    records:
        Anything convertible to an ``(n, d)`` float array.
    attribute_names:
        Optional human-readable names, used by examples and reports.
    name:
        Optional dataset label (e.g. ``"HOTEL"`` or ``"IND"``).
    """

    records: np.ndarray
    attribute_names: Optional[tuple] = None
    name: str = "dataset"

    def __init__(
        self,
        records: Iterable[Sequence[float]] | np.ndarray,
        attribute_names: Optional[Sequence[str]] = None,
        name: str = "dataset",
    ) -> None:
        array = _as_record_array(records).view(_RecordMatrix)
        array.setflags(write=False)
        object.__setattr__(self, "records", array)
        if attribute_names is not None:
            names = tuple(str(a) for a in attribute_names)
            if len(names) != array.shape[1]:
                raise InvalidDatasetError(
                    f"{len(names)} attribute names given for {array.shape[1]} attributes"
                )
        else:
            names = None
        object.__setattr__(self, "attribute_names", names)
        object.__setattr__(self, "name", str(name))

    # ------------------------------------------------------------ properties
    @property
    def n(self) -> int:
        """Number of records."""
        return int(self.records.shape[0])

    @property
    def d(self) -> int:
        """Number of attributes (data dimensionality)."""
        return int(self.records.shape[1])

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index: int) -> np.ndarray:
        """Return the record at ``index`` as a read-only 1-D array."""
        return self.records[index]

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------- utilities
    def record(self, index: int) -> np.ndarray:
        """Return record ``index``; raises :class:`InvalidRecordError` when out of range."""
        if not 0 <= index < self.n:
            raise InvalidRecordError(f"record index {index} out of range [0, {self.n})")
        return self.records[index]

    def validate_focal(self, focal: Sequence[float] | np.ndarray | int) -> np.ndarray:
        """Resolve ``focal`` into a 1-D record of this dataset's dimensionality.

        ``focal`` may be a record index (``int``) or an explicit coordinate
        vector; the paper allows the focal record to be outside the dataset,
        so membership is not required.
        """
        if isinstance(focal, (int, np.integer)):
            return self.record(int(focal))
        vector = np.asarray(focal, dtype=float).ravel()
        if vector.shape[0] != self.d:
            raise InvalidRecordError(
                f"focal record has {vector.shape[0]} attributes, dataset has {self.d}"
            )
        if not np.isfinite(vector).all():
            raise InvalidRecordError("focal record contains NaN or infinite values")
        return vector

    def attribute_bounds(self) -> tuple:
        """Return ``(mins, maxs)`` arrays over all records."""
        return self.records.min(axis=0), self.records.max(axis=0)

    def normalised(self) -> "Dataset":
        """Return a copy with every attribute rescaled to ``[0, 1]``.

        Constant attributes map to 0.5 to avoid division by zero.
        """
        mins, maxs = self.attribute_bounds()
        span = maxs - mins
        safe_span = np.where(span > 0, span, 1.0)
        scaled = (self.records - mins) / safe_span
        scaled = np.where(span > 0, scaled, 0.5)
        return Dataset(scaled, attribute_names=self.attribute_names, name=self.name)

    def subset(self, indices: Sequence[int]) -> "Dataset":
        """Return a new dataset restricted to ``indices`` (order preserved)."""
        idx = np.asarray(list(indices), dtype=int)
        if idx.size == 0:
            raise InvalidDatasetError("subset must select at least one record")
        return Dataset(self.records[idx], attribute_names=self.attribute_names, name=self.name)

    def scores(self, query: Sequence[float] | np.ndarray) -> np.ndarray:
        """Return the score ``S(r) = r · q`` of every record for ``query``."""
        q = validate_query_vector(query, self.d)
        return self.records @ q

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dataset(name={self.name!r}, n={self.n}, d={self.d})"


def validate_query_vector(
    query: Sequence[float] | np.ndarray,
    d: int,
    *,
    require_normalised: bool = False,
    atol: float = 1e-9,
) -> np.ndarray:
    """Validate a preference vector and return it as a float array.

    A *permissible* vector (paper, Section 3) has strictly positive weights
    summing to one.  By default only positivity and dimensionality are
    enforced, because the ranking depends only on the direction of ``q``;
    pass ``require_normalised=True`` to also require ``Σ q_i = 1``.
    """
    q = np.asarray(query, dtype=float).ravel()
    if q.shape[0] != d:
        raise DimensionalityError(f"query vector has {q.shape[0]} weights, expected {d}")
    if not np.isfinite(q).all():
        raise InvalidQueryVectorError("query vector contains NaN or infinite weights")
    if (q <= 0).any():
        raise InvalidQueryVectorError("query vector weights must be strictly positive")
    if require_normalised and abs(float(q.sum()) - 1.0) > atol:
        raise InvalidQueryVectorError(
            f"query vector weights must sum to 1, got {float(q.sum()):.12f}"
        )
    return q


def random_permissible_vector(d: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Draw a uniformly random permissible query vector of dimensionality ``d``.

    Vectors are sampled uniformly from the open probability simplex via the
    standard exponential-spacings construction.
    """
    if d < 1:
        raise DimensionalityError("query vectors need at least one dimension")
    rng = rng or np.random.default_rng()
    while True:
        raw = rng.exponential(scale=1.0, size=d)
        total = raw.sum()
        if total > 0 and (raw > 0).all():
            return raw / total
