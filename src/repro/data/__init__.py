"""Data layer: dataset container, synthetic generators and simulated real datasets."""

from .dataset import Dataset, random_permissible_vector, validate_query_vector
from .generators import (
    DISTRIBUTIONS,
    generate,
    generate_anticorrelated,
    generate_correlated,
    generate_independent,
)
from .realistic import REAL_DATASETS, RealDatasetSpec, load_real_dataset

__all__ = [
    "Dataset",
    "validate_query_vector",
    "random_permissible_vector",
    "generate",
    "generate_independent",
    "generate_correlated",
    "generate_anticorrelated",
    "DISTRIBUTIONS",
    "REAL_DATASETS",
    "RealDatasetSpec",
    "load_real_dataset",
]
