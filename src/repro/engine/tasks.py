"""Self-contained leaf-processing work units of the execution engine.

The quad-tree scan of :func:`repro.core.cells.collect_cells` decomposes into
independent ``(leaf, Hamming weight)`` probes: enumerate the candidate cells
of one weight inside one leaf and report the non-empty ones.  A
:class:`LeafTask` captures everything such a probe needs — the leaf box, the
partial half-space rows, the weight, and the reusable per-leaf state
(witness probes, pairwise verdicts, surviving-prefix frontier) — so the
probe can run in *any* process without the parent quad-tree:
:func:`execute_leaf_task` rebuilds a
:class:`~repro.quadtree.withinleaf.WithinLeafProcessor` from the task alone
and runs the screen→LP funnel exactly as the in-process scan would.

Determinism contract
--------------------
A task must produce bit-identical results wherever it runs.  This hinges on
three properties, each pinned by tests:

* the task ships the *entire* probe-panel history of its leaf
  (``seed_probes`` lists the inherited witnesses plus every LP witness found
  by lower-weight tasks, in discovery order), so the rebuilt panel matches
  the panel a long-lived serial processor would have at that point;
* the pairwise analysis is shipped verbatim (``pairwise``) once built, so
  no re-analysis — however deterministic — ever happens twice;
* results carry the *deltas* (new witnesses, this weight's frontier entry)
  rather than absolute state, so the scheduler can merge them back in task
  order and seed the next weight's task identically in serial and parallel
  runs.

Everything in this module is picklable; the :class:`LeafTaskResult` carries
its own :class:`~repro.stats.CostCounters` so funnel accounting crosses
process boundaries losslessly (counters merge by plain addition, which is
order-independent).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..geometry.halfspace import Halfspace
from ..geometry.planar import PlanarArrangement
from ..obs.trace import TraceContext, worker_span
from ..quadtree.withinleaf import (
    LeafCell,
    LeafReuseState,
    PairwiseConstraints,
    WithinLeafProcessor,
)
from ..stats import CostCounters
from ..testing import faults
from .deadline import Deadline

__all__ = ["LeafTask", "LeafTaskResult", "execute_leaf_task", "execute_task"]


@dataclass(frozen=True)
class LeafTask:
    """One self-contained ``(leaf, weight)`` probe.

    Attributes
    ----------
    leaf_key:
        Opaque key identifying the leaf in the scheduler (results are routed
        back by this key; workers never interpret it).
    seq:
        The leaf's creation sequence number — the deterministic tie-break
        the scheduler orders tasks by.
    weight:
        Hamming weight of the candidate bit-strings to enumerate.
    lower, upper:
        Leaf extent in the reduced query space.
    partial:
        ``(halfspace_id, halfspace)`` pairs of the leaf's partial-overlap
        set, in tree insertion order (bit positions follow this order).
    use_pairwise:
        Whether pairwise-constraint pruning is enabled for this query.
    track_frontier:
        Whether the generation survivors of this weight should be memoised
        and returned (the scheduler requests this when it keeps a
        cross-iteration cache).
    seed_probes:
        Probe-panel history of the leaf: inherited witness points followed
        by every LP witness found by this leaf's lower-weight tasks, in
        discovery order.  ``None`` when the panel is just the default one.
    seed_state:
        The :class:`LeafReuseState` harvested when the leaf last grew
        (partial ids form a prefix of ``partial``'s), or ``None`` for a
        leaf processed from scratch.  Constant across all weights of one
        leaf configuration — it feeds the frontier-seeded re-enumeration.
    pairwise:
        The pair analysis of exactly this configuration, shipped verbatim
        once some earlier task built it (``None`` lets the processor build
        it, reusing ``seed_state.pairwise`` incrementally).
    use_planar:
        Whether the planar-arrangement sweep is enabled for this query
        (``d = 3`` fast path; see :mod:`repro.geometry.planar`).
    planar:
        The planar arrangement of exactly this configuration, shipped
        verbatim once some earlier task built it (``None`` lets the
        processor build it, extending ``seed_state.planar`` incrementally).
    deadline:
        Optional wall-clock budget (:class:`~repro.engine.deadline.Deadline`,
        an absolute expiry — valid across fork).  The rebuilt processor
        checks it cooperatively inside the funnel and raises
        :class:`~repro.errors.QueryTimeoutError`, which executors propagate
        across the process boundary.
    trace:
        Optional :class:`~repro.obs.trace.TraceContext`.  When set, the
        task times itself and records one span into its counters (worker
        local or the scheduler's) with an id derived from the task's own
        ``(seq, weight)`` identity — so spans merged back from any
        schedule sort into the same canonical tree.  ``None`` (the
        default, whenever tracing is off) costs a single ``is None``
        check.
    """

    leaf_key: int
    seq: int
    weight: int
    lower: np.ndarray
    upper: np.ndarray
    partial: Tuple[Tuple[int, Halfspace], ...]
    use_pairwise: bool = True
    track_frontier: bool = False
    seed_probes: Optional[Tuple[np.ndarray, ...]] = None
    seed_state: Optional[LeafReuseState] = None
    pairwise: Optional[PairwiseConstraints] = None
    use_planar: bool = False
    planar: Optional[PlanarArrangement] = None
    deadline: Optional[Deadline] = None
    trace: Optional[TraceContext] = None


@dataclass
class LeafTaskResult:
    """Outcome of one :class:`LeafTask`, carrying state deltas.

    Attributes
    ----------
    leaf_key, weight:
        Echoed from the task (results are merged strictly in task order, so
        these exist for routing and asserts, not for reordering).
    cells:
        The non-empty cells of the probed weight.
    witnesses:
        LP witnesses discovered by *this* task (the delta on top of the
        shipped ``seed_probes``), in discovery order.
    frontier:
        The surviving-prefix frontier entries recorded by this task —
        ``{weight: survivors-or-None}`` — empty when frontier tracking was
        off.
    pairwise:
        The pair analysis built by this task, or ``None`` when the task was
        handed one (or never needed one).
    planar:
        The planar arrangement built (or incrementally extended) by this
        task, or ``None`` when the task was handed one or the planar sweep
        is off.
    counters:
        Worker-local cost counters covering exactly this task's work, or
        ``None`` when the task ran against the scheduler's own counters.
    """

    leaf_key: int
    weight: int
    cells: List[LeafCell]
    witnesses: List[np.ndarray]
    frontier: Dict[int, Optional[Tuple[Tuple[int, ...], ...]]]
    pairwise: Optional[PairwiseConstraints]
    counters: Optional[CostCounters]
    planar: Optional[PlanarArrangement] = None


def execute_leaf_task(
    task: LeafTask, counters: Optional[CostCounters] = None
) -> LeafTaskResult:
    """Run one leaf task to completion in the current process.

    When ``counters`` is given (the in-process executors pass the
    scheduler's), all cost accounting goes directly to it and the result's
    ``counters`` field is ``None``; otherwise a fresh worker-local
    :class:`CostCounters` is created and returned for the scheduler to
    merge.
    """
    own = CostCounters() if counters is None else counters
    span_start = time.perf_counter() if task.trace is not None else 0.0
    if task.deadline is not None:
        # Entry checkpoint: a task that sat in a pool queue (or was stalled
        # by fault injection) past its budget dies before any funnel work.
        task.deadline.check(own, "leaf_task")
    processor = WithinLeafProcessor(
        task.lower,
        task.upper,
        task.partial,
        use_pairwise=task.use_pairwise,
        counters=own,
        seed_probes=task.seed_probes,
        seed_state=task.seed_state,
        track_frontier=task.track_frontier,
        pairwise=task.pairwise,
        use_planar=task.use_planar,
        planar=task.planar,
        deadline=task.deadline,
    )
    cells = processor.cells_at_weight(task.weight)
    if task.trace is not None:
        # The span id derives from task identity, not completion order, so
        # merging worker results in any schedule yields the same tree.
        own.record_span(worker_span(
            task.trace,
            f"L{task.seq}w{task.weight}",
            "leaf_task",
            span_start,
            time.perf_counter(),
            meta={"leaf_seq": task.seq, "weight": task.weight},
        ))
    return LeafTaskResult(
        leaf_key=task.leaf_key,
        weight=task.weight,
        cells=cells,
        witnesses=list(processor.witness_probes()),
        frontier=processor.frontier_entries(),
        pairwise=processor.pairwise_constraints if task.pairwise is None else None,
        counters=own if counters is None else None,
        planar=processor.planar_arrangement if task.planar is None else None,
    )


def execute_task(task):
    """Run any engine work unit in the current process.

    The executors schedule two kinds of self-contained tasks: the
    :class:`LeafTask` probes of the within-leaf scan, and any other
    picklable object exposing a no-argument ``run()`` method — the service
    layer's whole-query tasks (:class:`repro.service.batch.QueryTask`) use
    that hook to push entire MaxRank queries through the same executors
    (same chunked dispatch, same submission-order merge, hence the same
    determinism story).
    """
    faults.on_task()  # no-op unless a chaos-test fault plan is armed
    if isinstance(task, LeafTask):
        return execute_leaf_task(task)
    return task.run()
