"""Pluggable executors scheduling :class:`~repro.engine.tasks.LeafTask` units.

The scheduler (:func:`repro.core.cells.collect_cells`) batches the leaf
tasks of one priority level and hands the batch to an executor; the
executor returns one :class:`~repro.engine.tasks.LeafTaskResult` per task,
**in task order** — that ordering is the whole determinism story of the
parallel path, so every executor must preserve it regardless of completion
order.

Executor contract
-----------------
* ``run(tasks)`` returns ``[result_for(t) for t in tasks]`` — same length,
  same order; each result must be exactly what
  :func:`~repro.engine.tasks.execute_task` produces for that task
  (:func:`~repro.engine.tasks.execute_leaf_task` for leaf tasks, the
  task's own ``run()`` for other work units such as the service layer's
  whole-query tasks).
* ``inline`` tells the scheduler whether tasks execute in the calling
  process against scheduler-owned state (``True`` — the scheduler then
  keeps long-lived per-leaf processors and skips snapshot shipping) or in
  isolation (``False`` — tasks must be self-contained and results carry
  counter deltas).
* ``close()`` releases any resources; calling ``run`` afterwards is an
  error for pooled executors.  ``close`` is idempotent and executors are
  context managers, so a pool is torn down even when ``run()`` raises.
* ``drain_events()`` returns (and clears) the robustness events — worker
  retries, serial degradations — accumulated since the last drain, for the
  caller to fold into its :class:`~repro.stats.CostCounters`.

Three implementations:

* :class:`SerialExecutor` — the default; tasks run in the calling process
  against live per-leaf processors, byte-for-byte the pre-engine scan.
* :class:`InlineTaskExecutor` — runs the *self-contained* task path in the
  calling process; no parallelism, but every snapshot/rebuild/merge code
  path of the pool is exercised.  Used by the equivalence tests and useful
  for debugging the pool path without processes.
* :class:`ProcessPoolExecutor` — ``jobs`` worker processes with chunked
  dispatch; results come back in task order and worker counters are merged
  by the scheduler, so funnel reports stay exact.

Fault tolerance
---------------
The pool executor survives worker death: when a dispatch round ends with a
``BrokenProcessPool``, the broken pool is discarded, a fresh one is built,
and every chunk that did not deliver a result is re-submitted — with capped
exponential backoff, up to ``max_retries`` rounds; past the budget the
remaining chunks *degrade* to in-process serial execution (or raise
:class:`~repro.errors.RetryExhaustedError` when degradation is disabled).
Because results are merged strictly by chunk index, a batch completed via
any mixture of retries and degradation is bit-identical to a serial run.
Ordinary task exceptions are *not* retried — the serial path would raise
them too, so retrying would change semantics, not mask flakiness.

``REPRO_JOBS=N`` (N ≥ 2) in the environment forces a shared process pool on
every query that does not pass an explicit executor — this is how CI runs
the whole tier-1 suite through the pool.  ``REPRO_JOBS=task`` forces
:class:`InlineTaskExecutor` instead.
"""

from __future__ import annotations

import atexit
import math
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AlgorithmError, RetryExhaustedError
from ..testing import faults
from .tasks import LeafTask, LeafTaskResult, execute_task

__all__ = [
    "LeafTaskExecutor",
    "SerialExecutor",
    "InlineTaskExecutor",
    "ProcessPoolExecutor",
    "make_executor",
    "resolve_executor",
]

#: Target number of dispatch chunks per worker: small enough to amortise
#: pickling, large enough that one straggler chunk cannot serialise the
#: whole level.
_CHUNKS_PER_WORKER = 4

#: Ceiling on the exponential crash-retry backoff (seconds): a repeatedly
#: dying pool should fail (or degrade) fast, not stall the query.
_MAX_BACKOFF_S = 0.5


class LeafTaskExecutor:
    """Base class fixing the executor contract (see module docstring)."""

    #: True when tasks run in the calling process against scheduler-owned
    #: state; False when tasks must be self-contained.
    inline: bool = False

    def run(self, tasks: Sequence[LeafTask]) -> List[LeafTaskResult]:
        """Execute ``tasks`` and return their results in task order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (idempotent)."""

    def drain_events(self) -> Dict[str, int]:
        """Robustness events since the last drain (empty for in-process
        executors — nothing can crash)."""
        return {}

    def __enter__(self) -> "LeafTaskExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(LeafTaskExecutor):
    """Default in-process execution (bit-identical to the pre-engine scan).

    The scheduler recognises ``inline`` executors and runs each task
    against a long-lived per-leaf processor instead of snapshotting state
    into the task — the exact pre-engine behaviour, with zero copy or
    rebuild overhead.  ``run`` is still implemented (self-contained, via
    :func:`execute_leaf_task`) so the serial executor honours the full
    contract when driven directly, e.g. by tests.
    """

    inline = True

    def run(self, tasks: Sequence[LeafTask]) -> List[LeafTaskResult]:
        return [execute_task(task) for task in tasks]


class InlineTaskExecutor(LeafTaskExecutor):
    """Self-contained task execution in the calling process.

    Exercises exactly the snapshot → rebuild → delta-merge machinery of the
    process pool, minus the processes: useful to debug or test the
    parallel path deterministically, and as a degenerate pool when only
    one core is available.
    """

    inline = False

    def run(self, tasks: Sequence[LeafTask]) -> List[LeafTaskResult]:
        return [execute_task(task) for task in tasks]


def _execute_chunk(payload) -> List[LeafTaskResult]:
    """Worker entry point: apply the chunk's fault directive (test-only,
    ``None`` outside the chaos suite), then run the tasks sequentially."""
    tasks, directive = payload
    faults.apply_chunk_directive(directive)
    return [execute_task(task) for task in tasks]


class ProcessPoolExecutor(LeafTaskExecutor):
    """Execute leaf tasks on a pool of ``jobs`` worker processes.

    Tasks are dispatched in contiguous chunks (about
    ``jobs * _CHUNKS_PER_WORKER`` chunks per batch) to amortise pickling;
    chunk results are concatenated in submission order, so the merged
    result list is independent of worker scheduling.  The pool is created
    lazily on first use and torn down by :meth:`close` (registered with
    ``atexit`` as a backstop, so an abandoned executor cannot leak worker
    processes past interpreter exit).

    Worker death (``BrokenProcessPool``) is survived: see the module
    docstring's *Fault tolerance* section.  :attr:`worker_retries` and
    :attr:`degraded_batches` tally the recoveries over the executor's
    lifetime; :meth:`drain_events` hands the same tallies to the scheduler
    incrementally for per-query cost accounting.

    Parameters
    ----------
    jobs:
        Number of worker processes (≥ 1).  ``jobs=1`` degenerates to
        in-process execution of the self-contained path.
    max_retries:
        Crash-retry rounds per ``run()`` batch before degradation (each
        round rebuilds the pool and re-submits every unfinished chunk).
    retry_backoff:
        Base sleep before the first retry round; doubles per round, capped
        at ``0.5`` s.
    degrade_to_serial:
        After ``max_retries`` crashed rounds, finish the unfinished chunks
        in-process (``True``, default) or raise
        :class:`~repro.errors.RetryExhaustedError` (``False``).
    """

    inline = False

    def __init__(
        self,
        jobs: int,
        *,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        degrade_to_serial: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.degrade_to_serial = bool(degrade_to_serial)
        #: lifetime tallies (never reset; drain_events reports increments)
        self.worker_retries = 0
        self.degraded_batches = 0
        self._pending_events: Dict[str, int] = {}
        self._pool = None
        self._closed = False
        self._atexit_registered = False

    def _ensure_pool(self):
        if self._closed:
            raise RuntimeError("executor is closed")
        if self._pool is None:
            import concurrent.futures
            import multiprocessing

            # Prefer fork: workers inherit the imported modules, so task
            # dispatch does not pay a per-worker import of numpy/repro.
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context()
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=context
            )
            if not self._atexit_registered:
                # Backstop only: normal lifecycles close() explicitly (the
                # facade's try/finally, the service, context managers).
                atexit.register(self.close)
                self._atexit_registered = True
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken pool without waiting on its corpse."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _record_event(self, name: str) -> None:
        setattr(self, name, getattr(self, name) + 1)
        self._pending_events[name] = self._pending_events.get(name, 0) + 1

    def drain_events(self) -> Dict[str, int]:
        events, self._pending_events = self._pending_events, {}
        return events

    def run(self, tasks: Sequence[LeafTask]) -> List[LeafTaskResult]:
        tasks = list(tasks)
        if not tasks:
            return []
        if self._closed:
            raise RuntimeError("executor is closed")
        if self.jobs == 1 or len(tasks) == 1:
            # One worker (or one task) gains nothing from IPC; the
            # self-contained path is identical either way.
            return [execute_task(task) for task in tasks]
        chunk_count = min(len(tasks), self.jobs * _CHUNKS_PER_WORKER)
        size = math.ceil(len(tasks) / chunk_count)
        chunks = [tasks[i: i + size] for i in range(0, len(tasks), size)]
        chunk_results: List[Optional[List[LeafTaskResult]]] = [None] * len(chunks)
        pending = list(range(len(chunks)))
        attempt = 0
        while pending:
            crash = self._dispatch_round(chunks, chunk_results, pending)
            if crash is None:
                break
            pending = [i for i in pending if chunk_results[i] is None]
            if attempt >= self.max_retries:
                if not self.degrade_to_serial:
                    raise RetryExhaustedError(
                        f"pool workers kept dying: {len(pending)} chunk(s) "
                        f"unfinished after {attempt + 1} crashed round(s) "
                        f"({crash})"
                    ) from crash
                # Last resort: finish the unfinished chunks in-process.
                # Same tasks, same order, no directive — bit-identical to
                # what a healthy worker would have produced.
                self._record_event("degraded_batches")
                for index in pending:
                    chunk_results[index] = [
                        execute_task(task) for task in chunks[index]
                    ]
                break
            attempt += 1
            self._record_event("worker_retries")
            time.sleep(min(self.retry_backoff * (2 ** (attempt - 1)), _MAX_BACKOFF_S))
        results: List[LeafTaskResult] = []
        for chunk_result in chunk_results:
            results.extend(chunk_result)
        return results

    def _dispatch_round(
        self,
        chunks: List[List[LeafTask]],
        chunk_results: List[Optional[List[LeafTaskResult]]],
        pending: List[int],
    ) -> Optional[BaseException]:
        """Submit ``pending`` chunks and collect what completes.

        Returns ``None`` on a clean round, or the ``BrokenProcessPool``
        when some worker died (partial results are kept in
        ``chunk_results``; the caller retries the rest).  Ordinary task
        exceptions propagate — after cancelling the round's other futures —
        because the serial path would raise them identically.
        """
        from concurrent.futures.process import BrokenProcessPool

        plan = faults.active_plan()
        futures: List[Tuple[int, object]] = []
        try:
            pool = self._ensure_pool()
            for index in pending:
                directive = plan.arm_chunk(index) if plan is not None else None
                futures.append(
                    (index, pool.submit(_execute_chunk, (chunks[index], directive)))
                )
        except BrokenProcessPool as exc:
            self._discard_pool()
            self._collect_round(futures, chunk_results)
            return exc
        crash = self._collect_round(futures, chunk_results)
        if crash is not None:
            self._discard_pool()
        return crash

    @staticmethod
    def _collect_round(futures, chunk_results) -> Optional[BaseException]:
        from concurrent.futures.process import BrokenProcessPool

        crash: Optional[BaseException] = None
        failure: Optional[BaseException] = None
        for index, future in futures:
            if failure is not None:
                future.cancel()
                continue
            try:
                chunk_results[index] = future.result()
            except BrokenProcessPool as exc:
                crash = crash or exc
            except Exception as exc:  # deterministic task error: no retry
                failure = exc
        if failure is not None:
            raise failure
        return crash

    def close(self) -> None:
        """Shut the pool down (idempotent; safe to call twice)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


def make_executor(jobs: Optional[int]) -> Optional[LeafTaskExecutor]:
    """Executor for a ``jobs=`` request: ``None``/1 → serial, ≥2 → pool.

    Raises
    ------
    AlgorithmError
        For ``jobs < 1`` — a zero or negative worker count is a caller bug,
        not a request for the serial path (pass ``None`` or ``1`` for that).
    """
    if jobs is None:
        return None
    jobs = int(jobs)
    if jobs < 1:
        raise AlgorithmError(
            f"jobs must be a positive worker count (or None for serial), "
            f"got {jobs}"
        )
    if jobs == 1:
        return None
    return ProcessPoolExecutor(jobs)


_env_executor: Optional[LeafTaskExecutor] = None
_env_checked = False


def _executor_from_env() -> Optional[LeafTaskExecutor]:
    """Shared executor forced by ``REPRO_JOBS`` (cached; ``None`` if unset).

    The cache latch is only set after a *successful* parse, so a malformed
    ``REPRO_JOBS`` raises on every query instead of degrading to a silent
    serial run after the first error.
    """
    global _env_executor, _env_checked
    if not _env_checked:
        value = os.environ.get("REPRO_JOBS", "").strip().lower()
        executor: Optional[LeafTaskExecutor] = None
        if value == "task":
            executor = InlineTaskExecutor()
        elif value:
            try:
                jobs = int(value)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer or 'task', got {value!r}"
                ) from None
            if jobs >= 2:
                executor = ProcessPoolExecutor(jobs)
        _env_executor = executor
        _env_checked = True
    return _env_executor


def resolve_executor(
    executor: Optional[LeafTaskExecutor],
) -> Optional[LeafTaskExecutor]:
    """Resolve the executor for one query.

    An explicit executor wins; otherwise the ``REPRO_JOBS`` environment
    override applies; otherwise ``None`` (the scheduler's built-in serial
    path, equivalent to :class:`SerialExecutor`).
    """
    if executor is not None:
        return executor
    return _executor_from_env()
