"""Pluggable executors scheduling :class:`~repro.engine.tasks.LeafTask` units.

The scheduler (:func:`repro.core.cells.collect_cells`) batches the leaf
tasks of one priority level and hands the batch to an executor; the
executor returns one :class:`~repro.engine.tasks.LeafTaskResult` per task,
**in task order** — that ordering is the whole determinism story of the
parallel path, so every executor must preserve it regardless of completion
order.

Executor contract
-----------------
* ``run(tasks)`` returns ``[result_for(t) for t in tasks]`` — same length,
  same order; each result must be exactly what
  :func:`~repro.engine.tasks.execute_task` produces for that task
  (:func:`~repro.engine.tasks.execute_leaf_task` for leaf tasks, the
  task's own ``run()`` for other work units such as the service layer's
  whole-query tasks).
* ``inline`` tells the scheduler whether tasks execute in the calling
  process against scheduler-owned state (``True`` — the scheduler then
  keeps long-lived per-leaf processors and skips snapshot shipping) or in
  isolation (``False`` — tasks must be self-contained and results carry
  counter deltas).
* ``close()`` releases any resources; calling ``run`` afterwards is an
  error for pooled executors.  Executors are context managers.

Three implementations:

* :class:`SerialExecutor` — the default; tasks run in the calling process
  against live per-leaf processors, byte-for-byte the pre-engine scan.
* :class:`InlineTaskExecutor` — runs the *self-contained* task path in the
  calling process; no parallelism, but every snapshot/rebuild/merge code
  path of the pool is exercised.  Used by the equivalence tests and useful
  for debugging the pool path without processes.
* :class:`ProcessPoolExecutor` — ``jobs`` worker processes with chunked
  dispatch; results come back in task order and worker counters are merged
  by the scheduler, so funnel reports stay exact.

``REPRO_JOBS=N`` (N ≥ 2) in the environment forces a shared process pool on
every query that does not pass an explicit executor — this is how CI runs
the whole tier-1 suite through the pool.  ``REPRO_JOBS=task`` forces
:class:`InlineTaskExecutor` instead.
"""

from __future__ import annotations

import atexit
import math
import os
from typing import List, Optional, Sequence

from .tasks import LeafTask, LeafTaskResult, execute_leaf_task, execute_task

__all__ = [
    "LeafTaskExecutor",
    "SerialExecutor",
    "InlineTaskExecutor",
    "ProcessPoolExecutor",
    "make_executor",
    "resolve_executor",
]

#: Target number of dispatch chunks per worker: small enough to amortise
#: pickling, large enough that one straggler chunk cannot serialise the
#: whole level.
_CHUNKS_PER_WORKER = 4


class LeafTaskExecutor:
    """Base class fixing the executor contract (see module docstring)."""

    #: True when tasks run in the calling process against scheduler-owned
    #: state; False when tasks must be self-contained.
    inline: bool = False

    def run(self, tasks: Sequence[LeafTask]) -> List[LeafTaskResult]:
        """Execute ``tasks`` and return their results in task order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (idempotent)."""

    def __enter__(self) -> "LeafTaskExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(LeafTaskExecutor):
    """Default in-process execution (bit-identical to the pre-engine scan).

    The scheduler recognises ``inline`` executors and runs each task
    against a long-lived per-leaf processor instead of snapshotting state
    into the task — the exact pre-engine behaviour, with zero copy or
    rebuild overhead.  ``run`` is still implemented (self-contained, via
    :func:`execute_leaf_task`) so the serial executor honours the full
    contract when driven directly, e.g. by tests.
    """

    inline = True

    def run(self, tasks: Sequence[LeafTask]) -> List[LeafTaskResult]:
        return [execute_task(task) for task in tasks]


class InlineTaskExecutor(LeafTaskExecutor):
    """Self-contained task execution in the calling process.

    Exercises exactly the snapshot → rebuild → delta-merge machinery of the
    process pool, minus the processes: useful to debug or test the
    parallel path deterministically, and as a degenerate pool when only
    one core is available.
    """

    inline = False

    def run(self, tasks: Sequence[LeafTask]) -> List[LeafTaskResult]:
        return [execute_task(task) for task in tasks]


def _execute_chunk(tasks: List[LeafTask]) -> List[LeafTaskResult]:
    """Worker entry point: run one chunk of tasks sequentially."""
    return [execute_task(task) for task in tasks]


class ProcessPoolExecutor(LeafTaskExecutor):
    """Execute leaf tasks on a pool of ``jobs`` worker processes.

    Tasks are dispatched in contiguous chunks (about
    ``jobs * _CHUNKS_PER_WORKER`` chunks per batch) to amortise pickling;
    chunk results are concatenated in submission order, so the merged
    result list is independent of worker scheduling.  The pool is created
    lazily on first use and torn down by :meth:`close` (or interpreter
    exit).

    Parameters
    ----------
    jobs:
        Number of worker processes (≥ 1).  ``jobs=1`` degenerates to
        in-process execution of the self-contained path.
    """

    inline = False

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self._pool = None
        self._closed = False

    def _ensure_pool(self):
        if self._closed:
            raise RuntimeError("executor is closed")
        if self._pool is None:
            import concurrent.futures
            import multiprocessing

            # Prefer fork: workers inherit the imported modules, so task
            # dispatch does not pay a per-worker import of numpy/repro.
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context()
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=context
            )
        return self._pool

    def run(self, tasks: Sequence[LeafTask]) -> List[LeafTaskResult]:
        tasks = list(tasks)
        if not tasks:
            return []
        if self.jobs == 1 or len(tasks) == 1:
            # One worker (or one task) gains nothing from IPC; the
            # self-contained path is identical either way.
            return [execute_task(task) for task in tasks]
        pool = self._ensure_pool()
        chunk_count = min(len(tasks), self.jobs * _CHUNKS_PER_WORKER)
        size = math.ceil(len(tasks) / chunk_count)
        chunks = [tasks[i: i + size] for i in range(0, len(tasks), size)]
        results: List[LeafTaskResult] = []
        for chunk_result in pool.map(_execute_chunk, chunks):
            results.extend(chunk_result)
        return results

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


def make_executor(jobs: Optional[int]) -> Optional[LeafTaskExecutor]:
    """Executor for a ``jobs=`` request: ``None``/0/1 → serial, ≥2 → pool."""
    if jobs is None or jobs <= 1:
        return None
    return ProcessPoolExecutor(jobs)


_env_executor: Optional[LeafTaskExecutor] = None
_env_checked = False


def _executor_from_env() -> Optional[LeafTaskExecutor]:
    """Shared executor forced by ``REPRO_JOBS`` (cached; ``None`` if unset).

    The cache latch is only set after a *successful* parse, so a malformed
    ``REPRO_JOBS`` raises on every query instead of degrading to a silent
    serial run after the first error.
    """
    global _env_executor, _env_checked
    if not _env_checked:
        value = os.environ.get("REPRO_JOBS", "").strip().lower()
        executor: Optional[LeafTaskExecutor] = None
        if value == "task":
            executor = InlineTaskExecutor()
        elif value:
            try:
                jobs = int(value)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer or 'task', got {value!r}"
                ) from None
            if jobs >= 2:
                executor = ProcessPoolExecutor(jobs)
                atexit.register(executor.close)
        _env_executor = executor
        _env_checked = True
    return _env_executor


def resolve_executor(
    executor: Optional[LeafTaskExecutor],
) -> Optional[LeafTaskExecutor]:
    """Resolve the executor for one query.

    An explicit executor wins; otherwise the ``REPRO_JOBS`` environment
    override applies; otherwise ``None`` (the scheduler's built-in serial
    path, equivalent to :class:`SerialExecutor`).
    """
    if executor is not None:
        return executor
    return _executor_from_env()
