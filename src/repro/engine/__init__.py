"""Execution engine: leaf-task scheduling with pluggable executors.

The hottest loop of a MaxRank query — within-leaf cell enumeration over the
quad-tree's competitive leaves — decomposes into independent, self-contained
:class:`LeafTask` units (one per ``(leaf, Hamming weight)`` probe).  The
scheduler in :func:`repro.core.cells.collect_cells` batches the tasks of one
priority level and hands them to an executor:

* :class:`SerialExecutor` (default) — in-process, bit-identical to the
  pre-engine scan;
* :class:`ProcessPoolExecutor` — ``jobs`` worker processes, chunked
  dispatch, deterministic result-merge order; results (cells, witness
  probes, frontier entries) and :class:`~repro.stats.CostCounters` merge
  back losslessly, so parallel runs reproduce the serial results and
  funnel reports exactly;
* :class:`InlineTaskExecutor` — the self-contained task path without
  processes (testing / debugging).

Thread an executor through the public API (``maxrank(..., jobs=4)`` or
``maxrank(..., executor=...)``), or force one globally with the
``REPRO_JOBS`` environment variable.

Executors also schedule *whole-query* tasks: any picklable work unit with a
``run()`` method goes through the same chunked dispatch and
submission-order merge (see :func:`repro.engine.tasks.execute_task`).  The
service layer (:mod:`repro.service`) uses this to run entire MaxRank
queries of a batch in parallel.
"""

from .deadline import Deadline
from .executors import (
    InlineTaskExecutor,
    LeafTaskExecutor,
    ProcessPoolExecutor,
    SerialExecutor,
    make_executor,
    resolve_executor,
)
from .tasks import LeafTask, LeafTaskResult, execute_leaf_task, execute_task

__all__ = [
    "Deadline",
    "LeafTask",
    "LeafTaskResult",
    "execute_leaf_task",
    "execute_task",
    "LeafTaskExecutor",
    "SerialExecutor",
    "InlineTaskExecutor",
    "ProcessPoolExecutor",
    "make_executor",
    "resolve_executor",
]
