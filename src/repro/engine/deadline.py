"""Per-query wall-clock budgets for cooperative cancellation.

A :class:`Deadline` is an *absolute* expiry instant on the shared wall
clock (``time.time()``), not a relative duration: the object pickles into
:class:`~repro.engine.tasks.LeafTask` / service query tasks and stays
meaningful inside fork-based pool workers, because parent and children read
the same clock.  Cancellation is cooperative — the scan scheduler
(:func:`repro.core.cells.collect_cells`), the AA iteration loop and the
within-leaf funnel call :meth:`Deadline.check` at their checkpoints, and an
expired deadline raises :class:`~repro.errors.QueryTimeoutError` carrying
the partial cost counters for diagnosis.  A query with no deadline pays
nothing: every checkpoint is a single ``is None`` test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..errors import AlgorithmError, QueryTimeoutError
from ..stats import CostCounters

__all__ = ["Deadline"]


@dataclass(frozen=True)
class Deadline:
    """An absolute wall-clock expiry for one query (picklable, immutable).

    Attributes
    ----------
    expires_at:
        ``time.time()`` instant after which the query must stop.
    budget_seconds:
        The originally requested budget — carried only so timeout messages
        can say "exceeded its 0.5s budget" instead of an opaque epoch.
    """

    expires_at: float
    budget_seconds: Optional[float] = None

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """Deadline ``seconds`` from now; the usual constructor."""
        seconds = float(seconds)
        if not seconds > 0 or seconds != seconds:  # rejects <= 0, NaN
            raise AlgorithmError(
                f"timeout must be a positive number of seconds, got {seconds!r}"
            )
        return cls(expires_at=time.time() + seconds, budget_seconds=seconds)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.time()

    def expired(self) -> bool:
        """Whether the budget is spent."""
        return time.time() >= self.expires_at

    def check(
        self, counters: Optional[CostCounters] = None, where: str = ""
    ) -> None:
        """Cooperative checkpoint: raise if expired, count the check.

        Raises
        ------
        QueryTimeoutError
            Carrying ``where`` (the checkpoint label) and the partial
            ``counters`` accumulated so far.
        """
        if counters is not None:
            counters.deadline_checks += 1
        if time.time() >= self.expires_at:
            budget = (
                f"its {self.budget_seconds:g}s budget"
                if self.budget_seconds is not None
                else "its deadline"
            )
            raise QueryTimeoutError(
                f"query exceeded {budget} (cancelled at checkpoint "
                f"{where or 'unspecified'})",
                where=where,
                counters=counters,
            )
