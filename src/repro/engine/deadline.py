"""Per-query wall-clock budgets for cooperative cancellation.

A :class:`Deadline` is an *absolute* expiry instant on the monotonic clock
(``time.monotonic()``), not a relative duration: the object pickles into
:class:`~repro.engine.tasks.LeafTask` / service query tasks and stays
meaningful inside fork-based pool workers, because ``CLOCK_MONOTONIC`` is a
system-wide clock — parent and forked children on the same host read the
same time base.  The monotonic clock is immune to NTP steps and manual
wall-clock changes; a deadline built on ``time.time()`` would expire (or
extend) every in-flight query the moment the wall clock jumped, which is
exactly the failure a concurrent serving front cannot afford.  Cancellation
is cooperative — the scan scheduler
(:func:`repro.core.cells.collect_cells`), the AA iteration loop and the
within-leaf funnel call :meth:`Deadline.check` at their checkpoints, and an
expired deadline raises :class:`~repro.errors.QueryTimeoutError` carrying
the partial cost counters for diagnosis.  A query with no deadline pays
nothing: every checkpoint is a single ``is None`` test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..errors import AlgorithmError, QueryTimeoutError
from ..stats import CostCounters

__all__ = ["Deadline"]


@dataclass(frozen=True)
class Deadline:
    """An absolute monotonic-clock expiry for one query (picklable, immutable).

    Attributes
    ----------
    expires_at:
        ``time.monotonic()`` instant after which the query must stop.  The
        instant is only meaningful on the host that created it (monotonic
        clocks have an arbitrary epoch), which is fine: deadlines cross
        process boundaries exclusively through ``fork``, never the network.
    budget_seconds:
        The originally requested budget — carried only so timeout messages
        can say "exceeded its 0.5s budget" instead of an opaque instant.
    """

    expires_at: float
    budget_seconds: Optional[float] = None

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """Deadline ``seconds`` from now; the usual constructor."""
        seconds = float(seconds)
        if not seconds > 0 or seconds != seconds:  # rejects <= 0, NaN
            raise AlgorithmError(
                f"timeout must be a positive number of seconds, got {seconds!r}"
            )
        return cls(expires_at=time.monotonic() + seconds, budget_seconds=seconds)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        """Whether the budget is spent."""
        return time.monotonic() >= self.expires_at

    def check(
        self, counters: Optional[CostCounters] = None, where: str = ""
    ) -> None:
        """Cooperative checkpoint: raise if expired, count the check.

        Raises
        ------
        QueryTimeoutError
            Carrying ``where`` (the checkpoint label) and the partial
            ``counters`` accumulated so far.
        """
        if counters is not None:
            counters.deadline_checks += 1
        if time.monotonic() >= self.expires_at:
            budget = (
                f"its {self.budget_seconds:g}s budget"
                if self.budget_seconds is not None
                else "its deadline"
            )
            raise QueryTimeoutError(
                f"query exceeded {budget} (cancelled at checkpoint "
                f"{where or 'unspecified'})",
                where=where,
                counters=counters,
            )
