"""Observability: span tracing, metrics registry, structured logging.

The package is deliberately dependency-free and safe to import from any
layer.  Three pillars:

``repro.obs.trace``
    ``Tracer``/``SpanRecord`` — monotonic-clock span trees with
    deterministic hierarchical ids, picklable records that ride home
    from forked workers inside ``CostCounters`` deltas.

``repro.obs.metrics``
    ``MetricsRegistry`` — named counters, gauges and fixed-bucket
    histograms with exact, order-independent merges and a Prometheus
    text exposition.

``repro.obs.log``
    Structured JSON-lines logging, quiet by default for library use.

Tracing is disabled by passing ``tracer=None`` (the default everywhere);
the instrumented hot paths guard on a single attribute check, so the
disabled path costs one ``is None`` test per site.
"""

from .log import configure as configure_logging, get_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .snapshot import serving_snapshot
from .trace import SpanRecord, TraceContext, Tracer, maybe_span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "configure_logging",
    "get_logger",
    "maybe_span",
    "serving_snapshot",
]
