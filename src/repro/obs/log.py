"""Structured logging for the repo: JSON lines, quiet by default.

Library code obtains loggers through ``get_logger`` and never
configures handlers — the ``repro`` root carries a ``NullHandler`` so
importing the package emits nothing.  Entry points (``python -m
repro.service``) opt in with ``configure(level=..., fmt=...)``, mapped
from the ``--log-level`` / ``--log-format`` CLI flags.

The JSON formatter emits one object per line with a stable field order
(``ts``, ``level``, ``logger``, ``message``) followed by any extra
fields passed via ``logger.info(..., extra={...})`` — which is how the
slow-query log attaches a full span dump to a single line.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Optional

ROOT_NAME = "repro"

# logging.LogRecord attributes that are bookkeeping, not user payload.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record; extras become top-level fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=repr, sort_keys=False)


class TextLineFormatter(logging.Formatter):
    """Human-oriented single-line format for ``--log-format text``."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        base = (f"{stamp} {record.levelname.lower():<7} "
                f"{record.name}: {record.getMessage()}")
        extras = {
            key: value
            for key, value in record.__dict__.items()
            if key not in _RESERVED and not key.startswith("_")
        }
        if extras:
            rendered = " ".join(f"{k}={json.dumps(v, default=repr)}"
                                for k, v in sorted(extras.items()))
            base = f"{base} {rendered}"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (quiet until configured)."""
    if name != ROOT_NAME and not name.startswith(ROOT_NAME + "."):
        name = f"{ROOT_NAME}.{name}"
    return logging.getLogger(name)


_root = logging.getLogger(ROOT_NAME)
if not any(isinstance(h, logging.NullHandler) for h in _root.handlers):
    _root.addHandler(logging.NullHandler())

_configured_handler: Optional[logging.Handler] = None


def configure(level: str = "info", fmt: str = "json",
              stream: Optional[IO[str]] = None) -> logging.Handler:
    """Attach one stream handler to the ``repro`` root (idempotent).

    ``level`` is a standard logging level name; ``fmt`` is ``"json"``
    (structured lines) or ``"text"``.  Reconfiguring replaces the
    previous handler rather than stacking duplicates.
    """
    global _configured_handler
    root = logging.getLogger(ROOT_NAME)
    if _configured_handler is not None:
        root.removeHandler(_configured_handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if fmt == "json":
        handler.setFormatter(JsonLineFormatter())
    elif fmt == "text":
        handler.setFormatter(TextLineFormatter())
    else:
        raise ValueError(f"unknown log format {fmt!r} (expected json|text)")
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper()))
    _configured_handler = handler
    return handler
