"""Span tracing with deterministic ids and picklable worker deltas.

A trace is a tree of timed spans covering one request end to end:
transport -> admission -> service -> engine phases, including work done
inside forked pool workers.  The design constraints, in order:

* **Zero cost when disabled.**  Tracing is off whenever the tracer
  reference is ``None``; every instrumented site guards on a single
  ``is None`` attribute check and touches nothing else.
* **Bit-identity neutral when enabled.**  Spans never influence the
  computation — they ride in side channels (``CostCounters._spans``)
  that are excluded from counter dicts, equality and fingerprints.
* **Deterministic, merge-order-independent output.**  Span ids are
  hierarchical ordinals ("1", "1.2", "1.2.3") allocated under a lock on
  the owning tracer; spans produced *inside* workers derive their ids
  from task identity (e.g. ``"1.3.L7w2"``), so absorbing worker deltas
  in any order yields the same canonical tree after the final sort.
* **Picklable.**  ``SpanRecord`` and ``TraceContext`` are plain-data
  and cross the process boundary inside task/result objects, the same
  merge path ``CostCounters`` already uses.

Clocks are ``time.perf_counter()`` — monotonic and the same clock the
``CostCounters.timer`` sections use, so span and timer durations agree.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

_TRACE_SEQ = itertools.count(1)


def _new_trace_id() -> str:
    return f"t{os.getpid():x}-{next(_TRACE_SEQ):x}"


@dataclass
class SpanRecord:
    """One finished span.  Plain data: picklable, comparable, mergeable."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    end: float
    meta: Optional[dict] = None

    @property
    def elapsed(self) -> float:
        return self.end - self.start

    def sort_key(self) -> Tuple:
        """Canonical ordering: hierarchical id, numeric parts numerically."""
        return tuple(
            (0, int(part)) if part.isdigit() else (1, part)
            for part in self.span_id.split(".")
        )


@dataclass(frozen=True)
class TraceContext:
    """The portable handle shipped into tasks: trace id + parent span id.

    Workers cannot call back into the parent's ``Tracer``; they mint
    span ids deterministically under ``parent_id`` from task identity
    instead, and the records ride home inside the task result.
    """

    trace_id: str
    parent_id: str


class _SpanHandle:
    __slots__ = ("span_id", "parent_id", "name", "start", "thread")

    def __init__(self, span_id, parent_id, name, start, thread):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.thread = thread


class Tracer:
    """Collects spans for one trace; safe to share across threads.

    Span parentage follows a per-thread stack: ``begin`` without an
    explicit parent nests under the calling thread's innermost open
    span.  Handing work to another thread (admission waves) or another
    process (engine tasks) crosses stacks, so those sites pass an
    explicit ``parent=`` — either a span handle's id or a
    ``TraceContext`` — which anchors the new span and pushes it onto
    the *calling* thread's stack.
    """

    def __init__(self, trace_id: Optional[str] = None,
                 anchor: Optional[TraceContext] = None):
        if anchor is not None and trace_id is None:
            trace_id = anchor.trace_id
        self.trace_id = trace_id if trace_id is not None else _new_trace_id()
        self._anchor = anchor.parent_id if anchor is not None else ""
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._children: Dict[str, int] = {}
        self._local = threading.local()

    # -- span lifecycle ------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def begin(self, name: str, parent: Optional[object] = None) -> _SpanHandle:
        stack = self._stack()
        if parent is None:
            parent_id = stack[-1].span_id if stack else self._anchor
        elif isinstance(parent, TraceContext):
            parent_id = parent.parent_id
        elif isinstance(parent, _SpanHandle):
            parent_id = parent.span_id
        else:
            parent_id = str(parent)
        with self._lock:
            ordinal = self._children.get(parent_id, 0) + 1
            self._children[parent_id] = ordinal
        span_id = f"{parent_id}.{ordinal}" if parent_id else str(ordinal)
        handle = _SpanHandle(span_id, parent_id, name, time.perf_counter(),
                             threading.get_ident())
        stack.append(handle)
        return handle

    def finish(self, handle: _SpanHandle, **meta) -> SpanRecord:
        end = time.perf_counter()
        stack = self._stack()
        if stack and stack[-1] is handle:
            stack.pop()
        elif handle in stack:  # pragma: no cover - defensive unwinding
            stack.remove(handle)
        record = SpanRecord(
            trace_id=self.trace_id,
            span_id=handle.span_id,
            parent_id=handle.parent_id or None,
            name=handle.name,
            start=handle.start,
            end=end,
            meta=meta or None,
        )
        with self._lock:
            self._records.append(record)
        return record

    @contextmanager
    def span(self, name: str, parent: Optional[object] = None, **meta):
        handle = self.begin(name, parent=parent)
        try:
            yield handle
        finally:
            self.finish(handle, **meta)

    def context(self) -> TraceContext:
        """A portable context anchored at the current innermost span."""
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else self._anchor
        return TraceContext(trace_id=self.trace_id, parent_id=parent_id)

    # -- merging and export --------------------------------------------

    def absorb(self, records: Iterable[SpanRecord]) -> None:
        """Fold worker-side span deltas into this trace (any order)."""
        records = list(records)
        if not records:
            return
        with self._lock:
            self._records.extend(records)

    def records(self) -> List[SpanRecord]:
        with self._lock:
            return sorted(self._records, key=SpanRecord.sort_key)

    def export(self) -> dict:
        """Canonical JSON-ready form; times are relative to trace start.

        Deterministic given the same set of records regardless of the
        order they were recorded or absorbed in.
        """
        records = self.records()
        t0 = min((r.start for r in records), default=0.0)
        spans = []
        for r in records:
            span = {
                "id": r.span_id,
                "parent": r.parent_id,
                "name": r.name,
                "start_s": r.start - t0,
                "elapsed_s": r.elapsed,
            }
            if r.meta:
                span["meta"] = r.meta
            spans.append(span)
        return {"trace_id": self.trace_id, "spans": spans}


@contextmanager
def maybe_span(tracer: Optional[Tracer], name: str,
               parent: Optional[object] = None, **meta):
    """``tracer.span(...)`` when tracing is on; a no-op when it is off."""
    if tracer is None:
        yield None
        return
    with tracer.span(name, parent=parent, **meta) as handle:
        yield handle


def worker_span(ctx: TraceContext, suffix: str, name: str,
                start: float, end: float,
                meta: Optional[dict] = None) -> SpanRecord:
    """Mint a span inside a worker from task identity.

    ``suffix`` must be unique under ``ctx.parent_id`` and derived from
    the task itself (not from arrival order), so replaying the same
    work in any schedule produces identical ids.
    """
    parent = ctx.parent_id
    span_id = f"{parent}.{suffix}" if parent else suffix
    return SpanRecord(
        trace_id=ctx.trace_id,
        span_id=span_id,
        parent_id=parent or None,
        name=name,
        start=start,
        end=end,
        meta=meta,
    )
