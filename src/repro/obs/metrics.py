"""A small metrics registry: counters, gauges, fixed-bucket histograms.

The registry mirrors the Prometheus data model — named metrics with
label sets — but is dependency-free and tuned for this repo's gating
style: histogram bucket bounds are fixed at construction, so merging
worker-side deltas is exact integer addition and any merge order
produces identical output (the same discipline ``CostCounters.merge``
follows for work counters).

Exposition comes in two shapes: ``render_prometheus()`` emits the text
format for a ``GET /metrics`` scrape, ``snapshot()`` a JSON-ready dict
for the ``{"cmd": "metrics"}`` serve verb and the bench gates.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Tuple

# Deterministic defaults spanning 0.5 ms .. 10 s — wide enough for both
# cache hits and cold planar queries.  Changing these bounds changes the
# exposition, so treat them as part of the gate surface.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_suffix(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def merge(self, other: "Counter") -> None:
        self.inc(other.value)


class Gauge:
    """A value that can go up and down (or be set from a collector)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount=1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount=1) -> None:
        self.inc(-amount)

    @property
    def value(self):
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with exact, order-independent merges.

    ``bounds`` are the inclusive upper edges of each bucket; one
    overflow (+Inf) bucket is implicit.  Counts are integers, so merges
    commute exactly; the running sum is a float and only used for the
    Prometheus ``_sum`` series.
    """

    kind = "histogram"

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if tuple(sorted(bounds)) != tuple(bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._lock = threading.Lock()
        self._counts: List[int] = [0] * (len(self.bounds) + 1)
        self._sum = 0.0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{other.bounds} != {self.bounds}"
            )
        with other._lock:
            counts = list(other._counts)
            total = other._sum
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._sum += total

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def buckets(self) -> List[Tuple[float, int]]:
        """Cumulative (upper-bound, count) pairs, +Inf last."""
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.bounds, counts):
            running += c
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                ("+Inf" if bound == float("inf") else repr(bound)): n
                for bound, n in self.buckets()
            },
        }


class MetricsRegistry:
    """Get-or-create registry of named, labelled metrics.

    Collector callbacks registered with ``add_collector`` run right
    before every ``snapshot()``/``render_prometheus()``, which is how
    layer-owned stats (router slots, service caches, transport totals)
    are pulled into gauges without putting a registry call on their hot
    paths.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelKey], object] = {}
        self._help: Dict[str, str] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    def _get(self, cls, name: str, help: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(**kwargs)
                self._metrics[key] = metric
                if help or name not in self._help:
                    self._help[name] = help
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, name, help, labels, bounds=buckets)

    def add_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        with self._lock:
            self._collectors.append(fn)

    def _collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            fn(self)

    def _sorted_items(self):
        with self._lock:
            items = list(self._metrics.items())
        return sorted(items, key=lambda kv: (kv[0][0], kv[0][1]))

    def snapshot(self) -> dict:
        """JSON-ready view of every metric (collectors run first)."""
        self._collect()
        out: Dict[str, object] = {}
        for (name, key), metric in self._sorted_items():
            label = name + _label_suffix(key)
            if isinstance(metric, Histogram):
                out[label] = metric.as_dict()
            else:
                out[label] = metric.value
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        self._collect()
        lines: List[str] = []
        seen_header = set()
        for (name, key), metric in self._sorted_items():
            if name not in seen_header:
                seen_header.add(name)
                help_text = self._help.get(name, "")
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for bound, count in metric.buckets():
                    le = "+Inf" if bound == float("inf") else repr(bound)
                    suffix = _label_suffix(key, (("le", le),))
                    lines.append(f"{name}_bucket{suffix} {count}")
                lines.append(f"{name}_sum{_label_suffix(key)} {metric.sum}")
                lines.append(f"{name}_count{_label_suffix(key)} {metric.count}")
            else:
                lines.append(f"{name}{_label_suffix(key)} {metric.value}")
        return "\n".join(lines) + "\n"
