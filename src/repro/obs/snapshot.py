"""One coherent serving snapshot across every layer's stat dict.

PR 9 left the serving front with four independently owned stat surfaces
— transport (``connections_accepted``/``requests_handled``), router
(``cold_starts``/``routed``), per-slot admission (``admitted``/
``coalesced``/``waves``…) and per-shard service (``queries_served``/
cache counters…).  Reading "how is the server doing" meant stitching
them together by hand, and each call site stitched differently (the
serve bench, the shutdown summary, ``{"cmd": "stats"}`` clients).

:func:`serving_snapshot` is the single consolidation point: a flat dict
whose totals are sums of the layer-owned counters, plus the per-shard
breakdown.  The serve loop's ``{"cmd": "metrics"}`` verb, the metrics
collector feeding the Prometheus endpoint, the obs smoke and the serve
benchmark gates all read this one function, so they can never drift
against each other.  The raw layered ``{"cmd": "stats"}`` view remains
available for callers that want the unconsolidated form.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Per-slot admission counters summed into the consolidated totals.
SLOT_KEYS = (
    "admitted", "coalesced", "waves", "wave_jobs",
    "spread_shuffles", "in_flight",
)

#: Per-shard service counters summed into the consolidated totals.
SERVICE_KEYS = (
    "queries_served", "queries_computed", "batches_served",
    "cache_hits", "cache_misses", "cache_monotone_hits",
    "cache_evictions", "cache_entries", "query_timeouts",
    "inserts", "deletes", "worker_retries", "degraded_batches",
)


def serving_snapshot(router, server=None) -> Dict[str, object]:
    """Consolidate router + admission + service (+ transport) stats.

    Parameters
    ----------
    router:
        A :class:`~repro.service.router.DatasetRouter`.
    server:
        Optional :class:`~repro.service.transport.ThreadedLineServer`;
        when given, its lifetime counters join the snapshot.

    Returns a flat dict: consolidated totals at the top level and the
    per-shard service stats under ``"shards"`` (keyed by dataset id).
    Values are exact sums of the layer counters — the same numbers the
    layers report individually, never re-derived.
    """
    stats = router.stats()
    slots: Dict[str, dict] = stats["slots"]
    services: Dict[str, dict] = stats["services"]
    out: Dict[str, object] = {
        "datasets": stats["datasets"],
        "loaded": stats["loaded"],
        "cold_starts": stats["cold_starts"],
        "routed": stats["routed"],
    }
    for key in SLOT_KEYS:
        out[key] = sum(slot.get(key, 0) for slot in slots.values())
    for key in SERVICE_KEYS:
        out[key] = sum(shard.get(key, 0) for shard in services.values())
    if server is not None:
        out["connections"] = server.connections_accepted
        out["requests"] = server.requests_handled
    out["shards"] = services
    return out


def install_serving_collector(registry, router, server=None,
                              extra: Optional[dict] = None) -> None:
    """Mirror the consolidated snapshot into registry gauges at scrape time.

    Layer hot paths keep owning their counters; this pull-style collector
    copies the consolidated totals into ``repro_serving_*`` gauges (and
    per-shard ``repro_shard_*`` gauges) whenever the registry is read, so
    the Prometheus endpoint and ``{"cmd": "metrics"}`` expose the same
    numbers as :func:`serving_snapshot` with zero steady-state cost.
    """

    def collect(reg) -> None:
        snap = serving_snapshot(router, server)
        for key, value in snap.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                reg.gauge(f"repro_serving_{key}").set(value)
        for dataset_id, shard in snap["shards"].items():
            for key in ("queries_served", "queries_computed", "cache_hits",
                        "cache_misses", "cache_evictions", "cache_entries"):
                reg.gauge(f"repro_shard_{key}", shard=dataset_id).set(
                    shard.get(key, 0)
                )
        if extra:
            for key, value in extra.items():
                reg.gauge(key).set(value)

    registry.add_collector(collect)
