"""Advanced approach specialised for three dimensions (planar sweep).

The paper specialises AA at the two ends of the dimensionality range: for
``d = 2`` the reduced query space is one-dimensional and the mixed
arrangement degenerates to a sorted list (:mod:`repro.core.aa2d`).  For
``d = 3`` the reduced space is a *plane* — one step up, but still special:
the within-leaf arrangement of every quad-tree leaf is a planar line
arrangement whose faces (with exact cover sets) can be enumerated by **one**
incremental sweep in ``O(m²)`` face splits, instead of enumerating
``C(m, w)`` candidate bit-strings weight by weight and clipping each one.

:func:`aa3d_maxrank` runs the general advanced approach with that planar
sweep enabled (see :mod:`repro.geometry.planar` and the ``use_planar`` path
of :mod:`repro.quadtree.withinleaf`).  Everything outside candidate
discovery is *shared* with :func:`repro.core.aa.aa_maxrank` — the skyline
maintenance, the quad-tree, the expansion loop, the leaf scheduling, the
execution engine — which is what makes the two engines bit-identical: the
planar sweep only changes *which* candidates are examined, never how a
candidate is decided (same pairwise filter, same exact clipping test, same
witness centroids).  ``tests/test_differential.py`` pins this equivalence
against the generic path and the brute-force oracle on randomized
workloads.

Two practical notes:

* **Whole-space sweep for small skylines.**  The quad-tree root *is* the
  whole reduced space until its partial set exceeds the split threshold, so
  a query whose skyline is small is answered by a single arrangement sweep
  over the entire reduced plane — no tree descent, no per-leaf overhead.
* **Incremental re-scans.**  AA iterations that expand augmented
  half-spaces do not rebuild leaf arrangements: a grown leaf's retained
  arrangement is copied and only the newly arrived half-planes are inserted
  (:class:`~repro.quadtree.withinleaf.LeafReuseState`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.dataset import Dataset
from ..engine.deadline import Deadline
from ..engine.executors import LeafTaskExecutor
from ..errors import AlgorithmError
from ..index.rstar import RStarTree
from ..skyline.bbs import SkylineCache
from ..stats import CostCounters
from .aa import aa_maxrank
from .result import MaxRankResult

__all__ = ["aa3d_maxrank"]


def aa3d_maxrank(
    dataset: Dataset,
    focal: Sequence[float] | np.ndarray | int,
    *,
    tau: int = 0,
    tree: Optional[RStarTree] = None,
    counters: Optional[CostCounters] = None,
    split_threshold: Optional[int] = None,
    split_policy: str = "static",
    whole_space: bool = False,
    use_pairwise: bool = True,
    executor: Optional[LeafTaskExecutor] = None,
    skyline_cache: Optional[SkylineCache] = None,
    deadline: Optional[Deadline] = None,
) -> MaxRankResult:
    """Answer a MaxRank / iMaxRank query with the planar-sweep AA (``d = 3``).

    Identical contract to :func:`repro.core.aa.aa_maxrank`, restricted to
    ``d = 3`` and with the planar-arrangement fast path enabled: each leaf's
    candidate cells are read off the faces of one incremental planar line
    arrangement instead of being enumerated combinatorially.  Results —
    ``k*``, regions, witness points — and all engine-invariant counters are
    bit-identical to the generic path; only the candidate-examination
    volume (and hence CPU time) differs.

    With ``whole_space=True`` (the façade's ``engine="planar-global"``) the
    quad-tree is built with ``max_depth=0``: the root never splits, the
    whole reduced plane is one fat leaf, and the query runs as **one**
    incremental planar arrangement extended across AA iterations — no split
    cascade, no per-leaf scheduling.  ``k*`` and the covered region are
    unchanged; only the leaf-fragment granularity of the reported regions
    differs (one fragment per arrangement face over the whole plane).

    Raises
    ------
    AlgorithmError
        When ``d != 3`` (use :func:`repro.core.aa.aa_maxrank` for higher
        dimensionalities, :func:`repro.core.aa2d.aa2d_maxrank` for 2) or
        ``tau < 0``.
    """
    if dataset.d != 3:
        raise AlgorithmError(
            f"AA-3D requires d = 3 (use aa_maxrank for d >= 3 in general), "
            f"got d = {dataset.d}"
        )
    result = aa_maxrank(
        dataset,
        focal,
        tau=tau,
        tree=tree,
        counters=counters,
        split_threshold=split_threshold,
        max_depth=0 if whole_space else None,
        split_policy=split_policy,
        use_pairwise=use_pairwise,
        use_planar=True,
        executor=executor,
        skyline_cache=skyline_cache,
        deadline=deadline,
    )
    result.algorithm = "AA-3D/global" if whole_space else "AA-3D"
    return result
