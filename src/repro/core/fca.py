"""First-cut algorithm (FCA) for MaxRank in two dimensions (paper, Section 4).

With ``d = 2`` and ``q_2 = 1 − q_1`` the score of every record is a linear
function of ``q_1``, so the plot of score versus ``q_1`` is a line.  Every
intersection between the focal record's score line and another record's score
line marks a ``q_1`` value where the two swap ranks.  FCA computes all those
intersections, sorts them, and sweeps ``q_1`` from 0 to 1 maintaining the
focal record's order; the minimum order over the sweep is ``k*`` and the
intervals where it is attained form ``T``.

Following the paper, FCA is enhanced with dominance pruning: dominators only
contribute their count and dominees are discarded, so only incomparable
records generate intersections.  FCA still reads the entire dataset through
the R*-tree (linear I/O), which is exactly the inefficiency the specialised
2-D advanced approach removes (Section 6.3, Figure 11).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import Dataset
from ..errors import AlgorithmError
from ..geometry.halfspace import halfspace_for_record
from ..geometry.interval import Interval
from ..index.rstar import RStarTree
from ..stats import CostCounters
from .accessor import DataAccessor
from .result import MaxRankRegion, MaxRankResult

__all__ = ["fca_maxrank", "score_line_events"]

#: Sweep intervals narrower than this are reordering points, not regions.
_MIN_INTERVAL = 1e-12


@dataclass(frozen=True)
class _Event:
    """A reordering event of the sweep: at ``value`` record ``record_id`` crosses p.

    ``enters`` is True when the record starts outscoring the focal record for
    ``q_1`` larger than ``value`` (a "→" half-line) and False when it stops
    (a "←" half-line).
    """

    value: float
    enters: bool
    record_id: int


def score_line_events(
    incomparable: Sequence[Tuple[int, np.ndarray]],
    focal: np.ndarray,
) -> Tuple[List[_Event], List[int]]:
    """Compute sweep events for every incomparable record.

    Returns ``(events, initially_active)``: the sorted reordering events and
    the ids of records that outscore the focal record as ``q_1 → 0+``.
    """
    events: List[_Event] = []
    initially_active: List[int] = []
    for record_id, point in incomparable:
        halfspace = halfspace_for_record(point, focal, record_id=record_id)
        coefficient = float(halfspace.coefficients[0])
        boundary = halfspace.offset / coefficient
        enters = coefficient > 0
        if boundary <= 0.0:
            # The record outscores (enters=True) or never outscores the focal
            # record throughout (0, 1); no event inside the sweep range.
            if enters:
                initially_active.append(record_id)
            continue
        if boundary >= 1.0:
            if not enters:
                initially_active.append(record_id)
            continue
        if not enters:
            initially_active.append(record_id)
        events.append(_Event(value=boundary, enters=enters, record_id=record_id))
    events.sort(key=lambda event: (event.value, event.record_id))
    return events, initially_active


def fca_maxrank(
    dataset: Dataset,
    focal: Sequence[float] | np.ndarray | int,
    *,
    tau: int = 0,
    tree: Optional[RStarTree] = None,
    counters: Optional[CostCounters] = None,
) -> MaxRankResult:
    """Answer a MaxRank / iMaxRank query with the first-cut algorithm (``d = 2``)."""
    if dataset.d != 2:
        raise AlgorithmError(f"FCA only supports d = 2 datasets, got d = {dataset.d}")
    if tau < 0:
        raise AlgorithmError(f"tau must be non-negative, got {tau}")
    start = time.perf_counter()
    accessor = DataAccessor(dataset, focal, tree=tree, counters=counters)
    counters = accessor.counters

    dominators = accessor.dominator_count()
    incomparable = accessor.scan_incomparable()

    with counters.timer("sweep"):
        events, initially_active = score_line_events(incomparable, accessor.focal)
        regions = _sweep(events, initially_active, dominators, tau)

    if not regions:
        # No incomparable record ever outscores the focal record anywhere, or
        # there are no incomparable records at all: the whole query space is
        # one region with cell order zero (or the constant active count).
        base_order = len(initially_active)
        regions = [
            MaxRankRegion(
                geometry=Interval(0.0, 1.0),
                cell_order=base_order,
                order=dominators + base_order + 1,
                outscored_by=tuple(sorted(initially_active)),
            )
        ]

    k_star = min(region.order for region in regions)
    result = MaxRankResult(
        k_star=k_star,
        regions=regions,
        dominator_count=dominators,
        minimum_cell_order=k_star - dominators - 1,
        tau=tau,
        algorithm="FCA",
        counters=counters,
        cpu_seconds=time.perf_counter() - start,
        focal=accessor.focal,
    )
    return result


def _sweep(
    events: List[_Event],
    initially_active: List[int],
    dominators: int,
    tau: int,
) -> List[MaxRankRegion]:
    """Sweep ``q_1`` over (0, 1), tracking the active (outscoring) record count.

    The sweep runs twice: the first pass only counts active records per
    interval to find the minimum order, the second materialises the active
    *sets* solely for the intervals that enter the result — keeping the cost
    linear in the number of events rather than quadratic.
    """
    total = len(events)

    # First pass: interval extents and active counts.
    raw: List[Tuple[float, float, int]] = []
    count = len(initially_active)
    previous = 0.0
    for index in range(total + 1):
        value = events[index].value if index < total else 1.0
        if value - previous > _MIN_INTERVAL:
            raw.append((previous, value, count))
        if index < total:
            count += 1 if events[index].enters else -1
            previous = value
    if not raw:
        return []
    minimum = min(order for _, _, order in raw)
    bound = minimum + tau

    # Second pass: build regions (with their outscoring record sets) for the
    # intervals whose order qualifies.
    regions: List[MaxRankRegion] = []
    active = set(initially_active)
    previous = 0.0
    position = 0
    for index in range(total + 1):
        value = events[index].value if index < total else 1.0
        if value - previous > _MIN_INTERVAL:
            low, high, cell_order = raw[position]
            position += 1
            if cell_order <= bound:
                regions.append(
                    MaxRankRegion(
                        geometry=Interval(low, high),
                        cell_order=cell_order,
                        order=dominators + cell_order + 1,
                        outscored_by=tuple(sorted(active)),
                    )
                )
        if index < total:
            event = events[index]
            if event.enters:
                active.add(event.record_id)
            else:
                active.discard(event.record_id)
            previous = value
    return regions
