"""Core MaxRank algorithms: FCA, BA, AA, AA-2D, AA-3D, brute-force oracles and the facade."""

from .aa import aa_maxrank
from .aa2d import SortedHalflineArrangement, aa2d_maxrank
from .aa3d import aa3d_maxrank
from .accessor import DataAccessor
from .ba import ba_maxrank
from .bruteforce import maxrank_exact_small, minimum_order_by_sampling
from .cells import CellRecord, collect_cells, region_for_cell
from .fca import fca_maxrank
from .maxrank import ALGORITHMS, ENGINES, imaxrank, maxrank
from .result import MaxRankRegion, MaxRankResult

__all__ = [
    "maxrank",
    "imaxrank",
    "ALGORITHMS",
    "ENGINES",
    "MaxRankRegion",
    "MaxRankResult",
    "fca_maxrank",
    "ba_maxrank",
    "aa_maxrank",
    "aa2d_maxrank",
    "aa3d_maxrank",
    "SortedHalflineArrangement",
    "maxrank_exact_small",
    "minimum_order_by_sampling",
    "DataAccessor",
    "CellRecord",
    "collect_cells",
    "region_for_cell",
]
