"""Brute-force MaxRank oracles used for validation.

Two independent ground-truth implementations keep the optimised algorithms
honest:

* :func:`maxrank_exact_small` follows Lemma 1 / Corollary 1 literally — it
  maps every incomparable record to a half-space and enumerates the complete
  arrangement with the reference enumerator of
  :mod:`repro.geometry.arrangement`.  Exponential in the number of
  incomparable records, so only usable on small inputs, but exact.
* :func:`minimum_order_by_sampling` samples many random permissible query
  vectors and reports the smallest order observed.  The sampled minimum is an
  upper bound on ``k*`` that converges to it quickly; the tests use it both
  as a sanity bound and (with dense sampling) as an equality check on small
  inputs.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..data.dataset import Dataset, random_permissible_vector
from ..errors import AlgorithmError
from ..geometry.arrangement import minimum_order_cells
from ..geometry.halfspace import halfspace_for_record
from ..geometry.polytope import ConvexPolytope
from ..geometry.halfspace import reduced_space_constraints
from ..skyline.dominance import partition_by_dominance
from ..stats import CostCounters
from ..topk.scoring import order_of
from .result import MaxRankRegion, MaxRankResult
from ._whole_space import whole_space_region

__all__ = ["maxrank_exact_small", "minimum_order_by_sampling"]


def minimum_order_by_sampling(
    dataset: Dataset,
    focal: Sequence[float] | np.ndarray | int,
    *,
    samples: int = 2000,
    seed: int = 0,
) -> int:
    """Smallest order of the focal record over ``samples`` random query vectors."""
    focal_vec = dataset.validate_focal(focal)
    rng = np.random.default_rng(seed)
    best = dataset.n + 1
    for _ in range(samples):
        query = random_permissible_vector(dataset.d, rng)
        best = min(best, order_of(dataset, focal_vec, query))
    return best


def maxrank_exact_small(
    dataset: Dataset,
    focal: Sequence[float] | np.ndarray | int,
    *,
    tau: int = 0,
    max_incomparable: int = 18,
) -> MaxRankResult:
    """Exact MaxRank by complete arrangement enumeration (small inputs only).

    Raises :class:`AlgorithmError` when the number of incomparable records
    exceeds ``max_incomparable`` — the enumeration is exponential and this
    oracle exists purely as a test reference.
    """
    if tau < 0:
        raise AlgorithmError(f"tau must be non-negative, got {tau}")
    start = time.perf_counter()
    focal_index = int(focal) if isinstance(focal, (int, np.integer)) else None
    focal_vec = dataset.validate_focal(focal)
    partition = partition_by_dominance(dataset, focal_vec, exclude_index=focal_index)
    dominators = partition.dominator_count
    reduced_dim = dataset.d - 1

    incomparable = partition.incomparable
    if incomparable.shape[0] > max_incomparable:
        raise AlgorithmError(
            f"{incomparable.shape[0]} incomparable records exceed the exact oracle's "
            f"limit of {max_incomparable}"
        )
    counters = CostCounters()
    if incomparable.shape[0] == 0:
        regions = [whole_space_region(reduced_dim, dominators)]
        return MaxRankResult(
            k_star=dominators + 1,
            regions=regions,
            dominator_count=dominators,
            minimum_cell_order=0,
            tau=tau,
            algorithm="BF",
            counters=counters,
            cpu_seconds=time.perf_counter() - start,
            focal=focal_vec,
        )

    halfspaces = [
        halfspace_for_record(dataset.records[index], focal_vec, record_id=int(index))
        for index in incomparable
    ]
    best, cells = minimum_order_cells(halfspaces, slack=tau)
    base_constraints = reduced_space_constraints(reduced_dim)
    regions = []
    for cell in cells:
        constraints = list(base_constraints)
        for halfspace, bit in zip(halfspaces, cell.bits):
            constraints.append(halfspace if bit else halfspace.complement())
        geometry = ConvexPolytope(constraints, np.zeros(reduced_dim), np.ones(reduced_dim))
        outscored = tuple(
            sorted(h.record_id for h, bit in zip(halfspaces, cell.bits) if bit)
        )
        regions.append(
            MaxRankRegion(
                geometry=geometry,
                cell_order=cell.order,
                order=dominators + cell.order + 1,
                outscored_by=outscored,
            )
        )
    return MaxRankResult(
        k_star=dominators + best + 1,
        regions=regions,
        dominator_count=dominators,
        minimum_cell_order=best,
        tau=tau,
        algorithm="BF",
        counters=counters,
        cpu_seconds=time.perf_counter() - start,
        focal=focal_vec,
    )
