"""Shared cell-collection machinery for BA and AA (``d ≥ 3``).

Both the basic and the advanced approach repeatedly need the same primitive:
given the current augmented quad-tree over (a subset of) the incomparable
half-spaces, find the cells of the implied arrangement with the smallest
order — processing leaves in increasing ``|F_l|`` order and pruning leaves
that cannot contain a competitive cell.  BA runs the primitive once over the
full set of half-spaces; AA runs it once per iteration over the mixed
arrangement.  The iMaxRank variant widens the collection bound by ``τ``.

:func:`collect_cells` implements that primitive and returns
:class:`CellRecord` objects, which carry everything the callers need: the
leaf, the within-leaf cell, its order, and the ids of the half-spaces that
contain it.  :func:`region_for_cell` converts a record into the user-facing
:class:`~repro.core.result.MaxRankRegion`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from ..geometry.halfspace import reduced_space_constraints
from ..geometry.polytope import ConvexPolytope
from ..quadtree.quadtree import AugmentedQuadTree, QuadTreeNode
from ..quadtree.withinleaf import LeafCell, WithinLeafProcessor
from ..stats import CostCounters
from .result import MaxRankRegion

__all__ = ["CellRecord", "collect_cells", "region_for_cell"]


@dataclass(frozen=True)
class CellRecord:
    """One non-empty arrangement cell found during a quad-tree scan.

    Attributes
    ----------
    leaf:
        The quad-tree leaf the cell was found in.
    cell:
        The within-leaf cell (bit-string, p-order, witness point).
    order:
        Global cell order: ``|F_l|`` plus the cell's p-order.
    containing_ids:
        Ids of every half-space containing the cell (full-containment set of
        the leaf plus the bit-string's 1-bits).
    full_ids:
        The leaf's full-containment set (kept separately so regions can be
        rebuilt without re-deriving it).
    """

    leaf: QuadTreeNode
    cell: LeafCell
    order: int
    containing_ids: FrozenSet[int]
    full_ids: FrozenSet[int]


class _LeafScanState:
    """Lazy per-leaf scan state: a processor plus memoised per-weight results."""

    __slots__ = ("processor", "partial_len", "weight_cells")

    def __init__(self, processor: WithinLeafProcessor, partial_len: int) -> None:
        self.processor = processor
        self.partial_len = partial_len
        self.weight_cells: dict = {}

    def cells_at(self, weight: int) -> List[LeafCell]:
        if weight not in self.weight_cells:
            self.weight_cells[weight] = self.processor.cells_at_weight(weight)
        return self.weight_cells[weight]


def collect_cells(
    tree: AugmentedQuadTree,
    *,
    tau: int = 0,
    use_pairwise: bool = False,
    counters: Optional[CostCounters] = None,
    cache: Optional[dict] = None,
) -> Tuple[Optional[int], List[CellRecord]]:
    """Scan the quad-tree for the smallest-order cells of its arrangement.

    Returns ``(best_order, cells)`` where ``cells`` contains every non-empty
    cell whose order is at most ``best_order + tau``.  ``best_order`` is
    ``None`` when the arrangement has no non-empty cell inside the
    permissible simplex (which only happens for degenerate inputs).

    Candidate ``(leaf, Hamming weight)`` pairs are explored best-first by the
    lower bound ``|F_l| + weight`` on the order of any cell they can produce.
    This generalises the paper's leaf-pruning rule (a leaf whose ``|F_l|``
    exceeds the best order found so far, plus ``tau``, is never processed)
    and additionally guarantees that no leaf is enumerated beyond the weight
    a competitive cell could have — important when a leaf's partial set is
    large.

    Parameters
    ----------
    cache:
        Optional dictionary reused across calls (AA scans the same tree once
        per iteration).  Per-leaf, per-weight results are stored keyed by the
        leaf object and invalidated when the leaf's partial-overlap set has
        grown since they were computed.
    """
    annotated = tree.leaves_by_containment()
    if not annotated:
        return None, []

    states: dict = {}

    def state_for(index: int) -> _LeafScanState:
        leaf, _ = annotated[index]
        if cache is not None:
            entry = cache.get(id(leaf))
            if entry is not None and entry.partial_len == len(leaf.partial):
                return entry
        partial_pairs = [(hid, tree.halfspace(hid)) for hid in leaf.partial]
        processor = WithinLeafProcessor(
            leaf.lower,
            leaf.upper,
            partial_pairs,
            use_pairwise=use_pairwise,
            counters=counters,
        )
        state = _LeafScanState(processor, len(leaf.partial))
        if cache is not None:
            cache[id(leaf)] = state
        return state

    # Heap of (order lower bound, leaf index, weight); leaves enter at weight 0.
    heap: List[Tuple[int, int, int]] = [
        (full_count, index, 0) for index, (_, full_count) in enumerate(annotated)
    ]
    heapq.heapify(heap)

    best: Optional[int] = None
    collected: List[CellRecord] = []
    touched: set = set()

    while heap:
        priority, index, weight = heapq.heappop(heap)
        if best is not None and priority > best + tau:
            break
        leaf, full_count = annotated[index]
        state = states.get(index)
        if state is None:
            state = state_for(index)
            states[index] = state
            touched.add(index)
        if weight > state.partial_len:
            continue
        cells = state.cells_at(weight)
        if cells and (best is None or priority < best):
            best = priority
        if cells:
            frozen_full = frozenset(leaf.full_ids())
            for cell in cells:
                collected.append(
                    CellRecord(
                        leaf=leaf,
                        cell=cell,
                        order=priority,
                        containing_ids=frozen_full | frozenset(cell.inside_ids),
                        full_ids=frozen_full,
                    )
                )
        if weight < state.partial_len:
            heapq.heappush(heap, (priority + 1, index, weight + 1))

    if counters is not None:
        counters.leaves_processed += len(touched)
        counters.leaves_pruned += len(annotated) - len(touched)
    if best is None:
        return None, []
    kept = [record for record in collected if record.order <= best + tau]
    return best, kept


def region_for_cell(
    tree: AugmentedQuadTree,
    record: CellRecord,
    dominator_count: int,
) -> MaxRankRegion:
    """Convert a collected cell into a user-facing :class:`MaxRankRegion`.

    The region geometry is the intersection of the leaf extent, the
    permissible-simplex constraints, and the half-spaces / complements
    selected by the cell's bit-string.  The half-spaces that fully contain
    the leaf are redundant inside the leaf box and are therefore omitted from
    the geometry, but their inducing records do appear in ``outscored_by``.
    """
    constraints = list(reduced_space_constraints(tree.dim))
    for (hid, _), bit in zip(
        [(hid, tree.halfspace(hid)) for hid in record.leaf.partial], record.cell.bits
    ):
        halfspace = tree.halfspace(hid)
        constraints.append(halfspace if bit else halfspace.complement())
    geometry = ConvexPolytope(constraints, record.leaf.lower, record.leaf.upper)
    outscored = []
    for hid in sorted(record.containing_ids):
        record_id = tree.halfspace(hid).record_id
        if record_id is not None:
            outscored.append(record_id)
    return MaxRankRegion(
        geometry=geometry,
        cell_order=record.order,
        order=dominator_count + record.order + 1,
        outscored_by=tuple(outscored),
    )
