"""Shared cell-collection machinery for BA and AA (``d ≥ 3``).

Both the basic and the advanced approach repeatedly need the same primitive:
given the current augmented quad-tree over (a subset of) the incomparable
half-spaces, find the cells of the implied arrangement with the smallest
order — processing leaves in increasing ``|F_l|`` order and pruning leaves
that cannot contain a competitive cell.  BA runs the primitive once over the
full set of half-spaces; AA runs it once per iteration over the mixed
arrangement.  The iMaxRank variant widens the collection bound by ``τ``.

:func:`collect_cells` implements that primitive and returns
:class:`CellRecord` objects, which carry everything the callers need: the
leaf, the within-leaf cell, its order, and the ids of the half-spaces that
contain it.  :func:`region_for_cell` converts a record into the user-facing
:class:`~repro.core.result.MaxRankRegion`.

The scan is *incremental*: it walks the tree's lazily-validated priority
buckets (leaves keyed by ``|F_l|``) instead of traversing and sorting every
leaf, so its cost is proportional to the number of competitive leaves — not
to the size of the tree.  Between AA iterations only the leaves reported
dirty by the tree (partial-overlap set grew) lose their cached within-leaf
state, and even then three things survive into the replacement processor:
the witness points already found (accept-screen probes), the pairwise
conflict masks (old pair verdicts stay valid because the leaf box is
unchanged and the old partial set is a prefix of the new one) and the
surviving-prefix frontier (re-enumeration extends previously surviving
prefixes by the new half-spaces instead of re-walking the whole assignment
tree).  This makes re-scans of a grown leaf largely LP-free *and* largely
enumeration-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..geometry.halfspace import reduced_space_constraints
from ..geometry.polytope import ConvexPolytope
from ..quadtree.quadtree import AugmentedQuadTree, QuadTreeNode
from ..quadtree.withinleaf import LeafCell, LeafReuseState, WithinLeafProcessor
from ..stats import CostCounters
from .result import MaxRankRegion

__all__ = ["CellRecord", "collect_cells", "region_for_cell"]


@dataclass(frozen=True)
class CellRecord:
    """One non-empty arrangement cell found during a quad-tree scan.

    Attributes
    ----------
    leaf:
        The quad-tree leaf the cell was found in.
    cell:
        The within-leaf cell (bit-string, p-order, witness point).
    order:
        Global cell order: ``|F_l|`` plus the cell's p-order.
    containing_ids:
        Ids of every half-space containing the cell (full-containment set of
        the leaf plus the bit-string's 1-bits).
    full_ids:
        The leaf's full-containment set (kept separately so regions can be
        rebuilt without re-deriving it).
    """

    leaf: QuadTreeNode
    cell: LeafCell
    order: int
    containing_ids: FrozenSet[int]
    full_ids: FrozenSet[int]


class _LeafScanState:
    """Lazy per-leaf scan state: a processor plus memoised per-weight results."""

    __slots__ = ("processor", "partial_len", "weight_cells")

    def __init__(self, processor: WithinLeafProcessor, partial_len: int) -> None:
        self.processor = processor
        self.partial_len = partial_len
        self.weight_cells: dict = {}

    def cells_at(self, weight: int) -> List[LeafCell]:
        if weight not in self.weight_cells:
            self.weight_cells[weight] = self.processor.cells_at_weight(weight)
        return self.weight_cells[weight]

    def witness_points(self) -> List[np.ndarray]:
        """Interior points of every memoised non-empty cell.

        When the leaf's partial set grows, these remain interior points of
        cells of the refined arrangement and are handed to the replacement
        processor as accept-screen probes.
        """
        points = [
            cell.interior_point
            for cells in self.weight_cells.values()
            for cell in cells
        ]
        points.extend(self.processor.witness_probes())
        return points


def collect_cells(
    tree: AugmentedQuadTree,
    *,
    tau: int = 0,
    use_pairwise: bool = True,
    counters: Optional[CostCounters] = None,
    cache: Optional[dict] = None,
) -> Tuple[Optional[int], List[CellRecord]]:
    """Scan the quad-tree for the smallest-order cells of its arrangement.

    Returns ``(best_order, cells)`` where ``cells`` contains every non-empty
    cell whose order is at most ``best_order + tau``.  ``best_order`` is
    ``None`` when the arrangement has no non-empty cell inside the
    permissible simplex (which only happens for degenerate inputs).

    Candidate ``(leaf, Hamming weight)`` pairs are explored best-first by the
    lower bound ``|F_l| + weight`` on the order of any cell they can produce.
    This generalises the paper's leaf-pruning rule (a leaf whose ``|F_l|``
    exceeds the best order found so far, plus ``tau``, is never processed)
    and additionally guarantees that no leaf is enumerated beyond the weight
    a competitive cell could have — important when a leaf's partial set is
    large.

    Parameters
    ----------
    cache:
        Optional dictionary reused across calls (AA scans the same tree once
        per iteration).  Per-leaf, per-weight results are stored keyed by
        ``id(leaf)`` and invalidated when the leaf's partial-overlap set has
        grown since they were computed; the invalidated entry's witness
        points seed the new processor's accept screen, and its reuse state
        (pairwise conflict masks plus the surviving-prefix frontier) seeds
        the new processor's candidate generation.
    """
    # Harvest witness and reuse-state seeds from cache entries the tree
    # reports as dirty.
    dirty = tree.consume_dirty_leaves()
    seeds: Dict[int, Tuple[List[np.ndarray], LeafReuseState]] = {}
    if cache is not None and dirty:
        for key in dirty:
            entry = cache.pop(key, None)
            if entry is not None:
                seeds[key] = (entry.witness_points(), entry.processor.reuse_state())

    def state_for(leaf: QuadTreeNode) -> _LeafScanState:
        key = id(leaf)
        if cache is not None:
            entry = cache.get(key)
            if entry is not None and entry.partial_len == len(leaf.partial):
                return entry
        partial_pairs = [(hid, tree.halfspace(hid)) for hid in leaf.partial]
        seed_probes, seed_state = seeds.get(key, (None, None))
        processor = WithinLeafProcessor(
            leaf.lower,
            leaf.upper,
            partial_pairs,
            use_pairwise=use_pairwise,
            counters=counters,
            seed_probes=seed_probes,
            seed_state=seed_state,
            track_frontier=cache is not None,
        )
        state = _LeafScanState(processor, len(leaf.partial))
        if cache is not None:
            cache[key] = state
        return state

    best: Optional[int] = None
    collected: List[CellRecord] = []
    touched = 0
    entered: set = set()
    #: weight continuations: priority -> [(leaf, state, weight)]
    deferred: Dict[int, List[Tuple[QuadTreeNode, _LeafScanState, int]]] = {}

    priority = 0
    while True:
        if best is not None and priority > best + tau:
            break
        if (
            best is None
            and priority > tree.max_bucket_priority()
            and not deferred
        ):
            break
        work: List[Tuple[QuadTreeNode, Optional[_LeafScanState], int]] = []
        for leaf in tree.validated_bucket(priority):
            if id(leaf) not in entered:
                entered.add(id(leaf))
                work.append((leaf, None, 0))
        work.extend(deferred.pop(priority, ()))
        for leaf, state, weight in work:
            if state is None:
                state = state_for(leaf)
                touched += 1
            if weight > state.partial_len:
                continue
            cells = state.cells_at(weight)
            if cells:
                if best is None:
                    best = priority
                frozen_full = frozenset(leaf.full_ids())
                for cell in cells:
                    collected.append(
                        CellRecord(
                            leaf=leaf,
                            cell=cell,
                            order=priority,
                            containing_ids=frozen_full | frozenset(cell.inside_ids),
                            full_ids=frozen_full,
                        )
                    )
            if weight < state.partial_len:
                deferred.setdefault(priority + 1, []).append((leaf, state, weight + 1))
        priority += 1

    if counters is not None:
        counters.leaves_processed += touched
        counters.leaves_pruned += tree.live_leaf_count - touched
    if best is None:
        return None, []
    kept = [record for record in collected if record.order <= best + tau]
    kept.sort(key=lambda record: (record.order, record.leaf.seq, record.cell.bits))
    return best, kept


def region_for_cell(
    tree: AugmentedQuadTree,
    record: CellRecord,
    dominator_count: int,
) -> MaxRankRegion:
    """Convert a collected cell into a user-facing :class:`MaxRankRegion`.

    The region geometry is the intersection of the leaf extent, the
    permissible-simplex constraints, and the half-spaces / complements
    selected by the cell's bit-string.  The half-spaces that fully contain
    the leaf are redundant inside the leaf box and are therefore omitted from
    the geometry, but their inducing records do appear in ``outscored_by``.
    """
    constraints = list(reduced_space_constraints(tree.dim))
    for (hid, _), bit in zip(
        [(hid, tree.halfspace(hid)) for hid in record.leaf.partial], record.cell.bits
    ):
        halfspace = tree.halfspace(hid)
        constraints.append(halfspace if bit else halfspace.complement())
    geometry = ConvexPolytope(constraints, record.leaf.lower, record.leaf.upper)
    outscored = []
    for hid in sorted(record.containing_ids):
        record_id = tree.halfspace(hid).record_id
        if record_id is not None:
            outscored.append(record_id)
    return MaxRankRegion(
        geometry=geometry,
        cell_order=record.order,
        order=dominator_count + record.order + 1,
        outscored_by=tuple(outscored),
    )
